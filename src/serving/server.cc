#include "serving/server.h"

#include <algorithm>
#include <map>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "serving/fingerprint.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace vastats {
namespace serving {
namespace {

// Request latency buckets in seconds: sub-millisecond cache hits up to
// multi-second cold extractions.
constexpr double kLatencyBuckets[] = {0.0005, 0.001, 0.0025, 0.005, 0.01,
                                      0.025,  0.05,  0.1,    0.25,  0.5,
                                      1.0,    2.5,   5.0,    10.0};

// Returns the scheduler slot on scope exit.
class SlotGuard {
 public:
  explicit SlotGuard(QueryScheduler& scheduler) : scheduler_(scheduler) {}
  ~SlotGuard() { scheduler_.Release(); }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;

 private:
  QueryScheduler& scheduler_;
};

}  // namespace

Result<std::unique_ptr<ExtractionServer>> ExtractionServer::Create(
    const SourceSet* sources, ServingOptions options) {
  if (sources == nullptr) {
    return Status::InvalidArgument("ExtractionServer requires a SourceSet");
  }
  // The serving layer owns the telemetry attachment: thread-safe sinks only
  // (the Trace's span tree is single-threaded), and the cacheable bandwidth
  // mode so a stored h can stand in for the per-extraction selector run.
  options.base.obs = ObsOptions{};
  options.base.obs.metrics = options.obs.metrics;
  options.base.obs.recorder = options.obs.recorder;
  options.base.kde_bandwidth_mode = BandwidthMode::kShared;
  VASTATS_RETURN_IF_ERROR(options.base.Validate());
  VASTATS_RETURN_IF_ERROR(options.scheduler.Validate());
  VASTATS_RETURN_IF_ERROR(options.caches.Validate());
  return std::unique_ptr<ExtractionServer>(
      new ExtractionServer(sources, std::move(options)));
}

ExtractionServer::ExtractionServer(const SourceSet* sources,
                                   ServingOptions options)
    : sources_(sources),
      options_(std::move(options)),
      caches_(sources->NumSources(), options_.caches),
      scheduler_(options_.scheduler, options_.obs),
      plan_cache_(options_.plan_cache != nullptr ? options_.plan_cache
                                                 : &DefaultDctPlanCache()) {
  // The batch path may share one recorded sampling pass across a group only
  // when an isolated run of each member would use the serial sampler on the
  // plain (non-degraded) path — that is the stream SampleOneRecorded mirrors.
  groupable_sampling_ =
      !options_.base.adaptive.has_value() &&
      !options_.base.fault_tolerance.has_value() &&
      ResolveSamplingThreads(options_.base.sampling_threads,
                             std::thread::hardware_concurrency()) == 1;
  if (options_.obs.recorder != nullptr) {
    answer_cache_name_id_ = options_.obs.recorder->InternName("answer_cache");
    bandwidth_cache_name_id_ =
        options_.obs.recorder->InternName("bandwidth_cache");
  }
}

Result<ExtractorOptions> ExtractionServer::DerivedOptions(
    const QueryRequest& request) const {
  ExtractorOptions derived = options_.base;  // normalized in Create()
  derived.seed =
      options_.base.seed ^ ComponentSequenceFingerprint(request.query.components);
  if (request.deadline_virtual_ms > 0.0) {
    if (!derived.fault_tolerance.has_value()) {
      return Status::InvalidArgument(
          "request '" + request.query.name +
          "' carries a deadline but the server's base options have no "
          "fault_tolerance seam to enforce it");
    }
    double& session_ms = derived.fault_tolerance->retry.session_deadline_ms;
    session_ms = session_ms > 0.0
                     ? std::min(session_ms, request.deadline_virtual_ms)
                     : request.deadline_virtual_ms;
  }
  return derived;
}

uint64_t ExtractionServer::RequestFingerprint(
    const QueryRequest& request) const {
  return FoldDeadline(QueryFingerprint(request.query),
                      request.deadline_virtual_ms);
}

std::vector<int> ExtractionServer::SourceClosure(
    const AggregateQuery& query) const {
  std::vector<char> seen(static_cast<size_t>(sources_->NumSources()), 0);
  std::vector<int> closure;
  for (const ComponentId component : query.components) {
    for (const int s : sources_->Covering(component)) {
      if (s < 0 || static_cast<size_t>(s) >= seen.size()) continue;
      if (seen[static_cast<size_t>(s)]) continue;
      seen[static_cast<size_t>(s)] = 1;
      closure.push_back(s);
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

void ExtractionServer::RecordCacheEvent(bool hit, uint32_t cache_name_id,
                                        uint64_t fingerprint) const {
  if (options_.obs.recorder == nullptr) return;
  options_.obs.recorder->Record(
      hit ? FlightEventKind::kCacheHit : FlightEventKind::kCacheMiss,
      cache_name_id, 0.0, fingerprint);
}

Result<AnswerStatistics> ExtractionServer::Extract(
    const QueryRequest& request) {
  const Stopwatch latency;
  options_.obs.GetCounter("serving_requests_total").Increment();
  VASTATS_RETURN_IF_ERROR(request.query.Validate());
  const uint64_t fingerprint = RequestFingerprint(request);
  const std::vector<int> closure = SourceClosure(request.query);
  VASTATS_RETURN_IF_ERROR(scheduler_.Admit(fingerprint));
  SlotGuard slot(scheduler_);
  Result<AnswerStatistics> result =
      ExtractAdmitted(request, fingerprint, closure);
  options_.obs.GetHistogram("serving_request_latency_seconds", kLatencyBuckets)
      .Observe(latency.ElapsedSeconds());
  return result;
}

void ExtractionServer::AttachCacheHooks(ExtractorOptions& derived,
                                        uint64_t fingerprint,
                                        std::span<const int> closure) {
  std::vector<int> owned_closure(closure.begin(), closure.end());
  derived.cache_hooks.plan_provider = [cache = plan_cache_] {
    return cache->ThreadLocalPlan();
  };
  derived.cache_hooks.bandwidth_lookup =
      [this, fingerprint, owned_closure]() -> std::optional<double> {
    std::optional<double> hit =
        caches_.LookupBandwidth(fingerprint, owned_closure);
    if (hit.has_value()) {
      options_.obs.GetCounter("serving_bandwidth_cache_hits_total").Increment();
    } else {
      options_.obs.GetCounter("serving_bandwidth_cache_misses_total")
          .Increment();
    }
    RecordCacheEvent(hit.has_value(), bandwidth_cache_name_id_, fingerprint);
    return hit;
  };
  derived.cache_hooks.bandwidth_store =
      [this, fingerprint,
       owned_closure = std::move(owned_closure)](double bandwidth) {
        caches_.StoreBandwidth(fingerprint, owned_closure, bandwidth);
      };
}

Result<AnswerStatistics> ExtractionServer::ExtractAdmitted(
    const QueryRequest& request, uint64_t fingerprint,
    std::span<const int> closure) {
  if (std::optional<AnswerStatistics> cached =
          caches_.LookupAnswer(fingerprint, closure)) {
    options_.obs.GetCounter("serving_answer_cache_hits_total").Increment();
    RecordCacheEvent(/*hit=*/true, answer_cache_name_id_, fingerprint);
    return *std::move(cached);
  }
  options_.obs.GetCounter("serving_answer_cache_misses_total").Increment();
  RecordCacheEvent(/*hit=*/false, answer_cache_name_id_, fingerprint);

  VASTATS_ASSIGN_OR_RETURN(ExtractorOptions derived, DerivedOptions(request));
  AttachCacheHooks(derived, fingerprint, closure);
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(sources_, request.query,
                                        std::move(derived)));
  VASTATS_ASSIGN_OR_RETURN(AnswerStatistics statistics, extractor.Extract());
  if (request.deadline_virtual_ms > 0.0 &&
      statistics.degradation.access.deadline_truncated_draws > 0) {
    options_.obs.GetCounter("serving_deadline_expired_total").Increment();
    if (options_.obs.recorder != nullptr) {
      options_.obs.recorder->Record(FlightEventKind::kSchedulerDeadlineExpired,
                                    answer_cache_name_id_,
                                    request.deadline_virtual_ms, fingerprint);
    }
  }
  caches_.StoreAnswer(fingerprint, closure, statistics);
  return statistics;
}

std::vector<Result<AnswerStatistics>> ExtractionServer::ExtractBatch(
    std::span<const QueryRequest> requests) {
  std::vector<Result<AnswerStatistics>> results(
      requests.size(),
      Result<AnswerStatistics>(Status::Internal("request not processed")));
  if (requests.empty()) return results;
  options_.obs.GetCounter("serving_batch_requests_total")
      .Increment(static_cast<uint64_t>(requests.size()));

  // Group indices by component sequence. Grouping is deterministic (ordered
  // by fingerprint, members in request order), so the group layout — and
  // with it every member's sample stream — is a pure function of the batch.
  std::vector<std::vector<size_t>> groups;
  if (groupable_sampling_) {
    std::map<uint64_t, size_t> group_of;
    for (size_t i = 0; i < requests.size(); ++i) {
      // Deadline-carrying requests go to singleton groups: the shared pass
      // has no deadline seam, and an isolated run is the only faithful path.
      if (requests[i].deadline_virtual_ms > 0.0) {
        groups.push_back({i});
        continue;
      }
      const uint64_t component_fp =
          ComponentSequenceFingerprint(requests[i].query.components);
      const auto [it, inserted] = group_of.emplace(component_fp, groups.size());
      if (inserted) {
        groups.emplace_back();
      }
      groups[it->second].push_back(i);
    }
  } else {
    groups.reserve(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) groups.push_back({i});
  }
  options_.obs.GetCounter("serving_batch_groups_total")
      .Increment(static_cast<uint64_t>(groups.size()));

  ThreadPool* pool = options_.batch_pool != nullptr ? options_.batch_pool
                                                    : DefaultThreadPool();
  const Status dispatch = pool->ParallelFor(
      static_cast<int>(groups.size()),
      [&](int g) -> Status {
        ExtractGroup(requests, groups[static_cast<size_t>(g)], results);
        return Status::Ok();
      },
      nullptr);
  if (!dispatch.ok()) {
    // Group tasks never fail, so this only fires on pool-level trouble;
    // surface it in any slot a task did not reach.
    for (Result<AnswerStatistics>& slot : results) {
      if (!slot.ok() && slot.status().code() == StatusCode::kInternal) {
        slot = dispatch;
      }
    }
  }
  return results;
}

void ExtractionServer::ExtractGroup(
    std::span<const QueryRequest> requests, std::span<const size_t> members,
    std::vector<Result<AnswerStatistics>>& results) {
  const Stopwatch latency;
  Histogram latency_histogram = options_.obs.GetHistogram(
      "serving_request_latency_seconds", kLatencyBuckets);
  options_.obs.GetCounter("serving_requests_total")
      .Increment(static_cast<uint64_t>(members.size()));

  const uint64_t group_fingerprint =
      ComponentSequenceFingerprint(requests[members[0]].query.components);
  const Status admitted = scheduler_.Admit(group_fingerprint);
  if (!admitted.ok()) {
    for (const size_t index : members) results[index] = admitted;
    return;
  }
  SlotGuard slot(scheduler_);

  if (members.size() == 1) {
    const QueryRequest& request = requests[members[0]];
    const Status valid = request.query.Validate();
    if (!valid.ok()) {
      results[members[0]] = valid;
    } else {
      results[members[0]] = ExtractAdmitted(
          request, RequestFingerprint(request), SourceClosure(request.query));
    }
    latency_histogram.Observe(latency.ElapsedSeconds());
    return;
  }

  // Shared closure: every member has the identical component sequence.
  const std::vector<int> closure = SourceClosure(requests[members[0]].query);

  // Answer-cache pass; misses queue for the shared sampling pass, with
  // members repeating an already-pending fingerprint deduplicated onto it.
  struct PendingMember {
    size_t index = 0;
    uint64_t fingerprint = 0;
  };
  std::vector<PendingMember> pending;
  std::vector<std::pair<size_t, size_t>> duplicates;  // (index, pending slot)
  std::map<uint64_t, size_t> pending_slot_of;
  for (const size_t index : members) {
    const QueryRequest& request = requests[index];
    const Status valid = request.query.Validate();
    if (!valid.ok()) {
      results[index] = valid;
      continue;
    }
    const uint64_t fingerprint = RequestFingerprint(request);
    const auto slot_it = pending_slot_of.find(fingerprint);
    if (slot_it != pending_slot_of.end()) {
      duplicates.emplace_back(index, slot_it->second);
      continue;
    }
    if (std::optional<AnswerStatistics> cached =
            caches_.LookupAnswer(fingerprint, closure)) {
      options_.obs.GetCounter("serving_answer_cache_hits_total").Increment();
      RecordCacheEvent(/*hit=*/true, answer_cache_name_id_, fingerprint);
      results[index] = *std::move(cached);
      continue;
    }
    options_.obs.GetCounter("serving_answer_cache_misses_total").Increment();
    RecordCacheEvent(/*hit=*/false, answer_cache_name_id_, fingerprint);
    pending_slot_of.emplace(fingerprint, pending.size());
    pending.push_back(PendingMember{index, fingerprint});
  }

  if (!pending.empty()) {
    // One recorded sampling pass for the whole group. Every pending member
    // shares the component sequence, hence the same derived seed and the
    // same rng stream an isolated run would consume; per-kind replay of the
    // recorded takes reproduces each member's own sample values bit for bit
    // (see UniSTake).
    const QueryRequest& leader = requests[pending[0].index];
    Status shared_failure = Status::Ok();
    std::vector<std::vector<double>> member_samples(pending.size());
    Rng rng(0);
    Result<ExtractorOptions> leader_options = DerivedOptions(leader);
    if (!leader_options.ok()) {
      shared_failure = leader_options.status();
    } else {
      Result<AnswerStatisticsExtractor> leader_extractor =
          AnswerStatisticsExtractor::Create(sources_, leader.query,
                                            *leader_options);
      if (!leader_extractor.ok()) {
        shared_failure = leader_extractor.status();
      } else {
        rng = Rng(leader_options->seed);
        const int draws = leader_options->initial_sample_size;
        for (std::vector<double>& samples : member_samples) {
          samples.reserve(static_cast<size_t>(draws));
        }
        std::vector<UniSTake> takes;
        for (int draw = 0; draw < draws && shared_failure.ok(); ++draw) {
          Result<UniSSample> sample =
              leader_extractor->sampler().SampleOneRecorded(rng, takes);
          if (!sample.ok()) {
            shared_failure = sample.status();
            break;
          }
          for (size_t p = 0; p < pending.size(); ++p) {
            const AggregateQuery& query = requests[pending[p].index].query;
            Result<double> value =
                UniSSampler::ReplayTakes(takes, query.kind, query.quantile_q);
            if (!value.ok()) {
              shared_failure = value.status();
              break;
            }
            member_samples[p].push_back(*value);
          }
        }
        if (shared_failure.ok()) {
          options_.obs.GetCounter("serving_shared_sampling_draws_saved_total")
              .Increment(static_cast<uint64_t>(draws) *
                           static_cast<uint64_t>(pending.size() - 1));
        }
      }
    }

    for (size_t p = 0; p < pending.size(); ++p) {
      if (!shared_failure.ok()) {
        results[pending[p].index] = shared_failure;
        continue;
      }
      results[pending[p].index] = ExtractGroupTail(
          requests[pending[p].index], pending[p].fingerprint, closure,
          std::move(member_samples[p]), rng);
    }
  }

  for (const auto& [index, pending_slot] : duplicates) {
    results[index] = results[pending[pending_slot].index];
  }
  for (size_t i = 0; i < members.size(); ++i) {
    latency_histogram.Observe(latency.ElapsedSeconds());
  }
}

Result<AnswerStatistics> ExtractionServer::ExtractGroupTail(
    const QueryRequest& request, uint64_t fingerprint,
    std::span<const int> closure, std::vector<double> samples,
    const Rng& post_sampling_rng) {
  VASTATS_ASSIGN_OR_RETURN(ExtractorOptions derived, DerivedOptions(request));
  AttachCacheHooks(derived, fingerprint, closure);
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(sources_, request.query,
                                        std::move(derived)));
  // The rng enters phases 2-7 in exactly the state an isolated Extract()
  // would have left it after the sampling loop.
  Rng rng = post_sampling_rng;
  VASTATS_ASSIGN_OR_RETURN(
      AnswerStatistics statistics,
      extractor.ExtractFromSamples(std::move(samples), rng));
  caches_.StoreAnswer(fingerprint, closure, statistics);
  return statistics;
}

}  // namespace serving
}  // namespace vastats
