#include "serving/scheduler.h"

#include <string>

#include "obs/flight_recorder.h"

namespace vastats {
namespace serving {

Status SchedulerOptions::Validate() const {
  if (max_in_flight < 1) {
    return Status::InvalidArgument("SchedulerOptions: max_in_flight must be >= 1");
  }
  if (max_queue_depth < 0) {
    return Status::InvalidArgument(
        "SchedulerOptions: max_queue_depth must be >= 0");
  }
  return Status::Ok();
}

QueryScheduler::QueryScheduler(SchedulerOptions options, ObsOptions obs)
    : options_(options), obs_(obs) {
  if (obs_.recorder != nullptr) {
    in_flight_name_id_ = obs_.recorder->InternName("serving_in_flight");
  }
}

Status QueryScheduler::Admit(uint64_t query_fingerprint) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (in_flight_ >= options_.max_in_flight) {
    if (waiting_ >= options_.max_queue_depth) {
      const int waiting = waiting_;
      lock.unlock();
      obs_.GetCounter("serving_rejected_total").Increment();
      if (obs_.recorder != nullptr) {
        obs_.recorder->Record(FlightEventKind::kSchedulerReject,
                              in_flight_name_id_,
                              static_cast<double>(waiting),
                              query_fingerprint);
      }
      return Status::ResourceExhausted(
          "scheduler queue full: " + std::to_string(options_.max_in_flight) +
          " in flight and " + std::to_string(waiting) + " queued (limit " +
          std::to_string(options_.max_queue_depth) + ")");
    }
    ++waiting_;
    slot_freed_.wait(lock,
                     [this] { return in_flight_ < options_.max_in_flight; });
    --waiting_;
  }
  ++in_flight_;
  const int in_flight = in_flight_;
  lock.unlock();
  obs_.GetCounter("serving_admitted_total").Increment();
  obs_.GetGauge("serving_in_flight").Set(static_cast<double>(in_flight));
  if (obs_.recorder != nullptr) {
    obs_.recorder->Record(FlightEventKind::kSchedulerAdmit,
                          in_flight_name_id_, static_cast<double>(in_flight),
                          query_fingerprint);
  }
  return Status::Ok();
}

void QueryScheduler::Release() {
  int in_flight = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ > 0) --in_flight_;
    in_flight = in_flight_;
  }
  slot_freed_.notify_one();
  obs_.GetGauge("serving_in_flight").Set(static_cast<double>(in_flight));
}

int QueryScheduler::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

int QueryScheduler::Waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return waiting_;
}

}  // namespace serving
}  // namespace vastats
