#!/usr/bin/env python3
"""Repo-specific invariant linter for vastats.

Enforces policies that clang-tidy cannot express (stdlib-only, no pip deps):

  R1  no-exceptions: `throw` / `try` / `catch` are forbidden in src/ library
      code. Fallible operations return Status / Result<T> (src/util/status.h).
  R2  seeded-RNG facade: `std::rand`, `rand()`, `std::random_device`, and
      ad-hoc <random> engines (`std::mt19937`, `std::minstd_rand`,
      `std::default_random_engine`, ...) are forbidden outside
      src/util/random.* — all randomness flows through the seeded `Rng`
      facade so determinism_test stays meaningful.
  R3  IO discipline: `std::cout`, `std::cerr`, `printf`, `fprintf`, and
      `puts` are forbidden in library code outside src/util. Library code
      reports failure through Status, not the console. (Buffer formatting
      via `snprintf` is fine anywhere.)
  R4  header hygiene: every header under src/ uses the canonical include
      guard `VASTATS_<PATH>_H_` (e.g. src/util/status.h ->
      VASTATS_UTIL_STATUS_H_), and every .cc under src/ has a matching
      sibling header that it includes first.
  R5  nodiscard: src/util/status.h must declare both `Status` and
      `Result` with `[[nodiscard]]` — the enforcement teeth behind R1.
  R6  telemetry naming: metric and span names passed to `GetCounter`,
      `GetGauge`, `GetHistogram`, `BeginSpan`, and the `ScopedSpan`
      constructor must be snake_case string literals. Literal names keep
      the exporters total (they reject bad names at runtime, but only on
      the paths a test happens to exercise) and make every series
      grep-able. src/obs itself (declarations, exporters) is exempt.
  R7  virtual time: `std::chrono::*_clock::now()` (steady, system,
      high_resolution) is forbidden outside src/util/stopwatch.* — fault
      injection, retry backoff, breaker cooldowns, and deadline budgets run
      on the VirtualClock (src/integration/fault_model.h), so chaos runs
      are bit-reproducible and tests never sleep. Wall time is read only by
      the Stopwatch used for phase timings.

  IO allowlist: src/obs/export.cc is the one library file sanctioned to
  touch the filesystem (`WriteTextFile`); R3 skips it.

Usage:
  tools/lint_invariants.py [--root DIR]   # lint the repo, exit 1 on findings
  tools/lint_invariants.py --self-test    # verify the linter catches
                                          # injected violations, exit 1 on bug

Suppression: append `// lint-invariants: allow(<rule>)` to the offending
line, e.g. `// lint-invariants: allow(R2)`. Use sparingly; the comment is
grep-able and reviewed.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Callable, List, NamedTuple


class Finding(NamedTuple):
    rule: str
    path: str
    line: int  # 1-based; 0 for file-level findings
    message: str

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


ALLOW_RE = re.compile(r"//\s*lint-invariants:\s*allow\(([A-Za-z0-9_,\s]+)\)")


def strip_code(text: str, keep_strings: bool = False) -> str:
    """Replaces comments and (unless `keep_strings`) string/char literals
    with spaces.

    Line structure is preserved so findings can report accurate line
    numbers. Handles //, /* */, "...", '...', and raw string literals
    R"delim(...)delim". Escapes inside ordinary literals are honoured.
    `keep_strings=True` blanks only comments — R6 inspects literal metric
    names, but must not fire on names quoted in prose.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":  # block comment
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "R" and nxt == '"':  # raw string literal
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            close = f"){m.group(1)}\""
            j = text.find(close, i + m.end())
            j = n if j == -1 else j + len(close)
            span = text[i:j]
            out.append(span if keep_strings else
                       "".join(ch if ch == "\n" else " " for ch in span))
            i = j
        elif c in "\"'":  # ordinary string / char literal
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            span = text[i:j]
            out.append(span if keep_strings else
                       quote + " " * (j - i - 2) +
                       (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def scan_lines(path: str, raw: str, code: str, rule: str,
               pattern: re.Pattern, message: Callable[[str], str]) -> List[Finding]:
    findings = []
    raw_lines = raw.splitlines()
    for lineno, line in enumerate(code.splitlines(), start=1):
        m = pattern.search(line)
        if not m:
            continue
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if rule in allowed_rules(raw_line):
            continue
        findings.append(Finding(rule, path, lineno, message(m.group(0))))
    return findings


# --- R1: no exceptions in library code -------------------------------------

R1_PATTERN = re.compile(r"\b(throw|try|catch)\b")


def check_no_exceptions(path: str, raw: str, code: str) -> List[Finding]:
    return scan_lines(
        path, raw, code, "R1", R1_PATTERN,
        lambda tok: f"`{tok}` is forbidden in library code; return a "
                    f"Status/Result<T> instead (src/util/status.h)")


# --- R2: seeded-RNG facade ---------------------------------------------------

R2_PATTERN = re.compile(
    r"std::rand\b|(?<![\w:.])rand\s*\(|std::random_device\b"
    r"|std::mt19937(?:_64)?\b|std::minstd_rand0?\b"
    r"|std::default_random_engine\b|std::ranlux\w+\b"
    r"|std::knuth_b\b|(?<![\w:.])srand\s*\(")


def check_seeded_rng(path: str, raw: str, code: str) -> List[Finding]:
    return scan_lines(
        path, raw, code, "R2", R2_PATTERN,
        lambda tok: f"`{tok.strip('( ')}` bypasses the seeded Rng facade; use "
                    f"vastats::Rng (src/util/random.h) so streams stay "
                    f"deterministic")


# --- R3: IO discipline -------------------------------------------------------

R3_PATTERN = re.compile(
    r"std::cout\b|std::cerr\b|std::clog\b"
    r"|(?<![\w.])(?:std::)?(?:printf|fprintf|puts|fputs)\s*\(")


def check_io_discipline(path: str, raw: str, code: str) -> List[Finding]:
    return scan_lines(
        path, raw, code, "R3", R3_PATTERN,
        lambda tok: f"`{tok.strip('( ')}` writes to the console from library "
                    f"code; report failures via Status and leave IO to "
                    f"callers (snprintf into a buffer is fine)")


# --- R7: wall clocks stay behind the Stopwatch -------------------------------

R7_PATTERN = re.compile(
    r"std::chrono::\w*_clock::now\s*\("
    r"|(?<![\w:])(?:steady_clock|system_clock|high_resolution_clock)"
    r"::now\s*\(")


def check_virtual_time(path: str, raw: str, code: str) -> List[Finding]:
    return scan_lines(
        path, raw, code, "R7", R7_PATTERN,
        lambda tok: f"`{tok.strip('( ')}` reads a wall clock; simulated "
                    f"time flows through VirtualClock "
                    f"(src/integration/fault_model.h) and wall time through "
                    f"Stopwatch (src/util/stopwatch.h) only")


# --- R4: header guards and .cc/.h pairing -----------------------------------

def expected_guard(rel_header: str) -> str:
    # src/util/status.h -> VASTATS_UTIL_STATUS_H_
    parts = rel_header.split(os.sep)
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(h|hpp|hh)$", "", stem)
    return "VASTATS_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def check_header_guard(path: str, raw: str) -> List[Finding]:
    guard = expected_guard(path)
    ifndef = re.search(r"^#ifndef\s+(\S+)", raw, re.MULTILINE)
    define = re.search(r"^#define\s+(\S+)", raw, re.MULTILINE)
    findings = []
    if not ifndef or not define:
        findings.append(Finding(
            "R4", path, 1,
            f"missing include guard; expected `#ifndef {guard}`"))
        return findings
    if ifndef.group(1) != guard or define.group(1) != guard:
        lineno = raw[:ifndef.start()].count("\n") + 1
        findings.append(Finding(
            "R4", path, lineno,
            f"include guard `{ifndef.group(1)}` does not match the canonical "
            f"style; expected `{guard}`"))
    return findings


def check_cc_header_pairing(root: str, rel_cc: str, raw: str) -> List[Finding]:
    rel_h = re.sub(r"\.cc$", ".h", rel_cc)
    if not os.path.exists(os.path.join(root, rel_h)):
        return [Finding(
            "R4", rel_cc, 0,
            f"no sibling header `{rel_h}`; every src/ .cc pairs with a "
            f"header that declares its interface")]
    # The paired header must be the first include (self-contained headers).
    first_include = re.search(r'^#include\s+"([^"]+)"', raw, re.MULTILINE)
    want = "/".join(rel_h.split(os.sep)[1:])  # include path is src/-relative
    if not first_include or first_include.group(1) != want:
        got = first_include.group(1) if first_include else "<none>"
        lineno = (raw[:first_include.start()].count("\n") + 1
                  if first_include else 1)
        return [Finding(
            "R4", rel_cc, lineno,
            f"first include must be the paired header \"{want}\" "
            f"(got \"{got}\")")]
    return []


# --- R6: telemetry names are snake_case string literals ----------------------

R6_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
# Name is the first argument of the registry getters / BeginSpan, the second
# of the ScopedSpan constructor. \s* spans newlines, so wrapped calls where
# the literal sits on the next line still match.
R6_CALL_RE = re.compile(
    r"\b(GetCounter|GetGauge|GetHistogram|BeginSpan)\s*\(\s*")
R6_SCOPED_RE = re.compile(r"\bScopedSpan\s+\w+\s*\(\s*[^,()]+,\s*")


def check_telemetry_names(path: str, raw: str, code: str) -> List[Finding]:
    """`code` must come from strip_code(keep_strings=True): comments blanked,
    literals intact."""
    findings = []
    raw_lines = raw.splitlines()

    def check_at(pos: int, what: str) -> None:
        lineno = code[:pos].count("\n") + 1
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if "R6" in allowed_rules(raw_line):
            return
        literal = re.match(r'"([^"]*)"', code[pos:])
        if not literal:
            findings.append(Finding(
                "R6", path, lineno,
                f"{what} name must be a snake_case string literal so the "
                f"series is grep-able and exporter-safe"))
        elif not R6_NAME_RE.match(literal.group(1)):
            findings.append(Finding(
                "R6", path, lineno,
                f"{what} name \"{literal.group(1)}\" is not snake_case "
                f"([a-z][a-z0-9_]*)"))

    for m in R6_CALL_RE.finditer(code):
        check_at(m.end(), f"`{m.group(1)}`")
    for m in R6_SCOPED_RE.finditer(code):
        check_at(m.end(), "`ScopedSpan`")
    return findings


# --- R5: nodiscard on Status / Result ---------------------------------------

def check_nodiscard(root: str) -> List[Finding]:
    status_h = os.path.join("src", "util", "status.h")
    try:
        with open(os.path.join(root, status_h), encoding="utf-8") as f:
            raw = f.read()
    except OSError:
        return [Finding("R5", status_h, 0, "src/util/status.h is missing")]
    findings = []
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", raw):
        findings.append(Finding(
            "R5", status_h, 0,
            "`Status` must be declared `class [[nodiscard]] Status`"))
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Result\b", raw):
        findings.append(Finding(
            "R5", status_h, 0,
            "`Result` must be declared `class [[nodiscard]] Result`"))
    return findings


# --- driver ------------------------------------------------------------------

RNG_FACADE_FILES = {os.path.join("src", "util", "random.h"),
                    os.path.join("src", "util", "random.cc")}
# The Stopwatch is the single sanctioned wall-clock reader (phase timings).
CLOCK_FACADE_FILES = {os.path.join("src", "util", "stopwatch.h"),
                      os.path.join("src", "util", "stopwatch.cc")}
UTIL_PREFIX = os.path.join("src", "util") + os.sep
# The exporter module is the single library file sanctioned to do file IO
# (WriteTextFile); everything else reports through Status.
IO_EXEMPT_FILES = {os.path.join("src", "obs", "export.cc")}
# src/obs declares the telemetry API (string_view parameters, exporters);
# R6 polices the *call sites* elsewhere.
OBS_PREFIX = os.path.join("src", "obs") + os.sep


def iter_source_files(root: str, subdir: str):
    base = os.path.join(root, subdir)
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".cc", ".h", ".hpp", ".cpp")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root)


def lint_repo(root: str) -> List[Finding]:
    findings: List[Finding] = []
    for rel in iter_source_files(root, "src"):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
        code = strip_code(raw)
        findings += check_no_exceptions(rel, raw, code)
        if rel not in RNG_FACADE_FILES:
            findings += check_seeded_rng(rel, raw, code)
        if rel not in CLOCK_FACADE_FILES:
            findings += check_virtual_time(rel, raw, code)
        if not rel.startswith(UTIL_PREFIX) and rel not in IO_EXEMPT_FILES:
            findings += check_io_discipline(rel, raw, code)
        if not rel.startswith(OBS_PREFIX):
            findings += check_telemetry_names(
                rel, raw, strip_code(raw, keep_strings=True))
        if rel.endswith((".h", ".hpp")):
            findings += check_header_guard(rel, raw)
        elif rel.endswith(".cc"):
            findings += check_cc_header_pairing(root, rel, raw)
    # The seeded-RNG, wall-clock, and telemetry-naming rules also cover tests
    # and benches: a bare std::mt19937 in a test silently undermines
    # determinism_test's guarantees, a clock read makes a chaos test flaky,
    # and a non-literal metric name dodges the exporters' checks until some
    # export path happens to run.
    for subdir in ("tests", "bench"):
        if not os.path.isdir(os.path.join(root, subdir)):
            continue
        for rel in iter_source_files(root, subdir):
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                raw = f.read()
            code = strip_code(raw)
            findings += check_seeded_rng(rel, raw, code)
            findings += check_virtual_time(rel, raw, code)
            findings += check_telemetry_names(
                rel, raw, strip_code(raw, keep_strings=True))
    findings += check_nodiscard(root)
    return findings


# --- self-test ---------------------------------------------------------------

def self_test() -> int:
    """Checks that each rule fires on an injected violation and stays quiet
    on clean code. Runs entirely in memory; no files are written."""
    failures = []

    def expect(name: str, got: List[Finding], want_rule: str | None):
        if want_rule is None and got:
            failures.append(f"{name}: expected clean, got {got[0].render()}")
        elif want_rule is not None and not any(f.rule == want_rule for f in got):
            failures.append(f"{name}: expected a {want_rule} finding, got "
                            f"{[f.rule for f in got] or 'nothing'}")

    def run(checker, snippet: str) -> List[Finding]:
        return checker("src/core/fake.cc", snippet, strip_code(snippet))

    # R1 fires on throw/try/catch, ignores comments, strings, and allowances.
    expect("R1 throw", run(check_no_exceptions, "void F() { throw 1; }"), "R1")
    expect("R1 try", run(check_no_exceptions,
                         "void F() { try { G(); } catch (...) {} }"), "R1")
    expect("R1 comment", run(check_no_exceptions,
                             "// never throw here\nvoid F();"), None)
    expect("R1 string", run(check_no_exceptions,
                            'const char* k = "do not throw";'), None)
    expect("R1 identifier", run(check_no_exceptions,
                                "int retry_count = 0;"), None)
    expect("R1 allow", run(check_no_exceptions,
                           "throw 1; // lint-invariants: allow(R1)"), None)

    # R2 fires on every ad-hoc RNG spelling, ignores the facade's own calls.
    expect("R2 mt19937", run(check_seeded_rng, "std::mt19937 gen(42);"), "R2")
    expect("R2 mt19937_64", run(check_seeded_rng,
                                "std::mt19937_64 gen(42);"), "R2")
    expect("R2 rand", run(check_seeded_rng, "int x = rand();"), "R2")
    expect("R2 std::rand", run(check_seeded_rng, "int x = std::rand();"), "R2")
    expect("R2 rand at line start", run(check_seeded_rng, "rand();"), "R2")
    expect("R2 random_device", run(check_seeded_rng,
                                   "std::random_device rd;"), "R2")
    expect("R2 srand", run(check_seeded_rng, "srand(7);"), "R2")
    expect("R2 clean rng", run(check_seeded_rng, "Rng rng(seed);"), None)
    expect("R2 operand", run(check_seeded_rng, "x = operand(1);"), None)

    # R3 fires on console IO, allows snprintf formatting.
    expect("R3 cout", run(check_io_discipline, "std::cout << x;"), "R3")
    expect("R3 cerr", run(check_io_discipline, "std::cerr << x;"), "R3")
    expect("R3 printf", run(check_io_discipline, 'printf("%d", x);'), "R3")
    expect("R3 fprintf", run(check_io_discipline,
                             'fprintf(stderr, "%d", x);'), "R3")
    expect("R3 std::fprintf", run(check_io_discipline,
                                  'std::fprintf(stderr, "%d", x);'), "R3")
    expect("R3 snprintf", run(check_io_discipline,
                              "std::snprintf(buf, sizeof buf, f);"), None)
    expect("R3 std::snprintf in expr", run(check_io_discipline,
                                           "n = std::snprintf(b, s, f);"),
           None)

    # R7 fires on every wall-clock spelling, ignores VirtualClock reads,
    # comments, and allowances.
    expect("R7 chrono steady", run(check_virtual_time,
                                   "auto t = std::chrono::steady_clock::now();"),
           "R7")
    expect("R7 chrono system", run(check_virtual_time,
                                   "auto t = std::chrono::system_clock::now();"),
           "R7")
    expect("R7 chrono hires",
           run(check_virtual_time,
               "auto t = std::chrono::high_resolution_clock::now();"), "R7")
    expect("R7 using-decl clock", run(check_virtual_time,
                                      "auto t = steady_clock::now();"), "R7")
    expect("R7 virtual clock", run(check_virtual_time,
                                   "const double t = clock_.NowMs();"), None)
    expect("R7 comment", run(check_virtual_time,
                             "// never call steady_clock::now() here\nint x;"),
           None)
    expect("R7 allow",
           run(check_virtual_time,
               "auto t = std::chrono::steady_clock::now();"
               "  // lint-invariants: allow(R7)"), None)

    # R6 fires on bad or non-literal telemetry names, stays quiet on good
    # literals (including wrapped calls), comments, and allowances.
    def run_r6(snippet: str) -> List[Finding]:
        return check_telemetry_names(
            "src/core/fake.cc", snippet,
            strip_code(snippet, keep_strings=True))

    expect("R6 good counter",
           run_r6('obs.GetCounter("unis_draws_total").Increment();'), None)
    expect("R6 good wrapped call",
           run_r6('obs.GetHistogram(\n    "drift_ratio", kB).Observe(x);'),
           None)
    expect("R6 good span",
           run_r6('ScopedSpan span(obs.trace, "cio_greedy");'), None)
    expect("R6 camel name",
           run_r6('obs.GetCounter("DrawsTotal").Increment();'), "R6")
    expect("R6 kebab span",
           run_r6('ScopedSpan span(obs.trace, "cio-greedy");'), "R6")
    expect("R6 non-literal",
           run_r6("obs.GetGauge(name).Set(1.0);"), "R6")
    expect("R6 bad begin_span",
           run_r6('trace.BeginSpan("Bad Name");'), "R6")
    expect("R6 comment",
           run_r6('// call obs.GetCounter("NotChecked") here\nint x;'), None)
    expect("R6 allow",
           run_r6('trace.BeginSpan("BadName");'
                  '  // lint-invariants: allow(R6)'), None)

    # R4 guard style.
    good_guard = ("#ifndef VASTATS_CORE_FAKE_H_\n"
                  "#define VASTATS_CORE_FAKE_H_\n#endif\n")
    expect("R4 good guard",
           check_header_guard("src/core/fake.h", good_guard), None)
    bad_guard = "#ifndef FAKE_H\n#define FAKE_H\n#endif\n"
    expect("R4 bad guard",
           check_header_guard("src/core/fake.h", bad_guard), "R4")
    expect("R4 no guard", check_header_guard("src/core/fake.h", "int x;\n"),
           "R4")
    if expected_guard(os.path.join("src", "util", "status.h")) != \
            "VASTATS_UTIL_STATUS_H_":
        failures.append("R4 expected_guard mapping broke")

    # strip_code must preserve line numbers.
    stripped = strip_code("a\n/* b\nc */ d\n")
    if stripped.count("\n") != 3:
        failures.append("strip_code changed the line count")
    if "d" not in stripped or "c" in stripped:
        failures.append("strip_code mangled block comments")
    raw_str = strip_code('auto s = R"x(throw)x"; int y;')
    if "throw" in raw_str or "int y;" not in raw_str:
        failures.append("strip_code mangled raw strings")

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("lint_invariants self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter catches injected violations")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_repo(os.path.abspath(args.root))
    for finding in findings:
        print(finding.render(), file=sys.stderr)
    if findings:
        print(f"lint_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
