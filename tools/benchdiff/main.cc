// vastats_benchdiff: the perf-regression gate. Compares a fresh bench
// `--json` dump against a committed BENCH_*.json baseline.
//
// Exit codes: 0 pass (warnings allowed), 1 hard regression (>= fail-ratio
// timing regression, vanished metric, flipped flag), 2 usage / IO / parse /
// schema error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "diff.h"

namespace vastats {
namespace benchdiff {
namespace {

constexpr char kUsage[] =
    "usage: vastats_benchdiff --baseline FILE --current FILE [options]\n"
    "  --warn-ratio R   timing ratio that warns (default 1.5)\n"
    "  --fail-ratio R   timing ratio that hard-fails (default 2.0)\n"
    "  --floor SECONDS  skip timings where both sides are below this\n"
    "                   (default 0.005; sub-floor phases are jitter)\n"
    "  --quiet          print only warnings, failures, and the summary\n";

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool ParseRatio(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value > 0.0)) return false;
  *out = value;
  return true;
}

int Run(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  BenchDiffOptions options;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) break;
      baseline_path = v;
    } else if (arg == "--current") {
      const char* v = value();
      if (v == nullptr) break;
      current_path = v;
    } else if (arg == "--warn-ratio") {
      const char* v = value();
      if (v == nullptr || !ParseRatio(v, &options.warn_ratio)) {
        std::fprintf(stderr, "--warn-ratio needs a positive number\n");
        return 2;
      }
    } else if (arg == "--fail-ratio") {
      const char* v = value();
      if (v == nullptr || !ParseRatio(v, &options.fail_ratio)) {
        std::fprintf(stderr, "--fail-ratio needs a positive number\n");
        return 2;
      }
    } else if (arg == "--floor") {
      const char* v = value();
      if (v == nullptr || !ParseRatio(v, &options.floor_seconds)) {
        std::fprintf(stderr, "--floor needs a positive number\n");
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n%s", arg.c_str(), kUsage);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  std::string baseline_text;
  std::string current_text;
  std::string error;
  if (!ReadFile(baseline_path, &baseline_text, &error) ||
      !ReadFile(current_path, &current_text, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  const Result<DiffReport> result =
      DiffBenchJsonText(baseline_text, current_text, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  const DiffReport& report = result.value();
  int warnings = 0;
  int failures = 0;
  for (const DiffFinding& finding : report.findings) {
    if (finding.severity == DiffSeverity::kWarn) ++warnings;
    if (finding.severity == DiffSeverity::kFail) ++failures;
    if (quiet && finding.severity == DiffSeverity::kInfo) continue;
    std::printf("%s %s: %s\n", DiffSeverityToString(finding.severity),
                finding.path.c_str(), finding.message.c_str());
  }
  std::printf(
      "benchdiff: %d leaves compared, %d sub-floor timings skipped, "
      "%d warnings, %d failures\n",
      report.compared, report.skipped, warnings, failures);
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace benchdiff
}  // namespace vastats

int main(int argc, char** argv) {
  return vastats::benchdiff::Run(argc, argv);
}
