#include "diff.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vastats {
namespace benchdiff {
namespace {

std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return std::string(buffer);
}

const char* KindName(JsonKind kind) {
  switch (kind) {
    case JsonKind::kNull:
      return "null";
    case JsonKind::kBool:
      return "bool";
    case JsonKind::kNumber:
      return "number";
    case JsonKind::kString:
      return "string";
    case JsonKind::kArray:
      return "array";
    case JsonKind::kObject:
      return "object";
  }
  return "unknown";
}

void FlattenInto(const JsonValue& value, const std::string& path,
                 std::vector<FlatLeaf>* out) {
  if (value.is_object()) {
    for (const auto& [key, member] : value.members) {
      FlattenInto(member, path.empty() ? key : path + "." + key, out);
    }
    return;
  }
  if (value.is_array()) {
    for (size_t i = 0; i < value.items.size(); ++i) {
      FlattenInto(value.items[i], path + "[" + std::to_string(i) + "]", out);
    }
    return;
  }
  out->push_back(FlatLeaf{path, &value});
}

void Add(DiffReport* report, DiffSeverity severity, const std::string& path,
         std::string message) {
  report->findings.push_back(DiffFinding{severity, path, std::move(message)});
}

// Checks the shared document header; any mismatch here means the two dumps
// are not comparable at all.
Status CheckHeaders(const JsonValue& baseline, const JsonValue& current) {
  if (!baseline.is_object() || !current.is_object()) {
    return Status::InvalidArgument(
        "benchdiff: both documents must be JSON objects");
  }
  const JsonValue* base_version = baseline.FindNumber("schema_version");
  const JsonValue* cur_version = current.FindNumber("schema_version");
  if (base_version == nullptr || cur_version == nullptr) {
    return Status::InvalidArgument(
        "benchdiff: missing numeric schema_version field (re-emit the dump "
        "with a current bench binary, or refresh the committed baseline)");
  }
  if (base_version->number_value != cur_version->number_value) {
    return Status::InvalidArgument(
        "benchdiff: schema_version mismatch (baseline " +
        FormatNumber(base_version->number_value) + ", current " +
        FormatNumber(cur_version->number_value) +
        "); refresh the committed baseline before gating on it");
  }
  const JsonValue* base_name = baseline.FindString("benchmark");
  const JsonValue* cur_name = current.FindString("benchmark");
  if (base_name != nullptr && cur_name != nullptr &&
      base_name->string_value != cur_name->string_value) {
    return Status::InvalidArgument(
        "benchdiff: comparing different benchmarks (baseline \"" +
        base_name->string_value + "\", current \"" + cur_name->string_value +
        "\")");
  }
  return Status::Ok();
}

void DiffTiming(const std::string& path, double base, double cur,
                const BenchDiffOptions& options, DiffReport* report) {
  if (std::max(base, cur) < options.floor_seconds) {
    ++report->skipped;
    return;
  }
  ++report->compared;
  if (base <= 0.0) {
    Add(report, DiffSeverity::kWarn, path,
        "baseline timing is " + FormatNumber(base) + "; cannot ratio-gate " +
            FormatNumber(cur));
    return;
  }
  const double ratio = cur / base;
  const std::string detail = FormatNumber(base) + "s -> " + FormatNumber(cur) +
                             "s (" + FormatNumber(ratio) + "x)";
  if (ratio >= options.fail_ratio) {
    Add(report, DiffSeverity::kFail, path, "timing regression: " + detail);
  } else if (ratio >= options.warn_ratio) {
    Add(report, DiffSeverity::kWarn, path, "timing drift: " + detail);
  } else if (ratio <= 1.0 / options.fail_ratio) {
    Add(report, DiffSeverity::kInfo, path, "timing improved: " + detail);
  }
}

void DiffLeaf(const FlatLeaf& base, const FlatLeaf& cur,
              const BenchDiffOptions& options, DiffReport* report) {
  if (base.value->kind != cur.value->kind) {
    Add(report, DiffSeverity::kFail, base.path,
        std::string("kind changed: ") + KindName(base.value->kind) + " -> " +
            KindName(cur.value->kind));
    return;
  }
  switch (base.value->kind) {
    case JsonKind::kNumber:
      if (IsTimingPath(base.path)) {
        DiffTiming(base.path, base.value->number_value,
                   cur.value->number_value, options, report);
        return;
      }
      ++report->compared;
      if (base.value->number_value != cur.value->number_value) {
        // Counts can legitimately differ across hosts (pool_threads) or
        // after behavior-neutral retuning, so drift warns instead of
        // failing; a reviewer decides whether the baseline needs a refresh.
        Add(report, DiffSeverity::kWarn, base.path,
            "value drift: " + FormatNumber(base.value->number_value) +
                " -> " + FormatNumber(cur.value->number_value));
      }
      return;
    case JsonKind::kBool:
      ++report->compared;
      if (base.value->bool_value != cur.value->bool_value) {
        // Flags like bit_identical_across_widths are correctness claims.
        Add(report, DiffSeverity::kFail, base.path,
            std::string("flag flipped: ") +
                (base.value->bool_value ? "true" : "false") + " -> " +
                (cur.value->bool_value ? "true" : "false"));
      }
      return;
    case JsonKind::kString:
      ++report->compared;
      if (base.value->string_value != cur.value->string_value) {
        Add(report, DiffSeverity::kWarn, base.path,
            "string changed: \"" + base.value->string_value + "\" -> \"" +
                cur.value->string_value + "\"");
      }
      return;
    case JsonKind::kNull:
    case JsonKind::kArray:
    case JsonKind::kObject:
      // Null leaves carry no value to compare; arrays/objects never reach
      // here (FlattenInto recurses through them).
      return;
  }
}

}  // namespace

const char* DiffSeverityToString(DiffSeverity severity) {
  switch (severity) {
    case DiffSeverity::kInfo:
      return "INFO";
    case DiffSeverity::kWarn:
      return "WARN";
    case DiffSeverity::kFail:
      return "FAIL";
  }
  return "UNKNOWN";
}

bool DiffReport::HasFail() const {
  for (const DiffFinding& finding : findings) {
    if (finding.severity == DiffSeverity::kFail) return true;
  }
  return false;
}

bool DiffReport::HasWarn() const {
  for (const DiffFinding& finding : findings) {
    if (finding.severity == DiffSeverity::kWarn) return true;
  }
  return false;
}

std::vector<FlatLeaf> FlattenLeaves(const JsonValue& root) {
  std::vector<FlatLeaf> leaves;
  FlattenInto(root, "", &leaves);
  return leaves;
}

bool IsTimingPath(std::string_view path) {
  if (path.find("seconds") != std::string_view::npos) return true;
  if (path.size() >= 3 && path.substr(path.size() - 3) == "_ms") return true;
  return path.find("_ms.") != std::string_view::npos ||
         path.find("_ms[") != std::string_view::npos;
}

Result<DiffReport> DiffBenchJson(const JsonValue& baseline,
                                 const JsonValue& current,
                                 const BenchDiffOptions& options) {
  VASTATS_RETURN_IF_ERROR(CheckHeaders(baseline, current));

  const std::vector<FlatLeaf> base_leaves = FlattenLeaves(baseline);
  const std::vector<FlatLeaf> cur_leaves = FlattenLeaves(current);
  // Lookup only — iteration below walks the ordered leaf vectors, so the
  // report stays in document order (determinism rule A2).
  std::unordered_map<std::string_view, const FlatLeaf*> cur_by_path;
  cur_by_path.reserve(cur_leaves.size());
  for (const FlatLeaf& leaf : cur_leaves) {
    cur_by_path.emplace(leaf.path, &leaf);
  }

  DiffReport report;
  for (const FlatLeaf& base : base_leaves) {
    const auto it = cur_by_path.find(base.path);
    if (it == cur_by_path.end()) {
      Add(&report, DiffSeverity::kFail, base.path,
          "metric disappeared from the current dump");
      continue;
    }
    DiffLeaf(base, *it->second, options, &report);
  }

  std::unordered_map<std::string_view, const FlatLeaf*> base_by_path;
  base_by_path.reserve(base_leaves.size());
  for (const FlatLeaf& leaf : base_leaves) {
    base_by_path.emplace(leaf.path, &leaf);
  }
  for (const FlatLeaf& cur : cur_leaves) {
    if (base_by_path.find(cur.path) == base_by_path.end()) {
      Add(&report, DiffSeverity::kWarn, cur.path,
          "new metric not in the baseline (refresh it to start gating)");
    }
  }
  return report;
}

Result<DiffReport> DiffBenchJsonText(std::string_view baseline_text,
                                     std::string_view current_text,
                                     const BenchDiffOptions& options) {
  Result<JsonValue> baseline = ParseJson(baseline_text);
  if (!baseline.ok()) {
    return Status::InvalidArgument("benchdiff: baseline does not parse: " +
                                   baseline.status().ToString());
  }
  Result<JsonValue> current = ParseJson(current_text);
  if (!current.ok()) {
    return Status::InvalidArgument("benchdiff: current dump does not parse: " +
                                   current.status().ToString());
  }
  return DiffBenchJson(baseline.value(), current.value(), options);
}

}  // namespace benchdiff
}  // namespace vastats
