// Core comparison logic for vastats_benchdiff: diff a fresh bench `--json`
// dump against a committed BENCH_*.json baseline and classify every numeric
// drift as info, warning, or hard regression.
//
// The comparison is baseline-driven over flattened leaves (dotted paths,
// `a.b[2].c`). Timing leaves — any path containing "seconds" or an "_ms"
// key — are gated by ratio with an absolute floor so micro-phases that
// jitter by integer factors at the tens-of-microseconds scale cannot flake
// the gate. Everything else (counters, counts, flags) is compared exactly:
// numeric drift is a warning (machine-dependent values like pool_threads
// must not fail CI), a flipped bool or vanished metric is a failure.
//
// Both documents must carry matching numeric `schema_version` fields;
// anything else is a schema error, reported through Status so the CLI can
// exit 2 instead of producing a nonsense diff.

#ifndef VASTATS_TOOLS_BENCHDIFF_DIFF_H_
#define VASTATS_TOOLS_BENCHDIFF_DIFF_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/json_reader.h"
#include "util/status.h"

namespace vastats {
namespace benchdiff {

struct BenchDiffOptions {
  // Timing ratio current/baseline above which a leaf warns / hard-fails.
  double warn_ratio = 1.5;
  double fail_ratio = 2.0;
  // Timing leaves where both sides are below this many seconds are skipped
  // (counted, not compared): sub-floor phases are pure scheduler jitter.
  double floor_seconds = 0.005;
};

enum class DiffSeverity {
  kInfo = 0,  // notable but healthy (e.g. a big improvement)
  kWarn,      // drift worth a look; does not fail the gate
  kFail,      // hard regression or structural break
};

const char* DiffSeverityToString(DiffSeverity severity);

struct DiffFinding {
  DiffSeverity severity = DiffSeverity::kInfo;
  std::string path;     // dotted leaf path into the JSON document
  std::string message;  // human-readable, includes both values
};

struct DiffReport {
  std::vector<DiffFinding> findings;  // baseline document order
  int compared = 0;  // leaves actually compared
  int skipped = 0;   // timing leaves under the absolute floor

  bool HasFail() const;
  bool HasWarn() const;
};

// One scalar leaf of a flattened JSON tree. Arrays and objects recurse;
// null leaves are kept (kind mismatches against them still diagnose).
struct FlatLeaf {
  std::string path;
  const JsonValue* value = nullptr;  // borrowed from the parsed tree
};

// Depth-first flatten in document order (objects preserve member order, so
// the output — and every diff built from it — is deterministic).
std::vector<FlatLeaf> FlattenLeaves(const JsonValue& root);

// True when `path` names a wall-clock measurement (ratio-gated) rather
// than a count or flag (exactly compared).
bool IsTimingPath(std::string_view path);

// Diffs two parsed bench dumps. Fails with InvalidArgument when either
// document is not an object, lacks a numeric `schema_version`, or the
// versions / `benchmark` names disagree — those are schema errors, not
// regressions.
Result<DiffReport> DiffBenchJson(const JsonValue& baseline,
                                 const JsonValue& current,
                                 const BenchDiffOptions& options);

// ParseJson + DiffBenchJson; parse errors name the offending side.
Result<DiffReport> DiffBenchJsonText(std::string_view baseline_text,
                                     std::string_view current_text,
                                     const BenchDiffOptions& options);

}  // namespace benchdiff
}  // namespace vastats

#endif  // VASTATS_TOOLS_BENCHDIFF_DIFF_H_
