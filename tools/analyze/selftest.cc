#include "selftest.h"

#include <functional>

#include "baseline.h"
#include "repo_index.h"
#include "rules.h"
#include "source.h"

namespace vastats {
namespace analyze {
namespace {

class Harness {
 public:
  std::vector<std::string> failures;

  // Expects `got` to contain (or, with empty `want_rule`, not contain any)
  // finding of the wanted rule.
  void Expect(const std::string& name, const std::vector<Finding>& got,
              const std::string& want_rule) {
    if (want_rule.empty()) {
      if (!got.empty()) {
        failures.push_back(name + ": expected clean, got " + Render(got[0]));
      }
      return;
    }
    for (const Finding& finding : got) {
      if (finding.rule == want_rule) return;
    }
    failures.push_back(name + ": expected a " + want_rule + " finding, got " +
                       (got.empty() ? "nothing" : Render(got[0])));
  }

  void Check(const std::string& name, bool ok, const std::string& detail) {
    if (!ok) failures.push_back(name + ": " + detail);
  }
};

using FileChecker = std::function<void(const SourceFile&,
                                       std::vector<Finding>*)>;

std::vector<Finding> RunOn(const FileChecker& checker,
                           const std::string& snippet) {
  const SourceFile f = MakeSourceFile("src/core/fake.cc", snippet);
  std::vector<Finding> out;
  checker(f, &out);
  return out;
}

// Builds an index over in-memory files and runs an index-aware checker on
// the first file.
std::vector<Finding> RunIndexed(
    const std::function<void(const SourceFile&, const RepoIndex&,
                             std::vector<Finding>*)>& checker,
    std::vector<std::pair<std::string, std::string>> files) {
  std::vector<SourceFile> sources;
  for (auto& [path, text] : files) {
    sources.push_back(MakeSourceFile(path, std::move(text)));
  }
  const std::string first = sources[0].rel_path;
  const RepoIndex index = BuildRepoIndex(std::move(sources));
  std::vector<Finding> out;
  checker(index.files[static_cast<size_t>(index.by_path.at(first))], index,
          &out);
  return out;
}

std::vector<Finding> RunA1(
    std::vector<std::pair<std::string, std::string>> files) {
  std::vector<SourceFile> sources;
  for (auto& [path, text] : files) {
    sources.push_back(MakeSourceFile(path, std::move(text)));
  }
  const RepoIndex index = BuildRepoIndex(std::move(sources));
  std::vector<Finding> out;
  CheckA1Layering(index, &out);
  return out;
}

void TestPythonCorpus(Harness* h) {
  // R1 fires on throw/try/catch, ignores comments, strings, allowances.
  h->Expect("R1 throw", RunOn(CheckR1NoExceptions, "void F() { throw 1; }"),
            "R1");
  h->Expect("R1 try",
            RunOn(CheckR1NoExceptions,
                  "void F() { try { G(); } catch (...) {} }"),
            "R1");
  h->Expect("R1 comment",
            RunOn(CheckR1NoExceptions, "// never throw here\nvoid F();"), "");
  h->Expect("R1 string",
            RunOn(CheckR1NoExceptions, "const char* k = \"do not throw\";"),
            "");
  h->Expect("R1 identifier",
            RunOn(CheckR1NoExceptions, "int retry_count = 0;"), "");
  h->Expect("R1 allow",
            RunOn(CheckR1NoExceptions,
                  "throw 1; // lint-invariants: allow(R1)"),
            "");

  // R2 fires on every ad-hoc RNG spelling, not on the facade's own names.
  h->Expect("R2 mt19937", RunOn(CheckR2SeededRng, "std::mt19937 gen(42);"),
            "R2");
  h->Expect("R2 mt19937_64",
            RunOn(CheckR2SeededRng, "std::mt19937_64 gen(42);"), "R2");
  h->Expect("R2 rand", RunOn(CheckR2SeededRng, "int x = rand();"), "R2");
  h->Expect("R2 std::rand", RunOn(CheckR2SeededRng, "int x = std::rand();"),
            "R2");
  h->Expect("R2 rand at line start", RunOn(CheckR2SeededRng, "rand();"),
            "R2");
  h->Expect("R2 random_device",
            RunOn(CheckR2SeededRng, "std::random_device rd;"), "R2");
  h->Expect("R2 srand", RunOn(CheckR2SeededRng, "srand(7);"), "R2");
  h->Expect("R2 clean rng", RunOn(CheckR2SeededRng, "Rng rng(seed);"), "");
  h->Expect("R2 operand", RunOn(CheckR2SeededRng, "x = operand(1);"), "");

  // R3 fires on console IO, allows snprintf formatting.
  h->Expect("R3 cout", RunOn(CheckR3IoDiscipline, "std::cout << x;"), "R3");
  h->Expect("R3 cerr", RunOn(CheckR3IoDiscipline, "std::cerr << x;"), "R3");
  h->Expect("R3 printf", RunOn(CheckR3IoDiscipline, "printf(\"%d\", x);"),
            "R3");
  h->Expect("R3 fprintf",
            RunOn(CheckR3IoDiscipline, "fprintf(stderr, \"%d\", x);"), "R3");
  h->Expect("R3 std::fprintf",
            RunOn(CheckR3IoDiscipline, "std::fprintf(stderr, \"%d\", x);"),
            "R3");
  h->Expect("R3 snprintf",
            RunOn(CheckR3IoDiscipline, "std::snprintf(buf, sizeof buf, f);"),
            "");
  h->Expect("R3 std::snprintf in expr",
            RunOn(CheckR3IoDiscipline, "n = std::snprintf(b, s, f);"), "");

  // R7 fires on every wall-clock spelling, not on VirtualClock reads.
  h->Expect("R7 chrono steady",
            RunOn(CheckR7VirtualTime,
                  "auto t = std::chrono::steady_clock::now();"),
            "R7");
  h->Expect("R7 chrono system",
            RunOn(CheckR7VirtualTime,
                  "auto t = std::chrono::system_clock::now();"),
            "R7");
  h->Expect("R7 chrono hires",
            RunOn(CheckR7VirtualTime,
                  "auto t = std::chrono::high_resolution_clock::now();"),
            "R7");
  h->Expect("R7 using-decl clock",
            RunOn(CheckR7VirtualTime, "auto t = steady_clock::now();"),
            "R7");
  h->Expect("R7 virtual clock",
            RunOn(CheckR7VirtualTime, "const double t = clock_.NowMs();"),
            "");
  h->Expect("R7 comment",
            RunOn(CheckR7VirtualTime,
                  "// never call steady_clock::now() here\nint x;"),
            "");
  h->Expect("R7 allow",
            RunOn(CheckR7VirtualTime,
                  "auto t = std::chrono::steady_clock::now();"
                  "  // lint-invariants: allow(R7)"),
            "");

  // R6 fires on bad or non-literal telemetry names.
  h->Expect("R6 good counter",
            RunOn(CheckR6TelemetryNames,
                  "obs.GetCounter(\"unis_draws_total\").Increment();"),
            "");
  h->Expect("R6 good wrapped call",
            RunOn(CheckR6TelemetryNames,
                  "obs.GetHistogram(\n    \"drift_ratio\", kB).Observe(x);"),
            "");
  h->Expect("R6 good span",
            RunOn(CheckR6TelemetryNames,
                  "ScopedSpan span(obs.trace, \"cio_greedy\");"),
            "");
  h->Expect("R6 camel name",
            RunOn(CheckR6TelemetryNames,
                  "obs.GetCounter(\"DrawsTotal\").Increment();"),
            "R6");
  h->Expect("R6 kebab span",
            RunOn(CheckR6TelemetryNames,
                  "ScopedSpan span(obs.trace, \"cio-greedy\");"),
            "R6");
  h->Expect("R6 non-literal",
            RunOn(CheckR6TelemetryNames, "obs.GetGauge(name).Set(1.0);"),
            "R6");
  h->Expect("R6 bad begin_span",
            RunOn(CheckR6TelemetryNames, "trace.BeginSpan(\"Bad Name\");"),
            "R6");
  h->Expect("R6 comment",
            RunOn(CheckR6TelemetryNames,
                  "// call obs.GetCounter(\"NotChecked\") here\nint x;"),
            "");
  h->Expect("R6 allow",
            RunOn(CheckR6TelemetryNames,
                  "trace.BeginSpan(\"BadName\");"
                  "  // lint-invariants: allow(R6)"),
            "");

  // R4 guard style.
  auto guard_findings = [](const std::string& path, const std::string& text) {
    const SourceFile f = MakeSourceFile(path, text);
    std::vector<Finding> out;
    CheckR4HeaderGuard(f, &out);
    return out;
  };
  h->Expect("R4 good guard",
            guard_findings("src/core/fake.h",
                           "#ifndef VASTATS_CORE_FAKE_H_\n"
                           "#define VASTATS_CORE_FAKE_H_\n#endif\n"),
            "");
  h->Expect("R4 bad guard",
            guard_findings("src/core/fake.h",
                           "#ifndef FAKE_H\n#define FAKE_H\n#endif\n"),
            "R4");
  h->Expect("R4 no guard", guard_findings("src/core/fake.h", "int x;\n"),
            "R4");
  h->Check("R4 expected_guard mapping",
           ExpectedGuard("src/util/status.h") == "VASTATS_UTIL_STATUS_H_",
           "src/util/status.h mapped to " + ExpectedGuard("src/util/status.h"));

  // The lexer must keep line numbers and not leak comment/raw-string text.
  const LexedSource stripped = Lex("a\n/* b\nc */ d\n");
  h->Check("lexer line count",
           !stripped.tokens.empty() && stripped.tokens.back().line == 3,
           "token lines shifted across a block comment");
  bool saw_c = false;
  for (const Token& t : stripped.tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "c") saw_c = true;
  }
  h->Check("lexer block comment", !saw_c, "comment text leaked into tokens");
  const LexedSource raw = Lex("auto s = R\"x(throw)x\"; int y;");
  bool raw_ok = true;
  for (const Token& t : raw.tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "throw") raw_ok = false;
  }
  h->Check("lexer raw string", raw_ok, "raw-string contents leaked");
}

void TestStructuralRules(Harness* h) {
  // A1: a util header including obs is a back-edge; mutual includes cycle.
  h->Expect("A1 back-edge",
            RunA1({{"src/util/a.h",
                    "#ifndef A_H\n#define A_H\n#include \"obs/b.h\"\n"
                    "#endif\n"},
                   {"src/obs/b.h", "#ifndef B_H\n#define B_H\n#endif\n"}}),
            "A1");
  h->Expect("A1 clean downward",
            RunA1({{"src/obs/b.h",
                    "#ifndef B_H\n#define B_H\n#include \"util/a.h\"\n"
                    "#endif\n"},
                   {"src/util/a.h", "#ifndef A_H\n#define A_H\n#endif\n"}}),
            "");
  h->Expect("A1 cycle",
            RunA1({{"src/stats/a.h", "#include \"stats/b.h\"\n"},
                   {"src/stats/b.h", "#include \"stats/a.h\"\n"}}),
            "A1");
  // transport sits beside integration (rank 3): sampling must not reach up
  // into it, while core may reach down.
  h->Expect("A1 sampling into transport is a back-edge",
            RunA1({{"src/sampling/a.h",
                    "#ifndef A_H\n#define A_H\n"
                    "#include \"transport/b.h\"\n#endif\n"},
                   {"src/transport/b.h", "#ifndef B_H\n#define B_H\n#endif\n"}}),
            "A1");
  h->Expect("A1 core over transport is clean",
            RunA1({{"src/core/c.h",
                    "#ifndef C_H\n#define C_H\n"
                    "#include \"transport/b.h\"\n#endif\n"},
                   {"src/transport/b.h", "#ifndef B_H\n#define B_H\n#endif\n"}}),
            "");

  // A2: unordered iteration feeding an accumulator / RNG / unsorted output.
  h->Expect("A2 accumulate",
            RunIndexed(CheckA2UnorderedIteration,
                       {{"src/core/fake.cc",
                         "void F(const std::unordered_map<int, double>& m) {\n"
                         "  double sum = 0.0;\n"
                         "  for (const auto& [k, v] : m) sum += v;\n"
                         "}\n"}}),
            "A2");
  h->Expect("A2 member through header",
            RunIndexed(CheckA2UnorderedIteration,
                       {{"src/core/fake.cc",
                         "#include \"core/fake.h\"\n"
                         "void C::F() {\n"
                         "  for (const auto& [k, v] : bindings_) "
                         "out_.push_back(v);\n"
                         "}\n"},
                        {"src/core/fake.h",
                         "class C {\n  std::unordered_map<int, double> "
                         "bindings_;\n};\n"}}),
            "A2");
  h->Expect("A2 sorted snapshot",
            RunIndexed(CheckA2UnorderedIteration,
                       {{"src/core/fake.cc",
                         "std::vector<int> F(const std::unordered_set<int>& "
                         "s) {\n"
                         "  std::vector<int> keys;\n"
                         "  for (const int k : s) keys.push_back(k);\n"
                         "  std::sort(keys.begin(), keys.end());\n"
                         "  return keys;\n"
                         "}\n"}}),
            "");
  h->Expect("A2 rng in body",
            RunIndexed(CheckA2UnorderedIteration,
                       {{"src/core/fake.cc",
                         "void F(const std::unordered_set<int>& s, Rng& rng) "
                         "{\n"
                         "  for (const int k : s) Use(k, rng.Uniform());\n"
                         "}\n"}}),
            "A2");
  h->Expect("A2 allow",
            RunIndexed(CheckA2UnorderedIteration,
                       {{"src/core/fake.cc",
                         "void F(const std::unordered_map<int, double>& m) {\n"
                         "  double s = 0.0;\n"
                         "  // lint-invariants: allow(A2)\n"
                         "  for (const auto& [k, v] : m) s += v;  "
                         "// lint-invariants: allow(A2)\n"
                         "}\n"}}),
            "");
  h->Expect("A2 lookup only",
            RunIndexed(CheckA2UnorderedIteration,
                       {{"src/core/fake.cc",
                         "double F(const std::unordered_map<int, double>& m) "
                         "{\n"
                         "  const auto it = m.find(3);\n"
                         "  return it == m.end() ? 0.0 : it->second;\n"
                         "}\n"}}),
            "");

  // A3: discarded Status / Result.
  const std::string status_decls =
      "Status Commit();\nResult<double> Measure();\n";
  h->Expect("A3 void cast",
            RunIndexed(CheckA3DiscardedStatus,
                       {{"src/core/fake.cc",
                         status_decls + "void F() { (void)Commit(); }\n"}}),
            "A3");
  h->Expect("A3 static_cast void",
            RunIndexed(CheckA3DiscardedStatus,
                       {{"src/core/fake.cc",
                         status_decls +
                             "void F() { static_cast<void>(Measure()); }\n"}}),
            "A3");
  h->Expect("A3 bare call",
            RunIndexed(CheckA3DiscardedStatus,
                       {{"src/core/fake.cc",
                         status_decls + "void F() { Commit(); }\n"}}),
            "A3");
  h->Expect("A3 handled",
            RunIndexed(CheckA3DiscardedStatus,
                       {{"src/core/fake.cc",
                         status_decls +
                             "Status F() { return Commit(); }\n"}}),
            "");
  h->Expect("A3 void overload ambiguity",
            RunIndexed(CheckA3DiscardedStatus,
                       {{"src/core/fake.cc",
                         "Status Rebuild(int n);\n"
                         "void F() { Rebuild(3); }\n"},
                        {"src/core/other.h",
                         "class C {\n  void Rebuild();\n};\n"}}),
            "");
  h->Expect("A3 allow",
            RunIndexed(CheckA3DiscardedStatus,
                       {{"src/core/fake.cc",
                         status_decls +
                             "void F() { (void)Commit(); "
                             "// lint-invariants: allow(A3)\n}\n"}}),
            "");

  // A4: switches over repo enums.
  const std::string enum_decl =
      "enum class Mode { kFast, kSafe, kDry };\n";
  h->Expect("A4 default",
            RunIndexed(CheckA4ExhaustiveSwitch,
                       {{"src/core/fake.cc",
                         enum_decl +
                             "int F(Mode m) {\n  switch (m) {\n"
                             "    case Mode::kFast: return 1;\n"
                             "    default: return 0;\n  }\n}\n"}}),
            "A4");
  h->Expect("A4 missing enumerator",
            RunIndexed(CheckA4ExhaustiveSwitch,
                       {{"src/core/fake.cc",
                         enum_decl +
                             "int F(Mode m) {\n  switch (m) {\n"
                             "    case Mode::kFast: return 1;\n"
                             "    case Mode::kSafe: return 2;\n  }\n"
                             "  return 0;\n}\n"}}),
            "A4");
  h->Expect("A4 exhaustive",
            RunIndexed(CheckA4ExhaustiveSwitch,
                       {{"src/core/fake.cc",
                         enum_decl +
                             "int F(Mode m) {\n  switch (m) {\n"
                             "    case Mode::kFast: return 1;\n"
                             "    case Mode::kSafe: return 2;\n"
                             "    case Mode::kDry: return 3;\n  }\n"
                             "  return 0;\n}\n"}}),
            "");
  h->Expect("A4 non-enum switch",
            RunIndexed(CheckA4ExhaustiveSwitch,
                       {{"src/core/fake.cc",
                         "int F(int x) {\n  switch (x) {\n"
                         "    case 1: return 1;\n    default: return 0;\n"
                         "  }\n}\n"}}),
            "");

  // A5: mutable static-storage state.
  auto run_a5 = [](const std::string& path, const std::string& text) {
    const SourceFile f = MakeSourceFile(path, text);
    std::vector<Finding> out;
    CheckA5MutableGlobals(f, &out);
    return out;
  };
  h->Expect("A5 namespace global",
            run_a5("src/core/fake.cc",
                   "namespace vastats {\nint g_calls = 0;\n}\n"),
            "A5");
  h->Expect("A5 function static",
            run_a5("src/core/fake.cc",
                   "void F() { static int warm_calls = 0; Use(&warm_calls); "
                   "}\n"),
            "A5");
  h->Expect("A5 static member",
            run_a5("src/core/fake.h",
                   "class C {\n  static int live_count_;\n};\n"),
            "A5");
  h->Expect("A5 const table",
            run_a5("src/core/fake.cc",
                   "namespace {\nconst double kTable[] = {1.0, 2.0};\n"
                   "constexpr int kN = 2;\n}\n"),
            "");
  h->Expect("A5 local variable",
            run_a5("src/core/fake.cc",
                   "void F() { int local = 0; Use(&local); }\n"),
            "");
  h->Expect("A5 pointer const binding",
            run_a5("src/core/fake.cc",
                   "namespace {\nstatic Pool* const g_pool = new Pool();\n"
                   "}\n"),
            "A5");
  h->Expect("A5 sanctioned facade",
            run_a5("src/util/thread_pool.cc",
                   "namespace {\nint g_started = 0;\n}\n"),
            "");
  h->Expect("A5 allow",
            run_a5("src/core/fake.cc",
                   "void F() {\n  thread_local Plan plan;  "
                   "// lint-invariants: allow(A5)\n  Use(&plan);\n}\n"),
            "");
  h->Expect("A5 function decl not flagged",
            run_a5("src/core/fake.h",
                   "namespace vastats {\nStatus Connect(int retries);\n}\n"),
            "");
  h->Expect("A5 serving cache facade sanctioned",
            run_a5("src/serving/caches.cc",
                   "namespace {\nthread_local std::vector<TlsPlanEntry> "
                   "g_tls_plans;\nstd::atomic<uint64_t> g_next_uid{1};\n}\n"),
            "");
  h->Expect("A5 unsanctioned serving static still flagged",
            run_a5("src/serving/rogue_cache.cc",
                   "namespace {\nstatic AnswerCache* g_answers = "
                   "new AnswerCache();\n}\n"),
            "A5");

  // A6: one telemetry name, one instrument kind, repo-wide.
  auto run_a6 = [](std::vector<std::pair<std::string, std::string>> files) {
    std::vector<SourceFile> sources;
    for (auto& [path, text] : files) {
      sources.push_back(MakeSourceFile(path, std::move(text)));
    }
    const RepoIndex index = BuildRepoIndex(std::move(sources));
    std::vector<Finding> out;
    CheckA6TelemetryNames(index, &out);
    return out;
  };
  h->Expect("A6 counter vs gauge across files",
            run_a6({{"src/stats/a.cc",
                     "void F(MetricsRegistry* m) {\n"
                     "  m->GetCounter(\"draws_total\").Increment();\n}\n"},
                    {"src/core/b.cc",
                     "void G(MetricsRegistry* m) {\n"
                     "  m->GetGauge(\"draws_total\").Set(1.0);\n}\n"}}),
            "A6");
  h->Expect("A6 histogram vs span",
            run_a6({{"src/core/a.cc",
                     "void F(const ObsOptions& obs) {\n"
                     "  ScopedSpan span(obs, \"kde_fit\");\n"
                     "  obs.metrics->GetHistogram(\"kde_fit\").Observe(1.0);\n"
                     "}\n"}}),
            "A6");
  h->Expect("A6 same kind twice is fine",
            run_a6({{"src/stats/a.cc",
                     "void F(MetricsRegistry* m) {\n"
                     "  m->GetCounter(\"draws_total\").Increment();\n}\n"},
                    {"src/core/b.cc",
                     "void G(MetricsRegistry* m) {\n"
                     "  m->GetCounter(\"draws_total\").Increment(2);\n}\n"}}),
            "");
  h->Expect("A6 distinct names are fine",
            run_a6({{"src/core/a.cc",
                     "void F(MetricsRegistry* m) {\n"
                     "  m->GetCounter(\"unis_draws_total\").Increment();\n"
                     "  m->GetGauge(\"queue_depth\").Set(2.0);\n"
                     "  m->GetHistogram(\"task_latency_seconds\");\n}\n"}}),
            "");
  h->Expect("A6 variable name invisible",
            run_a6({{"src/core/a.cc",
                     "void F(MetricsRegistry* m, const std::string& n) {\n"
                     "  m->GetCounter(n).Increment();\n"
                     "  m->GetGauge(n).Set(1.0);\n}\n"}}),
            "");
  h->Expect("A6 tests exempt",
            run_a6({{"src/core/a.cc",
                     "void F(MetricsRegistry* m) {\n"
                     "  m->GetCounter(\"draws_total\").Increment();\n}\n"},
                    {"tests/a_test.cc",
                     "void G(MetricsRegistry* m) {\n"
                     "  m->GetGauge(\"draws_total\").Set(1.0);\n}\n"}}),
            "");
  h->Expect("A6 allow",
            run_a6({{"src/core/a.cc",
                     "void F(MetricsRegistry* m) {\n"
                     "  m->GetCounter(\"draws_total\").Increment();\n"
                     "  m->GetGauge(\"draws_total\")"
                     ".Set(1.0);  // lint-invariants: allow(A6)\n}\n"}}),
            "");
  h->Expect("A6 journal event steals a counter name",
            run_a6({{"src/core/a.cc",
                     "void F(MetricsRegistry* m, FlightRecorder* r) {\n"
                     "  m->GetCounter(\"draws_total\").Increment();\n"
                     "  r->InternName(\"draws_total\");\n}\n"}}),
            "A6");
  h->Expect("A6 journal mirror allowlist",
            run_a6({{"src/serving/a.cc",
                     "void F(MetricsRegistry* m, FlightRecorder* r) {\n"
                     "  m->GetGauge(\"serving_in_flight\").Set(1.0);\n"
                     "  r->InternName(\"serving_in_flight\");\n}\n"}}),
            "");
  h->Expect("A6 transport in-flight mirror allowlisted",
            run_a6({{"src/transport/a.cc",
                     "void F(MetricsRegistry* m, FlightRecorder* r) {\n"
                     "  m->GetGauge(\"transport_in_flight\").Set(1.0);\n"
                     "  r->InternName(\"transport_in_flight\");\n}\n"}}),
            "");
  h->Expect("A6 allowlist does not cover metric pairs",
            run_a6({{"src/serving/a.cc",
                     "void F(MetricsRegistry* m) {\n"
                     "  m->GetGauge(\"serving_in_flight\").Set(1.0);\n"
                     "  m->GetCounter(\"serving_in_flight\").Increment();\n"
                     "}\n"}}),
            "A6");
}

void TestBaseline(Harness* h) {
  const Finding finding{"A5", "src/core/fake.cc", 3, "mutable state"};
  const Baseline baseline = ParseBaseline(
      "# comment\n\n" + Render(finding) + "\n");
  const BaselineSplit split = ApplyBaseline({finding, finding}, baseline);
  h->Check("baseline absorbs once",
           split.baselined.size() == 1 && split.fresh.size() == 1,
           "multiset semantics broken");
  const BaselineSplit none = ApplyBaseline({finding}, Baseline());
  h->Check("empty baseline", none.fresh.size() == 1, "finding vanished");
}

}  // namespace

std::vector<std::string> RunSelfTest() {
  Harness harness;
  TestPythonCorpus(&harness);
  TestStructuralRules(&harness);
  TestBaseline(&harness);
  return harness.failures;
}

}  // namespace analyze
}  // namespace vastats
