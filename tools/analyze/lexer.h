// Comment- and string-aware C++ token stream for the vastats static
// analyzer.
//
// This is not a compiler front end: it produces exactly the view the rules
// need — identifiers, punctuators, numbers, and string/char literals, with
// comments stripped but their `// lint-invariants: allow(...)` suppressions
// retained per line, and preprocessor directives captured as structured
// records (the tokens of a directive line still appear in the main stream,
// flagged `from_directive`, because the text-level rules R1-R3/R6/R7 must
// see macro bodies just like the retired Python linter did; the structural
// rules A2-A5 skip them).
//
// Line numbers are 1-based. Backslash-newline continuations extend a
// directive's logical line and are treated as whitespace elsewhere.

#ifndef VASTATS_TOOLS_ANALYZE_LEXER_H_
#define VASTATS_TOOLS_ANALYZE_LEXER_H_

#include <string>
#include <vector>

namespace vastats {
namespace analyze {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (throw, try, const, ...)
  kNumber,
  kString,      // ordinary "..." literal; text is the *inner* content
  kRawString,   // R"delim(...)delim" literal; text is the inner content
  kChar,        // '...' literal; text is the inner content
  kPunct,       // operators and punctuation, multi-char forms fused
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;             // 1-based line of the token's first character
  bool from_directive = false;
};

// One preprocessor directive (`#` first non-whitespace on its line).
struct Directive {
  std::string keyword;      // "include", "ifndef", "define", ...
  // For #include: the include path; quoted is true for "..." includes,
  // false for <...>. For #ifndef / #define: the first token after the
  // keyword. Empty when absent.
  std::string argument;
  bool quoted = false;
  int line = 0;             // line of the `#`
  // True when the directive is spelled `#keyword` with the `#` at column
  // zero and no space before the keyword — the spelling the Python
  // linter's `^#ifndef` / `^#include` anchors accepted.
  bool canonical_spelling = false;
};

struct LexedSource {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  // Indices into `tokens` of the non-directive tokens, in order — the view
  // the structural rules (A2-A5) walk so macro bodies cannot confuse
  // brace/statement tracking.
  std::vector<int> structural;
  int num_lines = 0;
};

// Tokenizes `text`. Never fails: unrecognized bytes become single-character
// punctuators so the rules can keep walking.
LexedSource Lex(const std::string& text);

// Parses the trailing `// lint-invariants: allow(R1, A2)` suppression of a
// raw source line into rule names. Mirrors the Python linter's ALLOW_RE so
// the existing allow-comments keep working unchanged; the same syntax
// suppresses the analyzer-only rules (A1-A5).
std::vector<std::string> AllowedRules(const std::string& raw_line);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_LEXER_H_
