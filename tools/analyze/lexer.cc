#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace vastats {
namespace analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Raw-string prefixes: the identifier directly before a `"` that switches
// the literal into raw mode.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

// Multi-character punctuators, longest first so greedy matching is correct.
constexpr const char* kPuncts3[] = {"<<=", ">>=", "<=>", "->*", "..."};
constexpr const char* kPuncts2[] = {"::", "->", "<<", ">>", "<=", ">=",
                                    "==", "!=", "&&", "||", "+=", "-=",
                                    "*=", "/=", "%=", "&=", "|=", "^=",
                                    "++", "--", "##"};

}  // namespace

std::vector<std::string> AllowedRules(const std::string& raw_line) {
  // Mirrors the Python ALLOW_RE:  //\s*lint-invariants:\s*allow\((...)\)
  std::vector<std::string> rules;
  const std::string marker = "lint-invariants:";
  for (size_t i = 0; i + 1 < raw_line.size(); ++i) {
    if (raw_line[i] != '/' || raw_line[i + 1] != '/') continue;
    size_t p = i + 2;
    while (p < raw_line.size() &&
           std::isspace(static_cast<unsigned char>(raw_line[p]))) {
      ++p;
    }
    if (raw_line.compare(p, marker.size(), marker) != 0) continue;
    p += marker.size();
    while (p < raw_line.size() &&
           std::isspace(static_cast<unsigned char>(raw_line[p]))) {
      ++p;
    }
    if (raw_line.compare(p, 6, "allow(") != 0) continue;
    p += 6;
    const size_t close = raw_line.find(')', p);
    if (close == std::string::npos) continue;
    // Split the comma-separated rule list, trimming whitespace.
    std::string current;
    for (size_t q = p; q <= close; ++q) {
      const char c = raw_line[q];
      if (c == ',' || c == ')') {
        if (!current.empty()) rules.push_back(current);
        current.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        current += c;
      }
    }
    return rules;
  }
  return rules;
}

LexedSource Lex(const std::string& text) {
  LexedSource out;
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;
  bool line_has_token = false;  // any non-whitespace seen on this line

  bool in_directive = false;
  Directive directive;
  size_t directive_first_token = 0;  // index into out.tokens of the `#`
  size_t hash_offset = 0;

  auto finalize_directive = [&]() {
    if (!in_directive) return;
    in_directive = false;
    // keyword = first identifier token after `#`.
    size_t k = directive_first_token + 1;
    if (k < out.tokens.size() &&
        out.tokens[k].kind == TokenKind::kIdentifier) {
      directive.keyword = out.tokens[k].text;
      if (directive.keyword == "include") {
        for (size_t t = k + 1; t < out.tokens.size(); ++t) {
          if (out.tokens[t].kind == TokenKind::kString) {
            directive.argument = out.tokens[t].text;
            directive.quoted = true;
            break;
          }
          if (out.tokens[t].kind == TokenKind::kPunct &&
              out.tokens[t].text == "<") {
            // Reassemble the <...> path from the tokens between the angle
            // brackets.
            std::string path;
            for (size_t u = t + 1; u < out.tokens.size(); ++u) {
              if (out.tokens[u].kind == TokenKind::kPunct &&
                  out.tokens[u].text == ">") {
                break;
              }
              path += out.tokens[u].text;
            }
            directive.argument = path;
            directive.quoted = false;
            break;
          }
        }
      } else if (k + 1 < out.tokens.size()) {
        directive.argument = out.tokens[k + 1].text;
      }
    }
    out.directives.push_back(directive);
    directive = Directive();
  };

  auto push = [&](TokenKind kind, std::string tok_text, int tok_line) {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.line = tok_line;
    t.from_directive = in_directive;
    if (!in_directive) {
      out.structural.push_back(static_cast<int>(out.tokens.size()));
    }
    out.tokens.push_back(std::move(t));
  };

  auto newline = [&]() {
    finalize_directive();
    ++line;
    line_start = i;  // caller advances i past the '\n' first
    line_has_token = false;
  };

  while (i < n) {
    const char c = text[i];
    const char nxt = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      ++i;
      newline();
      continue;
    }
    if (c == '\\' && (nxt == '\n' || (nxt == '\r' && i + 2 < n &&
                                      text[i + 2] == '\n'))) {
      // Line continuation: the logical line (and any directive) continues.
      i += nxt == '\r' ? 3 : 2;
      ++line;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && nxt == '/') {  // line comment
      const size_t j = text.find('\n', i);
      i = j == std::string::npos ? n : j;
      continue;
    }
    if (c == '/' && nxt == '*') {  // block comment
      size_t j = text.find("*/", i + 2);
      j = j == std::string::npos ? n : j + 2;
      for (size_t p = i; p < j; ++p) {
        if (text[p] == '\n') ++line;
      }
      i = j;
      continue;
    }
    if (c == '#' && !line_has_token && !in_directive) {
      in_directive = true;
      directive.line = line;
      hash_offset = i;
      directive_first_token = out.tokens.size();
      line_has_token = true;
      push(TokenKind::kPunct, "#", line);
      ++i;
      continue;
    }
    line_has_token = true;

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      std::string ident = text.substr(i, j - i);
      if (j < n && text[j] == '"' && IsRawStringPrefix(ident)) {
        // Raw string literal R"delim( ... )delim".
        size_t d = j + 1;
        while (d < n && text[d] != '(' && text[d] != '\n') ++d;
        const std::string delim = text.substr(j + 1, d - (j + 1));
        const std::string close = ")" + delim + "\"";
        const size_t body = d < n ? d + 1 : n;
        size_t end = text.find(close, body);
        const size_t stop = end == std::string::npos ? n : end;
        end = end == std::string::npos ? n : end + close.size();
        const int tok_line = line;
        for (size_t p = i; p < end; ++p) {
          if (text[p] == '\n') ++line;
        }
        push(TokenKind::kRawString, text.substr(body, stop - body), tok_line);
        i = end;
        continue;
      }
      // Record whether the directive keyword is glued to a column-zero `#`
      // (the only spelling the retired Python linter's anchors accepted).
      if (in_directive && out.tokens.size() == directive_first_token + 1) {
        directive.canonical_spelling =
            hash_offset == line_start && i == hash_offset + 1;
      }
      push(TokenKind::kIdentifier, std::move(ident), line);
      i = j;
      continue;
    }
    if (IsDigit(c) || (c == '.' && IsDigit(nxt))) {
      // pp-number: digits, idents, dots, digit separators, exponent signs.
      size_t j = i + 1;
      while (j < n) {
        const char d = text[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < n && IsIdentChar(text[j + 1])) {
          j += 2;
        } else if ((d == '+' || d == '-') &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      push(TokenKind::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && text[j] != quote && text[j] != '\n') {
        j += text[j] == '\\' ? 2 : 1;
      }
      const size_t stop = j > n ? n : j;
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar,
           text.substr(i + 1, stop - (i + 1)), line);
      i = stop < n && text[stop] == quote ? stop + 1 : stop;
      continue;
    }
    // Punctuator: longest match wins.
    bool matched = false;
    if (i + 2 < n) {
      const std::string three = text.substr(i, 3);
      for (const char* p : kPuncts3) {
        if (three == p) {
          push(TokenKind::kPunct, three, line);
          i += 3;
          matched = true;
          break;
        }
      }
    }
    if (!matched && i + 1 < n) {
      const std::string two = text.substr(i, 2);
      for (const char* p : kPuncts2) {
        if (two == p) {
          push(TokenKind::kPunct, two, line);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push(TokenKind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  finalize_directive();
  // Python's splitlines convention: a trailing newline does not open a
  // final empty line, and empty text has zero lines (feeds the R6 EOF
  // fallback, which must match the retired linter).
  out.num_lines = text.empty() ? 0 : (text.back() == '\n' ? line - 1 : line);
  return out;
}

}  // namespace analyze
}  // namespace vastats
