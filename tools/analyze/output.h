// Report rendering: human text, Python-linter-compatible text (used for
// the byte-for-byte migration cross-check), machine JSON, and SARIF 2.1.0
// for code-scanning upload in CI.

#ifndef VASTATS_TOOLS_ANALYZE_OUTPUT_H_
#define VASTATS_TOOLS_ANALYZE_OUTPUT_H_

#include <string>
#include <vector>

#include "rules.h"

namespace vastats {
namespace analyze {

struct RuleInfo {
  const char* id;
  const char* summary;
};

// Metadata for every rule, R1..R7 then A1..A5 (drives SARIF `rules` and
// `--list-rules`).
const std::vector<RuleInfo>& Rules();

// Human-readable report: one rendered finding per line (fresh only),
// then a summary line.
std::string RenderText(const std::vector<Finding>& fresh, int baselined);

// Python lint_invariants-compatible rendering of an R-rule-only findings
// list: `*stderr_text` receives the findings and (on failure) the summary,
// `*stdout_text` the clean line; returns the process exit code.
int RenderCompat(const std::vector<Finding>& findings,
                 std::string* stdout_text, std::string* stderr_text);

// Filters a report down to the Python linter's rules (R1-R7), preserving
// order — the compat view.
std::vector<Finding> CompatView(const std::vector<Finding>& findings);

std::string RenderJson(const std::vector<Finding>& fresh,
                       const std::vector<Finding>& baselined);

// SARIF 2.1.0; baselined findings carry a suppression and level "note".
std::string RenderSarif(const std::vector<Finding>& fresh,
                        const std::vector<Finding>& baselined);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_OUTPUT_H_
