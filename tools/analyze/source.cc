#include "source.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace vastats {
namespace analyze {
namespace {

bool IsUnorderedContainer(const std::string& ident) {
  return ident == "unordered_map" || ident == "unordered_set" ||
         ident == "unordered_multimap" || ident == "unordered_multiset";
}

// Structural-token helpers. `view` holds indices into `tokens`.
const Token& At(const std::vector<Token>& tokens, const std::vector<int>& view,
                size_t i) {
  static const Token kEnd;
  return i < view.size() ? tokens[static_cast<size_t>(view[i])] : kEnd;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// Returns the view index just past the `>` matching the `<` at `open`, or
// `open + 1` when no match is found within a sane window. `>>` closes two
// levels; angle counting is suspended inside parentheses.
size_t SkipTemplateArgs(const std::vector<Token>& tokens,
                        const std::vector<int>& view, size_t open) {
  int angle = 0;
  int paren = 0;
  const size_t limit = std::min(view.size(), open + 256);
  for (size_t i = open; i < limit; ++i) {
    const Token& t = At(tokens, view, i);
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(") ++paren;
    if (t.text == ")") --paren;
    if (paren > 0) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">") --angle;
    if (t.text == ">>") angle -= 2;
    if (angle <= 0) return i + 1;
  }
  return open + 1;
}

// Extracts enum definitions: `enum [class|struct] Name [: type] { ... }`.
void ExtractEnums(SourceFile* f) {
  const std::vector<Token>& toks = f->lex.tokens;
  const std::vector<int>& view = f->lex.structural;
  for (size_t i = 0; i < view.size(); ++i) {
    if (!IsIdent(At(toks, view, i), "enum")) continue;
    size_t j = i + 1;
    if (IsIdent(At(toks, view, j), "class") ||
        IsIdent(At(toks, view, j), "struct")) {
      ++j;
    }
    const Token& name = At(toks, view, j);
    if (name.kind != TokenKind::kIdentifier) continue;  // anonymous
    EnumDef def;
    def.name = name.text;
    def.path = f->rel_path;
    def.line = name.line;
    ++j;
    // Skip an optional underlying-type clause up to `{`; `;` means a
    // forward declaration.
    while (j < view.size() && !IsPunct(At(toks, view, j), "{") &&
           !IsPunct(At(toks, view, j), ";")) {
      ++j;
    }
    if (!IsPunct(At(toks, view, j), "{")) continue;
    ++j;
    // Enumerators: identifier [ = expr ] separated by `,` at depth 0.
    bool expect_name = true;
    int depth = 0;
    for (; j < view.size(); ++j) {
      const Token& t = At(toks, view, j);
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "{" || t.text == "[") ++depth;
        if (t.text == ")" || t.text == "]") --depth;
        if (t.text == "}") {
          if (depth == 0) break;
          --depth;
        }
        if (t.text == "," && depth == 0) expect_name = true;
        continue;
      }
      if (expect_name && t.kind == TokenKind::kIdentifier) {
        def.enumerators.push_back(t.text);
        expect_name = false;
      }
    }
    if (!def.enumerators.empty()) f->enums.push_back(def);
    i = j;
  }
}

// Extracts names of functions declared to return Status or Result<...>:
// `Status Name(` / `Result<T> Ns::Name(`. Heuristic by design — it feeds
// rule A3, which only ever *adds* checks for names found here. `void
// Name(` declarations are collected too: a name declared with BOTH return
// types somewhere in the tree is ambiguous (registry matching is by name,
// not overload), and the index drops it from the A3 set.
void ExtractStatusFunctions(SourceFile* f) {
  const std::vector<Token>& toks = f->lex.tokens;
  const std::vector<int>& view = f->lex.structural;
  for (size_t i = 0; i < view.size(); ++i) {
    const Token& t = At(toks, view, i);
    const bool is_status = IsIdent(t, "Status");
    const bool is_result = IsIdent(t, "Result");
    const bool is_void = IsIdent(t, "void");
    if (!is_status && !is_result && !is_void) continue;
    size_t j = i + 1;
    if (is_result) {
      if (!IsPunct(At(toks, view, j), "<")) continue;
      j = SkipTemplateArgs(toks, view, j);
    }
    // Qualified declarator chain: id (:: id)* followed by `(`.
    std::string last;
    while (At(toks, view, j).kind == TokenKind::kIdentifier) {
      last = At(toks, view, j).text;
      if (!IsPunct(At(toks, view, j + 1), "::")) {
        ++j;
        break;
      }
      j += 2;
    }
    if (!last.empty() && IsPunct(At(toks, view, j), "(")) {
      (is_void ? f->void_functions : f->status_functions).push_back(last);
    }
  }
}

// Extracts, from unordered-container mentions:
//  - accessor methods whose return type is unordered (`...unordered_map<>&
//    bindings() const`), which make call sites iteration hazards, and
//  - declared variable/member names of unordered type (including through
//    same-file `using` aliases), which rule A2 tracks locally.
void ExtractUnordered(SourceFile* f) {
  const std::vector<Token>& toks = f->lex.tokens;
  const std::vector<int>& view = f->lex.structural;

  // Pass 1: same-file aliases of unordered types.
  std::unordered_set<std::string> aliases;
  for (size_t i = 0; i + 2 < view.size(); ++i) {
    if (!IsIdent(At(toks, view, i), "using")) continue;
    const Token& name = At(toks, view, i + 1);
    if (name.kind != TokenKind::kIdentifier ||
        !IsPunct(At(toks, view, i + 2), "=")) {
      continue;
    }
    for (size_t j = i + 3; j < view.size(); ++j) {
      const Token& t = At(toks, view, j);
      if (IsPunct(t, ";")) break;
      if (t.kind == TokenKind::kIdentifier && IsUnorderedContainer(t.text)) {
        aliases.insert(name.text);
        break;
      }
    }
  }

  // Pass 2: declarations. After the container type (template args skipped)
  // and any `&`/`*`, an identifier followed by `(` declares an accessor;
  // otherwise it names a variable/member.
  for (size_t i = 0; i < view.size(); ++i) {
    const Token& t = At(toks, view, i);
    if (t.kind != TokenKind::kIdentifier) continue;
    size_t j;
    if (IsUnorderedContainer(t.text)) {
      j = i + 1;
      if (IsPunct(At(toks, view, j), "<")) {
        j = SkipTemplateArgs(toks, view, j);
      }
    } else if (aliases.count(t.text) != 0 &&
               !(i >= 2 && IsIdent(At(toks, view, i - 2), "using"))) {
      j = i + 1;
    } else {
      continue;
    }
    while (IsPunct(At(toks, view, j), "&") || IsPunct(At(toks, view, j), "*") ||
           IsIdent(At(toks, view, j), "const")) {
      ++j;
    }
    const Token& name = At(toks, view, j);
    if (name.kind != TokenKind::kIdentifier) continue;
    if (IsPunct(At(toks, view, j + 1), "(")) {
      f->unordered_methods.push_back(name.text);
    } else {
      f->unordered_vars.push_back(name.text);
    }
  }
}

// Telemetry registrations by literal name: GetCounter / GetGauge /
// GetHistogram calls, Trace::BeginSpan, and ScopedSpan constructions whose
// name argument is a string literal. Variable-named registrations are
// invisible here by design — rule A6 only ever *adds* checks for the
// literals it finds.
void ExtractTelemetry(SourceFile* f) {
  const std::vector<Token>& toks = f->lex.tokens;
  const std::vector<int>& view = f->lex.structural;
  for (size_t i = 0; i < view.size(); ++i) {
    const Token& t = At(toks, view, i);
    if (t.kind != TokenKind::kIdentifier) continue;
    const char* instrument = nullptr;
    if (t.text == "GetCounter") {
      instrument = "counter";
    } else if (t.text == "GetGauge") {
      instrument = "gauge";
    } else if (t.text == "GetHistogram") {
      instrument = "histogram";
    } else if (t.text == "BeginSpan") {
      instrument = "span";
    } else if (t.text == "InternName") {
      // Flight-recorder journal names live in the same namespace as the
      // metric/span names once ExportChromeTrace renders them.
      instrument = "journal_event";
    }
    if (instrument != nullptr) {
      if (!IsPunct(At(toks, view, i + 1), "(")) continue;
      const Token& name = At(toks, view, i + 2);
      if (name.kind != TokenKind::kString || name.text.empty()) continue;
      f->telemetry_uses.push_back(
          TelemetryUse{name.text, instrument, name.line});
      continue;
    }
    if (t.text != "ScopedSpan") continue;
    // `ScopedSpan span(obs, "kde")`: the first string literal inside the
    // constructor parens names the span.
    size_t j = i + 1;
    if (At(toks, view, j).kind == TokenKind::kIdentifier) ++j;
    if (!IsPunct(At(toks, view, j), "(")) continue;
    int depth = 0;
    const size_t limit = std::min(view.size(), j + 16);
    for (; j < limit; ++j) {
      const Token& u = At(toks, view, j);
      if (IsPunct(u, "(")) ++depth;
      if (IsPunct(u, ")") && --depth == 0) break;
      if (u.kind == TokenKind::kString && !u.text.empty()) {
        f->telemetry_uses.push_back(TelemetryUse{u.text, "span", u.line});
        break;
      }
    }
  }
}

void ExtractFacts(SourceFile* f) {
  for (const Directive& d : f->lex.directives) {
    if (d.keyword == "include" && d.quoted) {
      f->quoted_includes.push_back(IncludeRef{d.argument, d.line});
    }
  }
  ExtractEnums(f);
  ExtractStatusFunctions(f);
  ExtractUnordered(f);
  ExtractTelemetry(f);
}

}  // namespace

bool SourceFile::IsHeader() const {
  auto ends_with = [this](const char* suffix) {
    const std::string s(suffix);
    return rel_path.size() >= s.size() &&
           rel_path.compare(rel_path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".h") || ends_with(".hpp") || ends_with(".hh");
}

const std::string& SourceFile::Line(int line) const {
  static const std::string kEmpty;
  if (line < 1 || static_cast<size_t>(line) > lines.size()) return kEmpty;
  return lines[static_cast<size_t>(line - 1)];
}

bool SourceFile::Allowed(const std::string& rule, int line) const {
  const std::vector<std::string> rules = AllowedRules(Line(line));
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

SourceFile MakeSourceFile(std::string rel_path, std::string text) {
  SourceFile f;
  f.rel_path = std::move(rel_path);
  if (f.rel_path.compare(0, 4, "src/") == 0) {
    const size_t slash = f.rel_path.find('/', 4);
    if (slash != std::string::npos) {
      f.layer_dir = f.rel_path.substr(4, slash - 4);
    }
  }
  f.raw = std::move(text);
  std::string current;
  for (const char c : f.raw) {
    if (c == '\n') {
      f.lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  f.lines.push_back(current);
  f.lex = Lex(f.raw);
  ExtractFacts(&f);
  return f;
}

bool LoadSourceFile(const std::string& root, const std::string& rel_path,
                    SourceFile* out) {
  std::ifstream in(root + "/" + rel_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = MakeSourceFile(rel_path, buffer.str());
  return true;
}

}  // namespace analyze
}  // namespace vastats
