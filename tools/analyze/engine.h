// Analysis driver: enumerates the repo's source tree, runs the parallel
// front end (load + lex + facts) and the parallel per-file rule phase on a
// vastats ThreadPool, then the serial whole-repo rules (A1 layering, R5).
//
// Findings are deterministic by construction at any pool width: both
// parallel phases write into per-file slots and the merge walks files in
// enumeration order, so the report is bit-identical for 1, 4, or 16
// threads.

#ifndef VASTATS_TOOLS_ANALYZE_ENGINE_H_
#define VASTATS_TOOLS_ANALYZE_ENGINE_H_

#include <string>
#include <vector>

#include "rules.h"
#include "util/status.h"

namespace vastats {
namespace analyze {

struct AnalyzeOptions {
  std::string root = ".";
  // 0 uses the process-wide DefaultThreadPool(); otherwise a dedicated
  // pool of exactly `threads` workers (the determinism tests sweep this).
  int threads = 0;
  // Run the structural rules (A1-A5). The R-rules always run; compat
  // output filters to them regardless.
  bool structural_rules = true;
};

struct AnalysisReport {
  // Ordered: per src/ file in walk order (R-rules in the Python linter's
  // emission order, then A2-A5), then tests/ and bench/ files (R2, R7,
  // R6), then A1 (layering), then A6 (telemetry naming), then R5 — so
  // filtering to R-rules reproduces the Python linter's output order
  // exactly.
  std::vector<Finding> findings;
  int files_analyzed = 0;
};

// Analyzes the repo rooted at `options.root`. Fails when the root (or a
// file raced away mid-run) cannot be read.
Result<AnalysisReport> AnalyzeRepo(const AnalyzeOptions& options);

// Walk order used by AnalyzeRepo for one subtree: the Python linter's
// os.walk with sorted dirnames/filenames (current directory's files
// sorted, then each subdirectory recursively, sorted). Paths come back
// repo-relative with forward slashes. Missing subdir yields no paths.
std::vector<std::string> EnumerateSources(const std::string& root,
                                          const std::string& subdir);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_ENGINE_H_
