// In-memory self-test corpus: every rule must fire on an injected
// violation and stay quiet on clean code. Ports the retired Python
// linter's self-test cases verbatim (same snippets, same expectations) and
// extends them with A1-A5 cases. No files are written.

#ifndef VASTATS_TOOLS_ANALYZE_SELFTEST_H_
#define VASTATS_TOOLS_ANALYZE_SELFTEST_H_

#include <string>
#include <vector>

namespace vastats {
namespace analyze {

// Runs the corpus; returns human-readable failure descriptions (empty on
// success).
std::vector<std::string> RunSelfTest();

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_SELFTEST_H_
