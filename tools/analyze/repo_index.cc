#include "repo_index.h"

#include <algorithm>
#include <deque>

namespace vastats {
namespace analyze {

int LayerRank(const std::string& dir) {
  if (dir == "util") return 0;
  if (dir == "obs") return 1;
  if (dir == "stats" || dir == "density" || dir == "sampling" ||
      dir == "datagen") {
    return 2;
  }
  if (dir == "integration" || dir == "transport") return 3;
  if (dir == "core" || dir == "fusion") return 4;
  if (dir == "query") return 5;
  if (dir == "serving") return 6;
  return -1;
}

std::vector<std::string> RepoIndex::IncludeChain(int target) const {
  // Reverse-BFS from `target` through "is included by" edges; neighbor
  // order is file order, so the chain is deterministic. The first .cc
  // reached wins; otherwise the farthest header root found.
  std::vector<std::vector<int>> included_by(files.size());
  for (size_t from = 0; from < includes.size(); ++from) {
    for (const IncludeEdge& e : includes[from]) {
      included_by[static_cast<size_t>(e.to)].push_back(
          static_cast<int>(from));
    }
  }
  std::vector<int> parent(files.size(), -2);  // -2 unvisited, -1 root
  parent[static_cast<size_t>(target)] = -1;
  std::deque<int> frontier{target};
  int best_root = target;
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    best_root = node;
    const std::string& path = files[static_cast<size_t>(node)].rel_path;
    const bool is_cc =
        path.size() >= 3 && path.compare(path.size() - 3, 3, ".cc") == 0;
    if (is_cc) {
      std::vector<std::string> chain;
      for (int at = node; at != -1; at = parent[static_cast<size_t>(at)]) {
        chain.push_back(files[static_cast<size_t>(at)].rel_path);
      }
      return chain;
    }
    for (const int prev : included_by[static_cast<size_t>(node)]) {
      if (parent[static_cast<size_t>(prev)] == -2) {
        parent[static_cast<size_t>(prev)] = node;
        frontier.push_back(prev);
      }
    }
  }
  std::vector<std::string> chain;
  for (int at = best_root; at != -1; at = parent[static_cast<size_t>(at)]) {
    chain.push_back(files[static_cast<size_t>(at)].rel_path);
  }
  return chain;
}

RepoIndex BuildRepoIndex(std::vector<SourceFile> files) {
  RepoIndex index;
  index.files = std::move(files);
  for (size_t i = 0; i < index.files.size(); ++i) {
    index.by_path[index.files[i].rel_path] = static_cast<int>(i);
  }

  index.includes.resize(index.files.size());
  for (size_t i = 0; i < index.files.size(); ++i) {
    const SourceFile& f = index.files[i];
    if (f.rel_path.compare(0, 4, "src/") != 0) continue;
    for (const IncludeRef& inc : f.quoted_includes) {
      // Repo convention: quoted includes are src/-relative.
      const auto it = index.by_path.find("src/" + inc.path);
      if (it == index.by_path.end()) continue;  // umbrella/system header
      index.includes[i].push_back(IncludeEdge{it->second, inc.line});
    }

    for (const EnumDef& def : f.enums) {
      if (index.enums_by_name.emplace(def.name, &def).second) {
        for (const std::string& enumerator : def.enumerators) {
          auto [pos, inserted] =
              index.enum_of_enumerator.emplace(enumerator, def.name);
          if (!inserted && pos->second != def.name) pos->second = "";
        }
      }
    }
    index.status_functions.insert(f.status_functions.begin(),
                                  f.status_functions.end());
    index.unordered_methods.insert(f.unordered_methods.begin(),
                                   f.unordered_methods.end());
  }
  // A name also declared `void Name(` somewhere is ambiguous under
  // name-based matching (e.g. a private `void BuildIndex()` member next to
  // a free `Result<T> BuildIndex(...)`) — drop it rather than flag calls
  // to the void overload.
  for (const SourceFile& f : index.files) {
    if (f.rel_path.compare(0, 4, "src/") != 0) continue;
    for (const std::string& name : f.void_functions) {
      index.status_functions.erase(name);
    }
  }
  return index;
}

}  // namespace analyze
}  // namespace vastats
