// vastats_analyze: self-contained static analysis for the vastats tree.
//
// Exit codes: 0 clean (or baselined only), 1 fresh findings or self-test
// failure, 2 usage / IO error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.h"
#include "engine.h"
#include "output.h"
#include "selftest.h"

namespace vastats {
namespace analyze {
namespace {

constexpr char kUsage[] =
    "usage: vastats_analyze [options]\n"
    "  --root DIR            repo root to analyze (default: .)\n"
    "  --format FMT          text | compat | json | sarif (default: text)\n"
    "  --output FILE         write the report to FILE instead of stdout\n"
    "  --baseline FILE       tolerate findings listed in FILE\n"
    "  --write-baseline FILE write current findings as a new baseline and "
    "exit 0\n"
    "  --threads N           worker threads (0 = shared default pool)\n"
    "  --no-structural       run only the ported R1-R7 rules\n"
    "  --list-rules          print rule ids and summaries, then exit\n"
    "  --self-test           run the in-memory rule corpus, then exit\n";

struct CliOptions {
  AnalyzeOptions analyze;
  std::string format = "text";
  std::string output_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool list_rules = false;
  bool self_test = false;
};

bool ParseArgs(int argc, char** argv, CliOptions* cli, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) {
        *error = arg + " requires a value";
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(&cli->analyze.root)) return false;
    } else if (arg == "--format") {
      if (!value(&cli->format)) return false;
      if (cli->format != "text" && cli->format != "compat" &&
          cli->format != "json" && cli->format != "sarif") {
        *error = "unknown --format " + cli->format;
        return false;
      }
    } else if (arg == "--output") {
      if (!value(&cli->output_path)) return false;
    } else if (arg == "--baseline") {
      if (!value(&cli->baseline_path)) return false;
    } else if (arg == "--write-baseline") {
      if (!value(&cli->write_baseline_path)) return false;
    } else if (arg == "--threads") {
      std::string n;
      if (!value(&n)) return false;
      char* end = nullptr;
      const long parsed = std::strtol(n.c_str(), &end, 10);
      if (end == n.c_str() || *end != '\0' || parsed < 0 || parsed > 256) {
        *error = "--threads wants an integer in [0, 256], got " + n;
        return false;
      }
      cli->analyze.threads = static_cast<int>(parsed);
    } else if (arg == "--no-structural") {
      cli->analyze.structural_rules = false;
    } else if (arg == "--list-rules") {
      cli->list_rules = true;
    } else if (arg == "--self-test") {
      cli->self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else {
      *error = "unknown argument " + arg;
      return false;
    }
  }
  return true;
}

bool WriteOrPrint(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "vastats_analyze: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  CliOptions cli;
  std::string error;
  if (!ParseArgs(argc, argv, &cli, &error)) {
    std::fprintf(stderr, "vastats_analyze: %s\n%s", error.c_str(), kUsage);
    return 2;
  }

  if (cli.list_rules) {
    std::string out;
    for (const RuleInfo& rule : Rules()) {
      out += std::string(rule.id) + "  " + rule.summary + "\n";
    }
    std::fputs(out.c_str(), stdout);
    return 0;
  }

  if (cli.self_test) {
    const std::vector<std::string> failures = RunSelfTest();
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "self-test FAIL: %s\n", failure.c_str());
    }
    if (failures.empty()) {
      std::fputs("vastats_analyze: self-test passed\n", stdout);
      return 0;
    }
    std::fprintf(stderr, "vastats_analyze: %zu self-test failure(s)\n",
                 failures.size());
    return 1;
  }

  Baseline baseline;
  if (!cli.baseline_path.empty()) {
    std::ifstream in(cli.baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "vastats_analyze: cannot read baseline %s\n",
                   cli.baseline_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    baseline = ParseBaseline(text.str());
  }

  Result<AnalysisReport> report = AnalyzeRepo(cli.analyze);
  if (!report.ok()) {
    std::fprintf(stderr, "vastats_analyze: %s\n",
                 report.status().message().c_str());
    return 2;
  }

  if (!cli.write_baseline_path.empty()) {
    return WriteOrPrint(cli.write_baseline_path,
                        FormatBaseline(report.value().findings))
               ? 0
               : 2;
  }

  if (cli.format == "compat") {
    // Byte-compatible with the retired tools/lint_invariants.py: R-rules
    // only, findings to stderr, no baseline applied.
    std::string out_text, err_text;
    const int code =
        RenderCompat(CompatView(report.value().findings), &out_text,
                     &err_text);
    std::fputs(err_text.c_str(), stderr);
    std::fputs(out_text.c_str(), stdout);
    return code;
  }

  const BaselineSplit split =
      ApplyBaseline(report.value().findings, baseline);
  std::string rendered;
  if (cli.format == "json") {
    rendered = RenderJson(split.fresh, split.baselined);
  } else if (cli.format == "sarif") {
    rendered = RenderSarif(split.fresh, split.baselined);
  } else {
    rendered =
        RenderText(split.fresh, static_cast<int>(split.baselined.size()));
  }
  if (!WriteOrPrint(cli.output_path, rendered)) return 2;
  if (!cli.output_path.empty()) {
    // Keep the terminal summary when the report goes to a file.
    std::fputs(RenderText(split.fresh, static_cast<int>(
                                           split.baselined.size()))
                   .c_str(),
               stderr);
  }
  return split.fresh.empty() ? 0 : 1;
}

}  // namespace
}  // namespace analyze
}  // namespace vastats

int main(int argc, char** argv) { return vastats::analyze::Run(argc, argv); }
