// A1-A5: structural rules over the token stream and include graph. These
// walk the `structural` token view (preprocessor directives excluded) so
// macro bodies cannot desynchronize brace/statement tracking.

#include "rules.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace vastats {
namespace analyze {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

// Structural-view accessor: index into `structural`, returning tokens.
class View {
 public:
  explicit View(const SourceFile& f)
      : tokens_(f.lex.tokens), view_(f.lex.structural) {}

  size_t size() const { return view_.size(); }
  const Token& operator[](size_t i) const {
    static const Token kEnd;
    return i < view_.size() ? tokens_[static_cast<size_t>(view_[i])] : kEnd;
  }

  // Index just past the closer matching the opener at `open` (`(`/`{`/`[`).
  size_t SkipBalanced(size_t open, const char* opener,
                      const char* closer) const {
    int depth = 0;
    for (size_t i = open; i < view_.size(); ++i) {
      if (IsPunct((*this)[i], opener)) ++depth;
      if (IsPunct((*this)[i], closer)) {
        if (--depth == 0) return i + 1;
      }
    }
    return view_.size();
  }

 private:
  const std::vector<Token>& tokens_;
  const std::vector<int>& view_;
};

void Emit(const SourceFile& f, const std::string& rule, int line,
          std::string message, std::vector<Finding>* out) {
  if (f.Allowed(rule, line)) return;
  out->push_back(Finding{rule, f.rel_path, line, std::move(message)});
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += ", ";
    joined += n;
  }
  return joined;
}

constexpr const char* kLayerDag =
    "util -> obs -> {stats, density, sampling, datagen} -> "
    "{integration, transport} -> {core, fusion} -> query -> serving";

}  // namespace

// --- A1: layering ----------------------------------------------------------

void CheckA1Layering(const RepoIndex& index, std::vector<Finding>* out) {
  // Back-edges against the layer DAG.
  for (size_t i = 0; i < index.files.size(); ++i) {
    const SourceFile& f = index.files[i];
    const int from_rank = LayerRank(f.layer_dir);
    if (from_rank < 0) continue;
    for (const IncludeEdge& edge : index.includes[i]) {
      const SourceFile& to = index.files[static_cast<size_t>(edge.to)];
      const int to_rank = LayerRank(to.layer_dir);
      if (to_rank < 0 || to_rank <= from_rank) continue;
      std::vector<std::string> chain =
          index.IncludeChain(static_cast<int>(i));
      chain.push_back(to.rel_path);
      std::string chain_text;
      for (const std::string& link : chain) {
        if (!chain_text.empty()) chain_text += " -> ";
        chain_text += link;
      }
      Emit(f, "A1", edge.line,
           "layering back-edge: `" + f.rel_path + "` (" + f.layer_dir +
               ", layer " + std::to_string(from_rank) +
               ") must not include `" + to.rel_path + "` (" + to.layer_dir +
               ", layer " + std::to_string(to_rank) +
               "); the dependency DAG is " + kLayerDag +
               "; include chain: " + chain_text,
           out);
    }
  }

  // Cycles: Kahn's algorithm; whatever cannot be topologically ordered sits
  // on at least one cycle. Walk first-edges among the leftovers to print a
  // concrete loop, deterministically.
  std::vector<int> out_degree(index.files.size(), 0);
  std::vector<std::vector<int>> included_by(index.files.size());
  for (size_t i = 0; i < index.includes.size(); ++i) {
    out_degree[i] = static_cast<int>(index.includes[i].size());
    for (const IncludeEdge& e : index.includes[i]) {
      included_by[static_cast<size_t>(e.to)].push_back(static_cast<int>(i));
    }
  }
  std::vector<int> ready;
  for (size_t i = 0; i < index.files.size(); ++i) {
    if (out_degree[i] == 0) ready.push_back(static_cast<int>(i));
  }
  size_t head = 0;
  while (head < ready.size()) {
    const int node = ready[head++];
    for (const int prev : included_by[static_cast<size_t>(node)]) {
      if (--out_degree[static_cast<size_t>(prev)] == 0) {
        ready.push_back(prev);
      }
    }
  }
  std::set<int> leftover;
  for (size_t i = 0; i < index.files.size(); ++i) {
    if (out_degree[i] > 0) leftover.insert(static_cast<int>(i));
  }
  while (!leftover.empty()) {
    const int start = *leftover.begin();
    std::vector<int> path{start};
    std::unordered_set<int> on_path{start};
    int cycle_from = -1;
    int current = start;
    while (cycle_from < 0) {
      int next = -1;
      for (const IncludeEdge& e : index.includes[static_cast<size_t>(
               current)]) {
        if (leftover.count(e.to) != 0) {
          next = e.to;
          break;
        }
      }
      if (next < 0) break;  // defensive; leftover nodes keep cyclic edges
      if (on_path.count(next) != 0) {
        cycle_from = next;
        break;
      }
      path.push_back(next);
      on_path.insert(next);
      current = next;
    }
    for (const int node : path) leftover.erase(node);
    if (cycle_from < 0) continue;
    // Trim the lead-in, rotate so the smallest index heads the cycle.
    std::vector<int> cycle(
        std::find(path.begin(), path.end(), cycle_from), path.end());
    std::rotate(cycle.begin(),
                std::min_element(cycle.begin(), cycle.end()), cycle.end());
    const SourceFile& anchor = index.files[static_cast<size_t>(cycle[0])];
    int line = 0;
    for (const IncludeEdge& e :
         index.includes[static_cast<size_t>(cycle[0])]) {
      if (e.to == (cycle.size() > 1 ? cycle[1] : cycle[0])) {
        line = e.line;
        break;
      }
    }
    std::string loop_text;
    for (const int node : cycle) {
      loop_text += index.files[static_cast<size_t>(node)].rel_path + " -> ";
    }
    loop_text += anchor.rel_path;
    Emit(anchor, "A1", line,
         "include cycle: " + loop_text +
             "; break the cycle (forward-declare, or split the header)",
         out);
  }
}

// --- A2: unordered iteration feeding order-sensitive sinks -----------------

namespace {

// Union of unordered variable/member names visible to `file_index` through
// its transitive includes (members are declared in headers; hazards live
// in the .cc files that include them).
std::unordered_set<std::string> UnorderedVarClosure(const RepoIndex& index,
                                                    int file_index) {
  std::unordered_set<std::string> names;
  std::vector<int> stack{file_index};
  std::unordered_set<int> seen{file_index};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    const SourceFile& f = index.files[static_cast<size_t>(node)];
    names.insert(f.unordered_vars.begin(), f.unordered_vars.end());
    for (const IncludeEdge& e : index.includes[static_cast<size_t>(node)]) {
      if (seen.insert(e.to).second) stack.push_back(e.to);
    }
  }
  return names;
}

}  // namespace

void CheckA2UnorderedIteration(const SourceFile& f, const RepoIndex& index,
                               std::vector<Finding>* out) {
  const View V(f);
  const auto it = index.by_path.find(f.rel_path);
  if (it == index.by_path.end()) return;
  const std::unordered_set<std::string> unordered_vars =
      UnorderedVarClosure(index, it->second);

  for (size_t i = 0; i < V.size(); ++i) {
    if (!IsIdent(V[i], "for") || !IsPunct(V[i + 1], "(")) continue;
    const size_t close = V.SkipBalanced(i + 1, "(", ")") - 1;

    // Locate the iterated container: the expression after `:` in a
    // range-for, or the receiver of `.begin()` in an iterator loop.
    std::string container;
    size_t colon = 0;
    int depth = 0;
    for (size_t j = i + 1; j < close; ++j) {
      if (IsPunct(V[j], "(")) ++depth;
      if (IsPunct(V[j], ")")) --depth;
      if (depth == 1 && IsPunct(V[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {
      for (size_t j = colon + 1; j < close; ++j) {
        const Token& t = V[j];
        if (t.kind != TokenKind::kIdentifier) continue;
        if (unordered_vars.count(t.text) != 0 ||
            (index.unordered_methods.count(t.text) != 0 &&
             IsPunct(V[j + 1], "(")) ||
            t.text.compare(0, 10, "unordered_") == 0) {
          container = t.text;
          break;
        }
      }
    } else {
      for (size_t j = i + 2; j < close; ++j) {
        if (!IsIdent(V[j], "begin") && !IsIdent(V[j], "cbegin")) continue;
        if (!IsPunct(V[j - 1], ".") && !IsPunct(V[j - 1], "->")) continue;
        const Token& recv = V[j - 2];
        if (recv.kind == TokenKind::kIdentifier &&
            unordered_vars.count(recv.text) != 0) {
          container = recv.text;
          break;
        }
        // x.accessor().begin(): the call before the `.` exposes unordered.
        if (IsPunct(recv, ")") && j >= 4 &&
            V[j - 4].kind == TokenKind::kIdentifier &&
            IsPunct(V[j - 3], "(") &&
            index.unordered_methods.count(V[j - 4].text) != 0) {
          container = V[j - 4].text;
          break;
        }
      }
    }
    if (container.empty()) continue;

    // Body extent.
    size_t body_begin = close + 1;
    size_t body_end;
    if (IsPunct(V[body_begin], "{")) {
      body_end = V.SkipBalanced(body_begin, "{", "}");
      ++body_begin;
    } else {
      body_end = body_begin;
      while (body_end < V.size() && !IsPunct(V[body_end], ";")) ++body_end;
    }

    // Hazards inside the body.
    std::string accum_detail;
    bool consumes_rng = false;
    std::vector<std::string> append_receivers;
    for (size_t j = body_begin; j < body_end; ++j) {
      const Token& t = V[j];
      if (t.kind == TokenKind::kPunct &&
          (t.text == "+=" || t.text == "-=" || t.text == "*=" ||
           t.text == "/=")) {
        if (accum_detail.empty()) accum_detail = "`" + t.text + "`";
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      const bool member_call = j >= 1 && (IsPunct(V[j - 1], ".") ||
                                          IsPunct(V[j - 1], "->")) &&
                               IsPunct(V[j + 1], "(");
      if (member_call &&
          (t.text == "Add" || t.text == "Observe" || t.text == "Increment")) {
        if (accum_detail.empty()) accum_detail = "`." + t.text + "(...)`";
      }
      if (t.text == "rng" || t.text == "rng_" || t.text == "Rng") {
        consumes_rng = true;
      }
      if (member_call && (t.text == "push_back" ||
                          t.text == "emplace_back" || t.text == "append")) {
        const Token& recv = V[j - 2];
        append_receivers.push_back(
            recv.kind == TokenKind::kIdentifier ? recv.text : "");
      }
    }
    if (accum_detail.empty() && !consumes_rng && append_receivers.empty()) {
      continue;
    }

    // Sorted-snapshot discipline: appends are fine when every appended
    // container is sorted right after the loop.
    if (accum_detail.empty() && !consumes_rng) {
      bool all_sorted = !append_receivers.empty();
      for (const std::string& recv : append_receivers) {
        bool sorted = false;
        const size_t horizon = std::min(V.size(), body_end + 400);
        for (size_t j = body_end; j < horizon && !sorted; ++j) {
          if (!IsIdent(V[j], "sort") && !IsIdent(V[j], "stable_sort")) {
            continue;
          }
          if (!IsPunct(V[j + 1], "(")) continue;
          const size_t call_end = V.SkipBalanced(j + 1, "(", ")");
          for (size_t k = j + 2; k < call_end; ++k) {
            if (IsIdent(V[k], recv.c_str())) {
              sorted = true;
              break;
            }
          }
        }
        all_sorted = all_sorted && sorted;
      }
      if (all_sorted) continue;
    }

    std::string consequence;
    if (!accum_detail.empty()) {
      consequence = "feeds an accumulator (" + accum_detail + ")";
    } else if (consumes_rng) {
      consequence = "consumes the RNG stream";
    } else {
      consequence = "appends to output without a post-loop sort";
    }
    Emit(f, "A2", V[i].line,
         "iteration over unordered container `" + container + "` " +
             consequence +
             "; hash order is implementation-defined — iterate a sorted "
             "snapshot (e.g. DataSource::SortedBindings) or annotate "
             "`// lint-invariants: allow(A2)`",
         out);
  }
}

// --- A3: discarded Status / Result -----------------------------------------

namespace {

// Parses an id (:: id | . id | -> id)* chain starting at `j`; returns the
// index just past the chain and the last identifier (empty when `j` does
// not start a chain).
size_t ParseCallChain(const View& V, size_t j, std::string* last) {
  last->clear();
  while (V[j].kind == TokenKind::kIdentifier) {
    *last = V[j].text;
    const Token& sep = V[j + 1];
    if (IsPunct(sep, "::") || IsPunct(sep, ".") || IsPunct(sep, "->")) {
      j += 2;
    } else {
      return j + 1;
    }
  }
  return j;
}

}  // namespace

void CheckA3DiscardedStatus(const SourceFile& f, const RepoIndex& index,
                            std::vector<Finding>* out) {
  const View V(f);
  auto flag = [&](int line, const std::string& name, bool cast) {
    Emit(f, "A3", line,
         std::string(cast ? "`(void)`-cast discards the Status/Result of `"
                          : "call to `") +
             name +
             (cast ? "`" : "` discards its Status/Result") +
             "; handle or propagate the error, or annotate "
             "`// lint-invariants: allow(A3)` with a reason",
         out);
  };

  for (size_t i = 0; i < V.size(); ++i) {
    // (void)chain(...)  /  static_cast<void>(chain(...))
    std::string name;
    if (IsPunct(V[i], "(") && IsIdent(V[i + 1], "void") &&
        IsPunct(V[i + 2], ")")) {
      const size_t after = ParseCallChain(V, i + 3, &name);
      if (!name.empty() && IsPunct(V[after], "(") &&
          index.status_functions.count(name) != 0) {
        flag(V[i].line, name, true);
      }
      continue;
    }
    if (IsIdent(V[i], "static_cast") && IsPunct(V[i + 1], "<") &&
        IsIdent(V[i + 2], "void") && IsPunct(V[i + 3], ">") &&
        IsPunct(V[i + 4], "(")) {
      const size_t after = ParseCallChain(V, i + 5, &name);
      if (!name.empty() && IsPunct(V[after], "(") &&
          index.status_functions.count(name) != 0) {
        flag(V[i].line, name, true);
      }
      continue;
    }
    // Bare expression statement `chain(...);` right after a statement
    // boundary.
    const bool boundary = IsPunct(V[i], ";") || IsPunct(V[i], "{") ||
                          IsPunct(V[i], "}");
    if (!boundary) continue;
    const size_t start = i + 1;
    const size_t after = ParseCallChain(V, start, &name);
    if (name.empty() || after == start || !IsPunct(V[after], "(")) continue;
    const size_t call_end = V.SkipBalanced(after, "(", ")");
    if (call_end >= V.size() || !IsPunct(V[call_end], ";")) continue;
    if (index.status_functions.count(name) == 0) continue;
    flag(V[start].line, name, false);
  }
}

// --- A4: exhaustive switches over repo enums -------------------------------

void CheckA4ExhaustiveSwitch(const SourceFile& f, const RepoIndex& index,
                             std::vector<Finding>* out) {
  const View V(f);
  for (size_t i = 0; i < V.size(); ++i) {
    if (!IsIdent(V[i], "switch") || !IsPunct(V[i + 1], "(")) continue;
    const size_t cond_end = V.SkipBalanced(i + 1, "(", ")");
    if (!IsPunct(V[cond_end], "{")) continue;
    const size_t body_end = V.SkipBalanced(cond_end, "{", "}");

    std::string enum_name;
    std::set<std::string> named;
    bool has_default = false;
    int depth = 0;
    for (size_t j = cond_end; j < body_end; ++j) {
      if (IsPunct(V[j], "{")) ++depth;
      if (IsPunct(V[j], "}")) --depth;
      if (depth != 1 || V[j].kind != TokenKind::kIdentifier) continue;
      if (V[j].text == "default" && IsPunct(V[j + 1], ":")) {
        has_default = true;
        continue;
      }
      if (V[j].text != "case") continue;
      // Label tokens run to the single `:` (the lexer fuses `::`).
      std::vector<std::string> label_idents;
      size_t k = j + 1;
      for (; k < body_end && !IsPunct(V[k], ":"); ++k) {
        if (V[k].kind == TokenKind::kIdentifier) {
          label_idents.push_back(V[k].text);
        }
      }
      j = k;
      if (label_idents.empty()) continue;
      for (const std::string& ident : label_idents) {
        if (index.enums_by_name.count(ident) != 0) {
          enum_name = ident;
          break;
        }
      }
      if (enum_name.empty() && label_idents.size() == 1) {
        const auto owner = index.enum_of_enumerator.find(label_idents[0]);
        if (owner != index.enum_of_enumerator.end() &&
            !owner->second.empty()) {
          enum_name = owner->second;
        }
      }
      named.insert(label_idents.back());
    }
    if (enum_name.empty()) continue;
    const EnumDef* def = index.enums_by_name.at(enum_name);
    std::vector<std::string> missing;
    for (const std::string& enumerator : def->enumerators) {
      if (named.count(enumerator) == 0) missing.push_back(enumerator);
    }
    if (has_default) {
      std::string message =
          "switch over enum `" + enum_name +
          "` hides enumerators behind `default`; name every enumerator so "
          "new ones break the build (-Wswitch)";
      if (!missing.empty()) {
        message += " (unhandled: " + JoinNames(missing) + ")";
      }
      Emit(f, "A4", V[i].line, message, out);
    } else if (!missing.empty()) {
      Emit(f, "A4", V[i].line,
           "switch over enum `" + enum_name +
               "` does not handle enumerator(s) " + JoinNames(missing) +
               "; name every enumerator so new ones break the build "
               "(-Wswitch)",
           out);
    }
  }
}

// --- A5: mutable static-storage state --------------------------------------

namespace {

enum class Scope { kNamespace, kClass, kEnum, kFunction };

bool IsStorageKeyword(const Token& t) {
  return IsIdent(t, "static") || IsIdent(t, "thread_local");
}

// First statement token that is not a storage/linkage qualifier.
size_t FirstMeaningful(const View& V, const std::vector<size_t>& stmt) {
  for (size_t idx = 0; idx < stmt.size(); ++idx) {
    const Token& t = V[stmt[idx]];
    if (IsStorageKeyword(t) || IsIdent(t, "inline") ||
        IsIdent(t, "constinit")) {
      continue;
    }
    return idx;
  }
  return stmt.size();
}

bool IsDeclSkipKeyword(const std::string& text) {
  static const std::unordered_set<std::string> kSkip = {
      "namespace", "using",    "typedef",  "template", "friend",
      "static_assert", "class", "struct",  "union",    "enum",
      "extern",    "return",   "if",       "for",      "while",
      "do",        "switch",   "case",     "break",    "continue",
      "goto",      "public",   "private",  "protected", "asm",
      "new",       "delete",   "operator", "else",      "try",
      "catch",     "throw"};
  return kSkip.count(text) != 0;
}

void AnalyzeDeclStatement(const SourceFile& f, const View& V,
                          const std::vector<size_t>& stmt, Scope scope,
                          std::vector<Finding>* out) {
  if (stmt.empty()) return;
  bool has_static = false;
  for (const size_t idx : stmt) {
    if (IsStorageKeyword(V[idx])) has_static = true;
    if (IsIdent(V[idx], "operator") || IsIdent(V[idx], "extern")) return;
  }
  // Plain (non-static) declarations are only state at namespace scope;
  // everywhere else only static/thread_local has static storage duration.
  if (scope != Scope::kNamespace && !has_static) return;
  if (scope == Scope::kEnum) return;

  const size_t first = FirstMeaningful(V, stmt);
  if (first >= stmt.size()) return;
  const Token& head = V[stmt[first]];
  if (head.kind != TokenKind::kIdentifier || IsDeclSkipKeyword(head.text)) {
    return;
  }

  // Locate the first top-level `=` and `(`.
  size_t eq = stmt.size();
  size_t paren = stmt.size();
  int depth = 0;
  for (size_t idx = first; idx < stmt.size(); ++idx) {
    const Token& t = V[stmt[idx]];
    if (IsPunct(t, "(") || IsPunct(t, "[")) {
      if (depth == 0 && paren == stmt.size() && IsPunct(t, "(")) paren = idx;
      ++depth;
    }
    if (IsPunct(t, ")") || IsPunct(t, "]")) --depth;
    if (depth == 0 && eq == stmt.size() && IsPunct(t, "=")) eq = idx;
  }
  if (paren < eq) {
    // `T name(...)` — at namespace/class scope this is a function
    // declaration (the most-vexing-parse reading), not a variable.
    const Token& before = paren > 0 ? V[stmt[paren - 1]] : Token();
    if (before.kind == TokenKind::kIdentifier) return;
  }

  // Const detection: only a cv qualifier *before* the first top-level `*`
  // counts. `static ThreadPool* const pool` stays flagged — the binding is
  // immutable but it designates shared mutable state — while plain
  // `static const T kTable[]` passes. Qualifiers inside template argument
  // lists (`unique_ptr<const vector<double>>`) are ignored.
  bool is_const = false;
  int angle = 0;
  const size_t limit = std::min(eq, stmt.size());
  for (size_t idx = first; idx < limit; ++idx) {
    const Token& t = V[stmt[idx]];
    if (IsPunct(t, "<")) ++angle;
    if (IsPunct(t, ">")) --angle;
    if (IsPunct(t, ">>")) angle -= 2;
    if (angle > 0) continue;
    if (IsPunct(t, "*")) break;
    if (IsIdent(t, "const") || IsIdent(t, "constexpr") ||
        IsIdent(t, "constinit")) {
      is_const = true;
      break;
    }
  }
  if (is_const) return;

  // Declared name: identifier just before `=`, or before a trailing
  // `[...]`, or the statement's last identifier.
  std::string name;
  size_t name_limit = eq;
  while (name_limit > first) {
    const Token& t = V[stmt[name_limit - 1]];
    if (IsPunct(t, "]")) {
      while (name_limit > first && !IsPunct(V[stmt[name_limit - 1]], "[")) {
        --name_limit;
      }
      if (name_limit > first) --name_limit;  // step past the `[`
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      name = t.text;
      break;
    }
    --name_limit;
  }
  if (name.empty() || name == head.text) {
    // A single bare identifier is an expression statement, not a
    // declaration — unless a storage keyword says otherwise.
    if (!has_static || name.empty()) return;
  }

  Emit(f, "A5", V[stmt[0]].line,
       "`" + name +
           "` is mutable static-storage state; hidden cross-call coupling "
           "breaks replay determinism — make it const/constexpr, pass it "
           "explicitly, or keep such state behind the sanctioned facades "
           "(util/thread_pool.cc, obs/metrics.cc, obs/flight_recorder.cc, "
           "serving/caches.cc)",
       out);
}

}  // namespace

void CheckA5MutableGlobals(const SourceFile& f, std::vector<Finding>* out) {
  if (f.rel_path == "src/util/thread_pool.cc" ||
      f.rel_path == "src/obs/metrics.cc" ||
      f.rel_path == "src/obs/flight_recorder.cc" ||
      f.rel_path == "src/serving/caches.cc") {
    return;  // the sanctioned facades for process-wide state
  }
  const View V(f);
  std::vector<Scope> scopes{Scope::kNamespace};
  std::vector<size_t> stmt;

  for (size_t i = 0; i < V.size(); ++i) {
    const Token& t = V[i];
    if (IsPunct(t, "{")) {
      const size_t first = FirstMeaningful(V, stmt);
      const Token& head = first < stmt.size() ? V[stmt[first]] : Token();
      const Token& last = stmt.empty() ? Token() : V[stmt.back()];
      bool has_eq = false;
      int depth = 0;
      for (const size_t idx : stmt) {
        if (IsPunct(V[idx], "(")) ++depth;
        if (IsPunct(V[idx], ")")) --depth;
        if (depth == 0 && IsPunct(V[idx], "=")) has_eq = true;
      }
      if (IsIdent(head, "namespace") || IsIdent(head, "extern")) {
        scopes.push_back(Scope::kNamespace);
        stmt.clear();
      } else if (IsIdent(head, "class") || IsIdent(head, "struct") ||
                 IsIdent(head, "union")) {
        scopes.push_back(Scope::kClass);
        stmt.clear();
      } else if (IsIdent(head, "enum")) {
        scopes.push_back(Scope::kEnum);
        stmt.clear();
      } else if (IsIdent(head, "if") || IsIdent(head, "else") ||
                 IsIdent(head, "for") || IsIdent(head, "while") ||
                 IsIdent(head, "do") || IsIdent(head, "switch") ||
                 IsIdent(head, "try")) {
        scopes.push_back(Scope::kFunction);
        stmt.clear();
      } else if (has_eq || last.kind == TokenKind::kIdentifier ||
                 IsPunct(last, "]") || IsPunct(last, ">")) {
        // Initializer (`= {...}`, `x{...}`, lambda body inside an
        // initializer): skip it, the declaration continues to `;`.
        i = V.SkipBalanced(i, "{", "}") - 1;
      } else {
        scopes.push_back(Scope::kFunction);
        stmt.clear();
      }
      continue;
    }
    if (IsPunct(t, "}")) {
      if (scopes.size() > 1) scopes.pop_back();
      stmt.clear();
      continue;
    }
    if (IsPunct(t, ";")) {
      AnalyzeDeclStatement(f, V, stmt, scopes.back(), out);
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
  }
}

// --- A6: one telemetry name, one instrument --------------------------------

void CheckA6TelemetryNames(const RepoIndex& index, std::vector<Finding>* out) {
  // First literal use of each name in walk order anchors the expected
  // instrument; later uses with a different instrument are the findings
  // (the exporters would emit colliding series, and a span stealing a
  // metric name corrupts both timelines).
  struct FirstUse {
    const SourceFile* file = nullptr;
    const TelemetryUse* use = nullptr;
  };
  std::map<std::string, FirstUse> first_by_name;
  // Names deliberately shared between a flight-recorder journal event and
  // exactly one metric instrument, so ExportChromeTrace can mirror the
  // journal onto the metric's counter track. Everything else keeps the
  // one-name-one-instrument rule.
  static const std::set<std::string> kJournalMirrorAllowlist = {
      "thread_pool_worker_utilization",  // pool gauge + worker journal events
      "serving_in_flight",               // admission gauge + scheduler events
      "transport_in_flight",             // depth gauge + prefetch journal
  };
  const auto mirror_allowed = [](const std::string& name,
                                 const std::string& a, const std::string& b) {
    return kJournalMirrorAllowlist.count(name) > 0 &&
           (a == "journal_event" || b == "journal_event");
  };
  for (const SourceFile& f : index.files) {
    if (f.rel_path.compare(0, 4, "src/") != 0) continue;
    for (const TelemetryUse& use : f.telemetry_uses) {
      const auto [it, inserted] =
          first_by_name.emplace(use.name, FirstUse{&f, &use});
      if (inserted || it->second.use->instrument == use.instrument) continue;
      if (mirror_allowed(use.name, use.instrument,
                         it->second.use->instrument)) {
        continue;
      }
      Emit(f, "A6", use.line,
           "telemetry name `" + use.name + "` is registered as a " +
               use.instrument + " here but as a " +
               it->second.use->instrument + " at " +
               it->second.file->rel_path + ":" +
               std::to_string(it->second.use->line) +
               "; one name must map to one instrument (colliding exporter "
               "series, corrupted trace tracks) — rename one of them",
           out);
    }
  }
}

}  // namespace analyze
}  // namespace vastats
