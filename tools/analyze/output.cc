#include "output.h"

#include "util/json_writer.h"

namespace vastats {
namespace analyze {

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"R1", "no exceptions in library code (Status/Result<T> instead)"},
      {"R2", "all randomness flows through the seeded Rng facade"},
      {"R3", "no console IO from library code"},
      {"R4", "canonical include guards and .cc/.h pairing"},
      {"R5", "Status and Result are declared [[nodiscard]]"},
      {"R6", "telemetry names are snake_case string literals"},
      {"R7", "wall clocks stay behind Stopwatch; simulated time uses "
             "VirtualClock"},
      {"A1", "includes follow the layer DAG and are acyclic"},
      {"A2", "unordered-container iteration must not feed order-sensitive "
             "sinks"},
      {"A3", "Status/Result values must not be discarded"},
      {"A4", "switches over repo enums name every enumerator, no default"},
      {"A5", "no mutable static-storage state outside the sanctioned "
             "facades"},
      {"A6", "one telemetry name maps to one instrument kind across src/"},
  };
  return kRules;
}

std::string RenderText(const std::vector<Finding>& fresh, int baselined) {
  std::string out;
  for (const Finding& finding : fresh) {
    out += Render(finding) + "\n";
  }
  const std::string suffix =
      baselined > 0 ? " (" + std::to_string(baselined) + " baselined)" : "";
  if (fresh.empty()) {
    out += "vastats_analyze: clean" + suffix + "\n";
  } else {
    out += "vastats_analyze: " + std::to_string(fresh.size()) +
           " finding(s)" + suffix + "\n";
  }
  return out;
}

std::vector<Finding> CompatView(const std::vector<Finding>& findings) {
  std::vector<Finding> compat;
  for (const Finding& finding : findings) {
    if (!finding.rule.empty() && finding.rule[0] == 'R') {
      compat.push_back(finding);
    }
  }
  return compat;
}

int RenderCompat(const std::vector<Finding>& findings,
                 std::string* stdout_text, std::string* stderr_text) {
  stdout_text->clear();
  stderr_text->clear();
  for (const Finding& finding : findings) {
    *stderr_text += Render(finding) + "\n";
  }
  if (!findings.empty()) {
    *stderr_text += "lint_invariants: " + std::to_string(findings.size()) +
                    " finding(s)\n";
    return 1;
  }
  *stdout_text = "lint_invariants: clean\n";
  return 0;
}

namespace {

void WriteFindingJson(JsonWriter* json, const Finding& finding,
                      bool baselined) {
  json->BeginObject();
  json->KeyValue("rule", finding.rule);
  json->KeyValue("path", finding.path);
  json->KeyValue("line", static_cast<int64_t>(finding.line));
  json->KeyValue("message", finding.message);
  json->KeyValue("baselined", baselined);
  json->EndObject();
}

}  // namespace

std::string RenderJson(const std::vector<Finding>& fresh,
                       const std::vector<Finding>& baselined) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("tool", "vastats_analyze");
  json.KeyValue("schema_version", static_cast<int64_t>(1));
  json.Key("summary");
  json.BeginObject();
  json.KeyValue("fresh", static_cast<int64_t>(fresh.size()));
  json.KeyValue("baselined", static_cast<int64_t>(baselined.size()));
  json.EndObject();
  json.Key("findings");
  json.BeginArray();
  for (const Finding& finding : fresh) {
    WriteFindingJson(&json, finding, false);
  }
  for (const Finding& finding : baselined) {
    WriteFindingJson(&json, finding, true);
  }
  json.EndArray();
  json.EndObject();
  return std::move(json).Finish() + "\n";
}

namespace {

void WriteSarifResult(JsonWriter* json, const Finding& finding,
                      bool baselined) {
  json->BeginObject();
  json->KeyValue("ruleId", finding.rule);
  json->KeyValue("level", baselined ? "note" : "error");
  json->Key("message");
  json->BeginObject();
  json->KeyValue("text", finding.message);
  json->EndObject();
  json->Key("locations");
  json->BeginArray();
  json->BeginObject();
  json->Key("physicalLocation");
  json->BeginObject();
  json->Key("artifactLocation");
  json->BeginObject();
  json->KeyValue("uri", finding.path);
  json->KeyValue("uriBaseId", "SRCROOT");
  json->EndObject();
  if (finding.line > 0) {
    json->Key("region");
    json->BeginObject();
    json->KeyValue("startLine", static_cast<int64_t>(finding.line));
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
  json->EndArray();
  if (baselined) {
    json->Key("suppressions");
    json->BeginArray();
    json->BeginObject();
    json->KeyValue("kind", "external");
    json->KeyValue("justification", "tools/analyze/baseline.txt");
    json->EndObject();
    json->EndArray();
  }
  json->EndObject();
}

}  // namespace

std::string RenderSarif(const std::vector<Finding>& fresh,
                        const std::vector<Finding>& baselined) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  json.KeyValue("version", "2.1.0");
  json.Key("runs");
  json.BeginArray();
  json.BeginObject();
  json.Key("tool");
  json.BeginObject();
  json.Key("driver");
  json.BeginObject();
  json.KeyValue("name", "vastats_analyze");
  json.KeyValue("version", "1.0.0");
  json.KeyValue("informationUri",
                "https://github.com/vastats/vastats/blob/main/"
                "CONTRIBUTING.md");
  json.Key("rules");
  json.BeginArray();
  for (const RuleInfo& rule : Rules()) {
    json.BeginObject();
    json.KeyValue("id", rule.id);
    json.Key("shortDescription");
    json.BeginObject();
    json.KeyValue("text", rule.summary);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.EndObject();
  json.Key("originalUriBaseIds");
  json.BeginObject();
  json.Key("SRCROOT");
  json.BeginObject();
  json.KeyValue("uri", "file:///");
  json.EndObject();
  json.EndObject();
  json.Key("results");
  json.BeginArray();
  for (const Finding& finding : fresh) {
    WriteSarifResult(&json, finding, false);
  }
  for (const Finding& finding : baselined) {
    WriteSarifResult(&json, finding, true);
  }
  json.EndArray();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  return std::move(json).Finish() + "\n";
}

}  // namespace analyze
}  // namespace vastats
