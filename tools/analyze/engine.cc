#include "engine.h"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "util/thread_pool.h"

namespace vastats {
namespace analyze {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const std::string& name) {
  for (const char* ext : {".cc", ".h", ".hpp", ".cpp"}) {
    const std::string e(ext);
    if (name.size() >= e.size() &&
        name.compare(name.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

void WalkDir(const fs::path& dir, const fs::path& root,
             std::vector<std::string>* out) {
  std::vector<std::string> file_names;
  std::vector<fs::path> subdirs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_directory()) {
      subdirs.push_back(entry.path());
    } else if (HasSourceExtension(entry.path().filename().string())) {
      file_names.push_back(entry.path().filename().string());
    }
  }
  std::sort(file_names.begin(), file_names.end());
  std::sort(subdirs.begin(), subdirs.end());
  for (const std::string& name : file_names) {
    out->push_back(
        fs::relative(dir / name, root, ec).generic_string());
  }
  for (const fs::path& sub : subdirs) WalkDir(sub, root, out);
}

// Per-file rule dispatch in the Python linter's order. `kind` selects the
// src/ rule set or the tests/bench subset.
enum class FileKind { kSrc, kTestsBench };

bool IsFacadeFile(const std::string& path, const char* stem) {
  return path == std::string("src/util/") + stem + ".h" ||
         path == std::string("src/util/") + stem + ".cc";
}

void CheckFile(const SourceFile& f, FileKind kind, const RepoIndex& index,
               bool structural, std::vector<Finding>* out) {
  if (kind == FileKind::kTestsBench) {
    CheckR2SeededRng(f, out);
    CheckR7VirtualTime(f, out);
    CheckR6TelemetryNames(f, out);
    return;
  }
  const std::string& p = f.rel_path;
  const bool in_util = p.compare(0, 9, "src/util/") == 0;
  const bool in_obs = p.compare(0, 8, "src/obs/") == 0;
  CheckR1NoExceptions(f, out);
  if (!IsFacadeFile(p, "random")) CheckR2SeededRng(f, out);
  // transport/clock_map.cc is the transport's sanctioned wall-clock read:
  // hedging and wall-mapped deadline budgets need a real monotonic epoch,
  // and confining the reads to one file keeps R7 enforceable everywhere
  // else (including the rest of src/transport).
  if (!IsFacadeFile(p, "stopwatch") && p != "src/transport/clock_map.cc") {
    CheckR7VirtualTime(f, out);
  }
  if (!in_util && p != "src/obs/export.cc") CheckR3IoDiscipline(f, out);
  if (!in_obs) CheckR6TelemetryNames(f, out);
  if (f.IsHeader()) {
    CheckR4HeaderGuard(f, out);
  } else if (p.size() >= 3 && p.compare(p.size() - 3, 3, ".cc") == 0) {
    CheckR4CcPairing(f, index, out);
  }
  if (structural) {
    CheckA2UnorderedIteration(f, index, out);
    CheckA3DiscardedStatus(f, index, out);
    CheckA4ExhaustiveSwitch(f, index, out);
    CheckA5MutableGlobals(f, out);
  }
}

}  // namespace

std::vector<std::string> EnumerateSources(const std::string& root,
                                          const std::string& subdir) {
  std::vector<std::string> paths;
  const fs::path base = fs::path(root) / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return paths;
  WalkDir(base, fs::path(root), &paths);
  return paths;
}

Result<AnalysisReport> AnalyzeRepo(const AnalyzeOptions& options) {
  std::vector<std::string> src_paths = EnumerateSources(options.root, "src");
  const size_t num_src = src_paths.size();
  for (const char* subdir : {"tests", "bench"}) {
    for (std::string& p : EnumerateSources(options.root, subdir)) {
      src_paths.push_back(std::move(p));
    }
  }
  if (src_paths.empty()) {
    return Status::NotFound("no sources under " + options.root +
                            " (expected a src/ tree)");
  }

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = DefaultThreadPool();
  if (options.threads > 0) {
    ThreadPoolOptions pool_options;
    pool_options.num_threads = options.threads;
    own_pool = std::make_unique<ThreadPool>(pool_options);
    pool = own_pool.get();
  }

  // Phase 1 (parallel): load + lex + per-file facts into slots.
  std::vector<SourceFile> files(src_paths.size());
  VASTATS_RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(src_paths.size()), [&](int i) -> Status {
        const std::string& rel = src_paths[static_cast<size_t>(i)];
        if (!LoadSourceFile(options.root, rel,
                            &files[static_cast<size_t>(i)])) {
          return Status::NotFound("cannot read " + rel);
        }
        return Status::Ok();
      }));

  // Phase 2 (serial): merge facts, resolve the include graph.
  const RepoIndex index = BuildRepoIndex(std::move(files));

  // Phase 3 (parallel): per-file rules into per-file slots.
  std::vector<std::vector<Finding>> slots(index.files.size());
  VASTATS_RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(index.files.size()), [&](int i) -> Status {
        const FileKind kind = static_cast<size_t>(i) < num_src
                                  ? FileKind::kSrc
                                  : FileKind::kTestsBench;
        CheckFile(index.files[static_cast<size_t>(i)], kind, index,
                  options.structural_rules, &slots[static_cast<size_t>(i)]);
        return Status::Ok();
      }));

  // Phase 4 (serial): merge in walk order, then the whole-repo rules.
  AnalysisReport report;
  report.files_analyzed = static_cast<int>(index.files.size());
  for (std::vector<Finding>& slot : slots) {
    for (Finding& finding : slot) {
      report.findings.push_back(std::move(finding));
    }
  }
  if (options.structural_rules) {
    CheckA1Layering(index, &report.findings);
    CheckA6TelemetryNames(index, &report.findings);
  }
  CheckR5Nodiscard(index, &report.findings);
  return report;
}

}  // namespace analyze
}  // namespace vastats
