// Whole-repo facts the per-file rules consult: the analyzed file set, the
// quoted-include graph over src/, the layer rank of every src/
// subdirectory, and the merged registries (enums, Status-returning
// functions, unordered-container accessors).

#ifndef VASTATS_TOOLS_ANALYZE_REPO_INDEX_H_
#define VASTATS_TOOLS_ANALYZE_REPO_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "source.h"

namespace vastats {
namespace analyze {

// The dependency DAG over src/ subdirectories. Rank increases with layer
// height; a file may only include files of strictly lower rank or of the
// same rank (lateral includes inside a rank group), never higher.
//
//   util(0) -> obs(1) -> {stats, density, sampling, datagen}(2)
//           -> integration(3) -> {core, fusion}(4) -> query(5)
//
// Returns -1 for directories outside the DAG (they are exempt from A1).
int LayerRank(const std::string& dir);

struct IncludeEdge {
  int to = -1;    // index into RepoIndex::files
  int line = 0;   // line of the #include in the including file
};

struct RepoIndex {
  std::vector<SourceFile> files;     // enumeration order (sorted walk)
  std::map<std::string, int> by_path;

  // Quoted-include graph over the src/ files (indices parallel `files`;
  // non-src files have empty edge lists). Include paths are resolved
  // src/-relative, matching the repo convention.
  std::vector<std::vector<IncludeEdge>> includes;

  std::map<std::string, const EnumDef*> enums_by_name;
  // Enumerator -> enum name; enumerators claimed by several enums resolve
  // to "" (ambiguous, unusable for unqualified case labels).
  std::map<std::string, std::string> enum_of_enumerator;
  std::set<std::string> status_functions;
  std::set<std::string> unordered_methods;

  bool HasFile(const std::string& rel_path) const {
    return by_path.find(rel_path) != by_path.end();
  }

  // Shortest include chain "a.cc -> b.h -> target" ending at file index
  // `target`, preferring a .cc root (the chain a build actually
  // instantiates). Falls back to the target alone when nothing includes it.
  std::vector<std::string> IncludeChain(int target) const;
};

// Merges per-file facts and resolves the include graph. `files` is moved in.
RepoIndex BuildRepoIndex(std::vector<SourceFile> files);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_REPO_INDEX_H_
