// A loaded source file plus the per-file facts the analyzer extracts in
// the parallel front-end phase: the token stream, the quoted includes, the
// enums it defines, the Status/Result-returning functions it declares, and
// the accessors that expose unordered containers. The facts from every
// file are merged into a RepoIndex before the rule phase runs.

#ifndef VASTATS_TOOLS_ANALYZE_SOURCE_H_
#define VASTATS_TOOLS_ANALYZE_SOURCE_H_

#include <string>
#include <vector>

#include "lexer.h"

namespace vastats {
namespace analyze {

struct IncludeRef {
  std::string path;  // as written, e.g. "util/status.h"
  int line = 0;
};

// One telemetry registration by string literal: a GetCounter / GetGauge /
// GetHistogram call or a span opening. Feeds rule A6 (one name -> one
// instrument, repo-wide).
struct TelemetryUse {
  std::string name;        // the literal, e.g. "unis_draws_total"
  std::string instrument;  // "counter", "gauge", "histogram", or "span"
  int line = 0;
};

struct EnumDef {
  std::string name;
  std::vector<std::string> enumerators;  // in declaration order
  std::string path;                      // defining file (repo-relative)
  int line = 0;
};

struct SourceFile {
  std::string rel_path;  // repo-relative, forward slashes ("src/util/x.h")
  std::string layer_dir;  // second path component under src/ ("util"), else ""
  std::string raw;
  std::vector<std::string> lines;  // raw split on '\n' (no terminators)
  LexedSource lex;

  // Facts for the repo index.
  std::vector<IncludeRef> quoted_includes;
  std::vector<EnumDef> enums;
  std::vector<std::string> status_functions;   // names returning Status/Result
  std::vector<std::string> void_functions;     // names declared returning void
  std::vector<std::string> unordered_methods;  // accessors returning unordered
  std::vector<std::string> unordered_vars;     // file-local unordered names
  std::vector<TelemetryUse> telemetry_uses;    // literal-named registrations

  bool IsHeader() const;

  // Raw text of 1-based `line`, or "" past the end.
  const std::string& Line(int line) const;

  // True when `rule` is suppressed on `line` via
  // `// lint-invariants: allow(<rule>)`.
  bool Allowed(const std::string& rule, int line) const;
};

// Builds a SourceFile from in-memory text (the path is not read; tests and
// the self-test corpus feed snippets through this).
SourceFile MakeSourceFile(std::string rel_path, std::string text);

// Reads `root`/`rel_path` and builds the SourceFile. Returns false when the
// file cannot be read.
bool LoadSourceFile(const std::string& root, const std::string& rel_path,
                    SourceFile* out);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_SOURCE_H_
