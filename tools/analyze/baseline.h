// Baseline support: a committed text file of rendered findings that are
// tolerated (grandfathered) without failing the build. Format: one
// rendered finding per line ("path:line: [rule] message"), `#` comments
// and blank lines ignored. Matching is exact-line, multiset semantics —
// two identical baselined findings absorb at most two occurrences.
//
// The repo's committed baseline (tools/analyze/baseline.txt) is empty by
// policy: src/ analyzes clean, and new debt must not be silently added.

#ifndef VASTATS_TOOLS_ANALYZE_BASELINE_H_
#define VASTATS_TOOLS_ANALYZE_BASELINE_H_

#include <map>
#include <string>
#include <vector>

#include "rules.h"

namespace vastats {
namespace analyze {

struct Baseline {
  std::map<std::string, int> entries;  // rendered line -> tolerated count
};

// Parses baseline text (not a path; the caller reads the file).
Baseline ParseBaseline(const std::string& text);

// Serializes findings into baseline-file text.
std::string FormatBaseline(const std::vector<Finding>& findings);

struct BaselineSplit {
  std::vector<Finding> fresh;      // not in the baseline: these fail the run
  std::vector<Finding> baselined;  // absorbed by the baseline
};

// Splits `findings` against `baseline`, preserving order within each part.
BaselineSplit ApplyBaseline(const std::vector<Finding>& findings,
                            const Baseline& baseline);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_BASELINE_H_
