// The analyzer's rule set.
//
// R1-R7 are token-stream ports of the retired Python linter
// (tools/lint_invariants.py) and preserve its messages, line attribution,
// per-line single-finding behaviour, and suppression semantics exactly, so
// the migration could be cross-checked byte-for-byte.
//
// A1-A5 are new structural rules the line-regex linter could not express:
//
//   A1  layering: the quoted-include graph over src/ must follow the layer
//       DAG (util -> obs -> {stats, density, sampling, datagen} ->
//       integration -> {core, fusion} -> query) and be acyclic.
//   A2  determinism: iterating an unordered container where the body feeds
//       an accumulator, appends to output, or consumes RNG is flagged
//       unless the appended output is sorted right after the loop.
//   A3  Status flow: `(void)` / `static_cast<void>` casts and bare
//       expression statements that discard a Status/Result-returning call.
//   A4  exhaustive switches: a switch over a repo enum must name every
//       enumerator and must not carry a `default`.
//   A5  mutable global state: non-const static-storage declarations
//       outside the sanctioned facades (util/thread_pool.cc,
//       obs/metrics.cc, obs/flight_recorder.cc).
//   A6  telemetry naming: one metric/span string literal must map to one
//       instrument kind (counter, gauge, histogram, span) across src/ —
//       reuse across kinds makes the exporters emit colliding series.
//
// Every rule honours `// lint-invariants: allow(<rule>)` on the reported
// line except R4/R5, which (as in the Python linter) have no suppression.

#ifndef VASTATS_TOOLS_ANALYZE_RULES_H_
#define VASTATS_TOOLS_ANALYZE_RULES_H_

#include <string>
#include <vector>

#include "repo_index.h"
#include "source.h"

namespace vastats {
namespace analyze {

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;  // 1-based; 0 for file-level findings
  std::string message;
};

// "path:line: [rule] message" (no ":line" when line is 0) — identical to
// the Python linter's Finding.render().
std::string Render(const Finding& finding);

// Canonical include guard for a header path: src/util/status.h ->
// VASTATS_UTIL_STATUS_H_.
std::string ExpectedGuard(const std::string& rel_header);

// --- Python-compatible rules (per file) ------------------------------------
void CheckR1NoExceptions(const SourceFile& f, std::vector<Finding>* out);
void CheckR2SeededRng(const SourceFile& f, std::vector<Finding>* out);
void CheckR3IoDiscipline(const SourceFile& f, std::vector<Finding>* out);
void CheckR7VirtualTime(const SourceFile& f, std::vector<Finding>* out);
void CheckR6TelemetryNames(const SourceFile& f, std::vector<Finding>* out);
void CheckR4HeaderGuard(const SourceFile& f, std::vector<Finding>* out);
void CheckR4CcPairing(const SourceFile& f, const RepoIndex& index,
                      std::vector<Finding>* out);
// R5 inspects src/util/status.h through the index (file-level findings).
void CheckR5Nodiscard(const RepoIndex& index, std::vector<Finding>* out);

// --- Structural rules ------------------------------------------------------
void CheckA2UnorderedIteration(const SourceFile& f, const RepoIndex& index,
                               std::vector<Finding>* out);
void CheckA3DiscardedStatus(const SourceFile& f, const RepoIndex& index,
                            std::vector<Finding>* out);
void CheckA4ExhaustiveSwitch(const SourceFile& f, const RepoIndex& index,
                             std::vector<Finding>* out);
void CheckA5MutableGlobals(const SourceFile& f, std::vector<Finding>* out);
// A1 runs over the whole include graph (back-edges and cycles).
void CheckA1Layering(const RepoIndex& index, std::vector<Finding>* out);
// A6 cross-checks literal telemetry registrations across every src/ file.
void CheckA6TelemetryNames(const RepoIndex& index, std::vector<Finding>* out);

}  // namespace analyze
}  // namespace vastats

#endif  // VASTATS_TOOLS_ANALYZE_RULES_H_
