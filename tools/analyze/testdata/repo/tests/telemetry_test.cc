#include "obs/metrics.h"

void Probe(vastats::Observability& obs) {
  obs.GetCounter("BadName").Increment();
  obs.GetCounter("good_name").Increment();
}
