#ifndef VASTATS_INTEGRATION_HAZARD_H_
#define VASTATS_INTEGRATION_HAZARD_H_

#include <unordered_map>

#include "util/status.h"

namespace vastats {

enum class Phase { kWarm, kRun, kDrain };

Status Flush();

class Hazard {
 public:
  double Total() const;
  int Label(Phase phase) const;

 private:
  std::unordered_map<int, double> weights_;
};

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_HAZARD_H_
