#include "integration/hazard.h"

namespace vastats {

int g_total_calls = 0;

double Hazard::Total() const {
  double sum = 0.0;
  for (const auto& [key, weight] : weights_) {
    sum += weight;
  }
  return sum;
}

int Hazard::Label(Phase phase) const {
  switch (phase) {
    case Phase::kWarm:
      return 0;
    default:
      return 1;
  }
}

Status Flush() { return Status(); }

void Tick() {
  g_total_calls = g_total_calls + 1;
  Flush();
  (void)Flush();  // lint-invariants: allow(A3)
}

}  // namespace vastats
