#ifndef VASTATS_CORE_THROWS_H_
#define VASTATS_CORE_THROWS_H_

#include "util/status.h"

namespace vastats {

Status Commit();

}  // namespace vastats

#endif  // VASTATS_CORE_THROWS_H_
