#ifndef BADGUARD_H
#define BADGUARD_H
#endif  // BADGUARD_H
