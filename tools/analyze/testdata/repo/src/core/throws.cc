#include "core/throws.h"

namespace vastats {

Status Commit() {
  throw 1;
}

void Retry() {
  throw 2;  // lint-invariants: allow(R1)
}

}  // namespace vastats
