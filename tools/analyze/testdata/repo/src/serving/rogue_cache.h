#ifndef VASTATS_SERVING_ROGUE_CACHE_H_
#define VASTATS_SERVING_ROGUE_CACHE_H_

namespace vastats {

double* RogueLookup(int key);

}  // namespace vastats

#endif  // VASTATS_SERVING_ROGUE_CACHE_H_
