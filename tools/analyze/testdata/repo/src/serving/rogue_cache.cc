#include "serving/rogue_cache.h"

namespace vastats {
namespace {

// Planted violation: a serving-layer cache static OUTSIDE the sanctioned
// facade file (serving/caches.cc) must still trip A5.
double g_rogue_answers[64] = {0.0};

}  // namespace

double* RogueLookup(int key) { return &g_rogue_answers[key % 64]; }

}  // namespace vastats
