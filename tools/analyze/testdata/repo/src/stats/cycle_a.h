#ifndef VASTATS_STATS_CYCLE_A_H_
#define VASTATS_STATS_CYCLE_A_H_

#include "stats/cycle_b.h"

namespace vastats {

int CycleA();

}  // namespace vastats

#endif  // VASTATS_STATS_CYCLE_A_H_
