#ifndef VASTATS_STATS_CYCLE_B_H_
#define VASTATS_STATS_CYCLE_B_H_

#include "stats/cycle_a.h"

namespace vastats {

int CycleB();

}  // namespace vastats

#endif  // VASTATS_STATS_CYCLE_B_H_
