#include "stats/io_use.h"

#include <chrono>
#include <cstdio>

namespace vastats {

void Report() {
  printf("done\n");
  auto t = std::chrono::steady_clock::now();
  static_cast<void>(t);
}

}  // namespace vastats
