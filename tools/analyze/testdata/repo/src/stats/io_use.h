#ifndef VASTATS_STATS_IO_USE_H_
#define VASTATS_STATS_IO_USE_H_

namespace vastats {

void Report();

}  // namespace vastats

#endif  // VASTATS_STATS_IO_USE_H_
