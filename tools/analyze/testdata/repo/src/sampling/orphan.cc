namespace vastats {

int OrphanSeed() { return 7; }

}  // namespace vastats
