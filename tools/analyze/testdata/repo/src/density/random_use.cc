#include "density/random_use.h"

namespace vastats {

int Draw() {
  return rand();
}

int DrawSeeded() {
  return rand();  // lint-invariants: allow(R2)
}

}  // namespace vastats
