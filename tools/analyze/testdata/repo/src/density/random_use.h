#ifndef VASTATS_DENSITY_RANDOM_USE_H_
#define VASTATS_DENSITY_RANDOM_USE_H_

namespace vastats {

int Draw();
int DrawSeeded();

}  // namespace vastats

#endif  // VASTATS_DENSITY_RANDOM_USE_H_
