#ifndef VASTATS_UTIL_UPLINK_H_
#define VASTATS_UTIL_UPLINK_H_

#include "core/throws.h"

namespace vastats {

int Uplink();

}  // namespace vastats

#endif  // VASTATS_UTIL_UPLINK_H_
