#ifndef VASTATS_UTIL_STATUS_H_
#define VASTATS_UTIL_STATUS_H_

namespace vastats {

class [[nodiscard]] Status {
 public:
  bool ok() const { return true; }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  bool ok() const { return true; }
};

}  // namespace vastats

#endif  // VASTATS_UTIL_STATUS_H_
