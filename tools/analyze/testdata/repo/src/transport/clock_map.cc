#include "transport/clock_map.h"

#include <chrono>

namespace vastats {

// Sanctioned: transport/clock_map.cc is the transport's one allowed
// wall-clock read (engine.cc R7 gate), so this must produce NO finding.
double WallNowMs() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

}  // namespace vastats
