#include "transport/rogue_clock.h"

#include <chrono>

namespace vastats {

// Planted violation: a wall-clock read in any transport file OTHER than
// clock_map.cc must still trip R7 — the sanction covers one file, not the
// directory.
double RogueNowMs() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

}  // namespace vastats
