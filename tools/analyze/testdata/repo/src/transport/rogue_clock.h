#ifndef VASTATS_TRANSPORT_ROGUE_CLOCK_H_
#define VASTATS_TRANSPORT_ROGUE_CLOCK_H_

namespace vastats {

double RogueNowMs();

}  // namespace vastats

#endif  // VASTATS_TRANSPORT_ROGUE_CLOCK_H_
