#ifndef VASTATS_TRANSPORT_CLOCK_MAP_H_
#define VASTATS_TRANSPORT_CLOCK_MAP_H_

namespace vastats {

double WallNowMs();

}  // namespace vastats

#endif  // VASTATS_TRANSPORT_CLOCK_MAP_H_
