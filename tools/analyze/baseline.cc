#include "baseline.h"

namespace vastats {
namespace analyze {

Baseline ParseBaseline(const std::string& text) {
  Baseline baseline;
  std::string line;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != '\n') {
      line += text[i];
      continue;
    }
    // Trim trailing carriage return, leading/trailing spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    size_t start = 0;
    while (start < line.size() && line[start] == ' ') ++start;
    if (start < line.size() && line[start] != '#') {
      ++baseline.entries[line.substr(start)];
    }
    line.clear();
  }
  return baseline;
}

std::string FormatBaseline(const std::vector<Finding>& findings) {
  std::string out =
      "# vastats_analyze baseline: tolerated findings, one rendered "
      "finding per line.\n"
      "# Keep this file empty for src/core; shrink it, never grow it.\n";
  for (const Finding& finding : findings) {
    out += Render(finding) + "\n";
  }
  return out;
}

BaselineSplit ApplyBaseline(const std::vector<Finding>& findings,
                            const Baseline& baseline) {
  BaselineSplit split;
  std::map<std::string, int> remaining = baseline.entries;
  for (const Finding& finding : findings) {
    const auto it = remaining.find(Render(finding));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      split.baselined.push_back(finding);
    } else {
      split.fresh.push_back(finding);
    }
  }
  return split;
}

}  // namespace analyze
}  // namespace vastats
