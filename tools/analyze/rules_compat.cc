// R1-R7: token-stream ports of tools/lint_invariants.py. The matching and
// message text deliberately mirror the Python regexes — including their
// quirks (one finding per line per rule, leftmost match wins, a suppressed
// leftmost match silences the rest of the line, `->rand()` matching where
// `.rand()` does not) — so the migration was verifiable byte-for-byte.

#include "rules.h"

#include <cctype>

namespace vastats {
namespace analyze {
namespace {

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

const Token& TokenAt(const std::vector<Token>& toks, size_t i) {
  static const Token kEnd;
  return i < toks.size() ? toks[i] : kEnd;
}

// Emits a finding unless the raw line carries an allow(<rule>) comment.
void Emit(const SourceFile& f, const std::string& rule, int line,
          std::string message, std::vector<Finding>* out) {
  if (f.Allowed(rule, line)) return;
  out->push_back(Finding{rule, f.rel_path, line, std::move(message)});
}

// Per-line single-finding scan driver: `match(i, &token_text)` decides
// whether a match starts at token i and produces the reported spelling.
// Once a line matched (suppressed or not), the rest of the line is skipped,
// matching the Python per-line `pattern.search`.
template <typename MatchFn, typename MessageFn>
void ScanPerLine(const SourceFile& f, const std::string& rule, MatchFn match,
                 MessageFn message, std::vector<Finding>* out) {
  int done_line = 0;
  for (size_t i = 0; i < f.lex.tokens.size(); ++i) {
    const int line = f.lex.tokens[i].line;
    if (line == done_line) continue;
    std::string tok;
    if (!match(i, &tok)) continue;
    done_line = line;
    Emit(f, rule, line, message(tok), out);
  }
}

}  // namespace

std::string Render(const Finding& finding) {
  std::string out = finding.path;
  if (finding.line != 0) {
    out += ":";
    out += std::to_string(finding.line);
  }
  out += ": [";
  out += finding.rule;
  out += "] ";
  out += finding.message;
  return out;
}

std::string ExpectedGuard(const std::string& rel_header) {
  std::string stem = rel_header;
  if (stem.compare(0, 4, "src/") == 0) stem = stem.substr(4);
  for (const char* ext : {".hpp", ".hh", ".h"}) {
    const std::string e(ext);
    if (stem.size() >= e.size() &&
        stem.compare(stem.size() - e.size(), e.size(), e) == 0) {
      stem = stem.substr(0, stem.size() - e.size());
      break;
    }
  }
  std::string guard = "VASTATS_";
  for (const char c : stem) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  return guard + "_H_";
}

void CheckR1NoExceptions(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& T = f.lex.tokens;
  ScanPerLine(
      f, "R1",
      [&](size_t i, std::string* tok) {
        const Token& t = T[i];
        if (t.kind != TokenKind::kIdentifier) return false;
        if (t.text != "throw" && t.text != "try" && t.text != "catch") {
          return false;
        }
        *tok = t.text;
        return true;
      },
      [](const std::string& tok) {
        return "`" + tok +
               "` is forbidden in library code; return a Status/Result<T> "
               "instead (src/util/status.h)";
      },
      out);
}

void CheckR2SeededRng(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& T = f.lex.tokens;
  auto is_adhoc_engine = [](const std::string& name) {
    return name == "random_device" || name == "mt19937" ||
           name == "mt19937_64" || name == "minstd_rand" ||
           name == "minstd_rand0" || name == "default_random_engine" ||
           name == "knuth_b" || name.compare(0, 6, "ranlux") == 0;
  };
  ScanPerLine(
      f, "R2",
      [&](size_t i, std::string* tok) {
        const Token& t = T[i];
        if (t.kind != TokenKind::kIdentifier) return false;
        if (t.text == "std" && IsPunct(TokenAt(T, i + 1), "::")) {
          const Token& name = TokenAt(T, i + 2);
          if (name.kind != TokenKind::kIdentifier) return false;
          if (name.text == "rand" || is_adhoc_engine(name.text)) {
            *tok = "std::" + name.text;
            return true;
          }
          return false;
        }
        if (t.text == "rand" || t.text == "srand") {
          // Python lookbehind (?<![\w:.]) — a preceding `::` or `.` token
          // supplies the excluded character; `->` ends in `>` and matches.
          if (i > 0 && (IsPunct(T[i - 1], "::") || IsPunct(T[i - 1], "."))) {
            return false;
          }
          if (!IsPunct(TokenAt(T, i + 1), "(")) return false;
          *tok = t.text;
          return true;
        }
        return false;
      },
      [](const std::string& tok) {
        return "`" + tok +
               "` bypasses the seeded Rng facade; use vastats::Rng "
               "(src/util/random.h) so streams stay deterministic";
      },
      out);
}

void CheckR3IoDiscipline(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& T = f.lex.tokens;
  auto is_print_fn = [](const std::string& name) {
    return name == "printf" || name == "fprintf" || name == "puts" ||
           name == "fputs";
  };
  ScanPerLine(
      f, "R3",
      [&](size_t i, std::string* tok) {
        const Token& t = T[i];
        if (t.kind != TokenKind::kIdentifier) return false;
        if (t.text == "std" && IsPunct(TokenAt(T, i + 1), "::")) {
          const Token& name = TokenAt(T, i + 2);
          if (IsIdent(name, "cout") || IsIdent(name, "cerr") ||
              IsIdent(name, "clog")) {
            *tok = "std::" + name.text;
            return true;
          }
          return false;
        }
        if (!is_print_fn(t.text)) return false;
        // Python lookbehind (?<![\w.]) — `.printf` is member access, not
        // the C function; `::printf` still matches (tok keeps the `std::`
        // spelling only for the literal std namespace, as in the regex).
        if (i > 0 && IsPunct(T[i - 1], ".")) return false;
        if (!IsPunct(TokenAt(T, i + 1), "(")) return false;
        const bool std_qualified = i >= 2 && IsPunct(T[i - 1], "::") &&
                                   IsIdent(T[i - 2], "std");
        *tok = (std_qualified ? "std::" : "") + t.text;
        return true;
      },
      [](const std::string& tok) {
        return "`" + tok +
               "` writes to the console from library code; report failures "
               "via Status and leave IO to callers (snprintf into a buffer "
               "is fine)";
      },
      out);
}

void CheckR7VirtualTime(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& T = f.lex.tokens;
  auto is_named_clock = [](const std::string& name) {
    return name == "steady_clock" || name == "system_clock" ||
           name == "high_resolution_clock";
  };
  ScanPerLine(
      f, "R7",
      [&](size_t i, std::string* tok) {
        const Token& t = T[i];
        if (t.kind != TokenKind::kIdentifier) return false;
        if (t.text == "std" && IsPunct(TokenAt(T, i + 1), "::") &&
            IsIdent(TokenAt(T, i + 2), "chrono") &&
            IsPunct(TokenAt(T, i + 3), "::")) {
          const Token& clock = TokenAt(T, i + 4);
          const std::string suffix = "_clock";
          if (clock.kind == TokenKind::kIdentifier &&
              clock.text.size() >= suffix.size() &&
              clock.text.compare(clock.text.size() - suffix.size(),
                                 suffix.size(), suffix) == 0 &&
              IsPunct(TokenAt(T, i + 5), "::") &&
              IsIdent(TokenAt(T, i + 6), "now") &&
              IsPunct(TokenAt(T, i + 7), "(")) {
            *tok = "std::chrono::" + clock.text + "::now";
            return true;
          }
          return false;
        }
        if (is_named_clock(t.text)) {
          // Python lookbehind (?<![\w:]) — a preceding `::` disqualifies
          // the bare spelling (the std::chrono:: alternative covers it).
          if (i > 0 && IsPunct(T[i - 1], "::")) return false;
          if (IsPunct(TokenAt(T, i + 1), "::") &&
              IsIdent(TokenAt(T, i + 2), "now") &&
              IsPunct(TokenAt(T, i + 3), "(")) {
            *tok = t.text + "::now";
            return true;
          }
        }
        return false;
      },
      [](const std::string& tok) {
        return "`" + tok +
               "` reads a wall clock; simulated time flows through "
               "VirtualClock (src/datagen/fault_model.h) and wall time "
               "through Stopwatch (src/util/stopwatch.h) only";
      },
      out);
}

void CheckR6TelemetryNames(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& T = f.lex.tokens;
  auto snake_case = [](const std::string& name) {
    if (name.empty()) return false;
    if (!std::islower(static_cast<unsigned char>(name[0]))) return false;
    for (const char c : name) {
      if (!std::islower(static_cast<unsigned char>(c)) &&
          !std::isdigit(static_cast<unsigned char>(c)) && c != '_') {
        return false;
      }
    }
    return true;
  };
  // The name argument sits at `target`; findings report that position
  // (matching the Python `m.end()` after `(\s*` / `,\s*`).
  auto check_at = [&](size_t target, const std::string& what) {
    const int line =
        target < T.size() ? T[target].line : f.lex.num_lines;
    if (f.Allowed("R6", line)) return;
    if (target >= T.size() || T[target].kind != TokenKind::kString) {
      out->push_back(Finding{
          "R6", f.rel_path, line,
          what + " name must be a snake_case string literal so the series "
                 "is grep-able and exporter-safe"});
      return;
    }
    const std::string& name = T[target].text;
    if (!snake_case(name)) {
      out->push_back(Finding{"R6", f.rel_path, line,
                             what + " name \"" + name +
                                 "\" is not snake_case ([a-z][a-z0-9_]*)"});
    }
  };
  // Pass 1: registry getters / BeginSpan — name is the first argument.
  for (size_t i = 0; i < T.size(); ++i) {
    const Token& t = T[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "GetCounter" && t.text != "GetGauge" &&
        t.text != "GetHistogram" && t.text != "BeginSpan") {
      continue;
    }
    if (!IsPunct(TokenAt(T, i + 1), "(")) continue;
    check_at(i + 2, "`" + t.text + "`");
  }
  // Pass 2: ScopedSpan declarations — name is the second argument. The
  // Python regex required a paren-free first argument; keep that.
  for (size_t i = 0; i < T.size(); ++i) {
    if (!IsIdent(T[i], "ScopedSpan")) continue;
    if (TokenAt(T, i + 1).kind != TokenKind::kIdentifier) continue;
    if (!IsPunct(TokenAt(T, i + 2), "(")) continue;
    size_t j = i + 3;
    bool found_comma = false;
    for (; j < T.size(); ++j) {
      if (IsPunct(T[j], "(") || IsPunct(T[j], ")")) break;
      if (IsPunct(T[j], ",")) {
        found_comma = true;
        break;
      }
    }
    if (!found_comma || j == i + 3) continue;
    check_at(j + 1, "`ScopedSpan`");
  }
}

void CheckR4HeaderGuard(const SourceFile& f, std::vector<Finding>* out) {
  const std::string guard = ExpectedGuard(f.rel_path);
  const Directive* ifndef = nullptr;
  const Directive* define = nullptr;
  for (const Directive& d : f.lex.directives) {
    if (!d.canonical_spelling) continue;
    if (ifndef == nullptr && d.keyword == "ifndef") ifndef = &d;
    if (define == nullptr && d.keyword == "define") define = &d;
  }
  if (ifndef == nullptr || define == nullptr) {
    out->push_back(Finding{"R4", f.rel_path, 1,
                           "missing include guard; expected `#ifndef " +
                               guard + "`"});
    return;
  }
  if (ifndef->argument != guard || define->argument != guard) {
    out->push_back(Finding{"R4", f.rel_path, ifndef->line,
                           "include guard `" + ifndef->argument +
                               "` does not match the canonical style; "
                               "expected `" +
                               guard + "`"});
  }
}

void CheckR4CcPairing(const SourceFile& f, const RepoIndex& index,
                      std::vector<Finding>* out) {
  std::string rel_h = f.rel_path;
  rel_h.replace(rel_h.size() - 3, 3, ".h");
  if (!index.HasFile(rel_h)) {
    out->push_back(Finding{
        "R4", f.rel_path, 0,
        "no sibling header `" + rel_h +
            "`; every src/ .cc pairs with a header that declares its "
            "interface"});
    return;
  }
  const Directive* first = nullptr;
  for (const Directive& d : f.lex.directives) {
    if (d.keyword == "include" && d.quoted && d.canonical_spelling) {
      first = &d;
      break;
    }
  }
  const std::string want = rel_h.substr(4);  // include path is src/-relative
  if (first == nullptr || first->argument != want) {
    const std::string got = first != nullptr ? first->argument : "<none>";
    out->push_back(Finding{"R4", f.rel_path, first != nullptr ? first->line : 1,
                           "first include must be the paired header \"" +
                               want + "\" (got \"" + got + "\")"});
  }
}

void CheckR5Nodiscard(const RepoIndex& index, std::vector<Finding>* out) {
  const std::string status_h = "src/util/status.h";
  const auto it = index.by_path.find(status_h);
  if (it == index.by_path.end()) {
    out->push_back(
        Finding{"R5", status_h, 0, "src/util/status.h is missing"});
    return;
  }
  const std::vector<Token>& T =
      index.files[static_cast<size_t>(it->second)].lex.tokens;
  auto declared_nodiscard = [&](const char* name) {
    for (size_t i = 0; i + 6 < T.size(); ++i) {
      if (IsIdent(T[i], "class") && IsPunct(T[i + 1], "[") &&
          IsPunct(T[i + 2], "[") && IsIdent(T[i + 3], "nodiscard") &&
          IsPunct(T[i + 4], "]") && IsPunct(T[i + 5], "]") &&
          IsIdent(T[i + 6], name)) {
        return true;
      }
    }
    return false;
  };
  if (!declared_nodiscard("Status")) {
    out->push_back(
        Finding{"R5", status_h, 0,
                "`Status` must be declared `class [[nodiscard]] Status`"});
  }
  if (!declared_nodiscard("Result")) {
    out->push_back(
        Finding{"R5", status_h, 0,
                "`Result` must be declared `class [[nodiscard]] Result`"});
  }
}

}  // namespace analyze
}  // namespace vastats
