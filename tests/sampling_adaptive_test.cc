#include "sampling/adaptive.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "stats/descriptive.h"
#include "datagen/source_builder.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(AdaptiveOptionsTest, Validation) {
  AdaptiveSamplingOptions options;
  EXPECT_FALSE(options.Validate().ok());  // no target set
  options.target_ci_length = 1.0;
  EXPECT_TRUE(options.Validate().ok());
  options.initial_size = 2;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.target_ci_length = 1.0;
  options.max_size = options.initial_size - 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.target_relative_length = 0.01;
  options.confidence_level = 1.5;
  EXPECT_FALSE(options.Validate().ok());
}

class AdaptiveSamplingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto mixture = MakeD2(11);
    SyntheticSourceSetOptions options;
    options.num_sources = 30;
    options.num_components = 50;
    options.seed = 12;
    sources_ = BuildSyntheticSourceSet(*mixture, options).value();
    query_ = MakeRangeQuery("sum", AggregateKind::kSum, 0, 50);
    sampler_.emplace(UniSSampler::Create(&sources_, query_).value());
  }

  SourceSet sources_;
  AggregateQuery query_;
  std::optional<UniSSampler> sampler_;
};

TEST_F(AdaptiveSamplingTest, StopsImmediatelyWithLooseTarget) {
  AdaptiveSamplingOptions options;
  options.initial_size = 50;
  options.increment = 50;
  options.max_size = 500;
  options.target_ci_length = 1e9;  // trivially satisfied
  Rng rng(1);
  const auto result = AdaptiveUniSSampling(*sampler_, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->samples.size(), 50u);
  EXPECT_EQ(result->trace.size(), 1u);
}

TEST_F(AdaptiveSamplingTest, GrowsUntilTargetMet) {
  AdaptiveSamplingOptions options;
  options.initial_size = 30;
  options.increment = 30;
  options.max_size = 2000;
  // A target the initial sample will not meet but a larger one will.
  Rng probe_rng(2);
  const auto initial = sampler_->Sample(30, probe_rng);
  ASSERT_TRUE(initial.ok());
  const double spread = ComputeMoments(*initial).SampleStdDev();
  options.target_ci_length = spread / 4.0;
  Rng rng(3);
  const auto result = AdaptiveUniSSampling(*sampler_, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_GT(result->samples.size(), 30u);
  EXPECT_GE(result->trace.size(), 2u);
  // Trace CI lengths must end below the target.
  EXPECT_LE(result->trace.back().mean_ci.Length(), options.target_ci_length);
}

TEST_F(AdaptiveSamplingTest, RespectsBudget) {
  AdaptiveSamplingOptions options;
  options.initial_size = 20;
  options.increment = 20;
  options.max_size = 100;
  options.target_ci_length = 1e-9;  // unreachable
  Rng rng(4);
  const auto result = AdaptiveUniSSampling(*sampler_, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_EQ(result->samples.size(), 100u);
}

TEST_F(AdaptiveSamplingTest, RelativeTargetUsesMeanScale) {
  AdaptiveSamplingOptions options;
  options.initial_size = 50;
  options.increment = 100;
  options.max_size = 3000;
  options.target_relative_length = 0.01;  // 1% of the mean
  Rng rng(5);
  const auto result = AdaptiveUniSSampling(*sampler_, options, rng);
  ASSERT_TRUE(result.ok());
  if (result->satisfied) {
    const double mean = ComputeMoments(result->samples).mean();
    EXPECT_LE(result->trace.back().mean_ci.Length(),
              0.01 * std::fabs(mean) + 1e-12);
  }
}

TEST_F(AdaptiveSamplingTest, RelativeTargetSurvivesZeroCenteredData) {
  // True component values ~ 0, so the viable sum is centered at ~0 and its
  // spread comes entirely from the per-source conflict noise. Pre-fix,
  // target = target_relative_length * |mean| ~ 0 could never be met, so
  // every such run burned straight to max_size; the std-dev floor makes the
  // relative target meaningful again.
  const NormalDistribution centered(0.0, 0.01);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 50;
  source_options.seed = 13;
  SourceSet sources = BuildSyntheticSourceSet(centered, source_options).value();
  const AggregateQuery query = MakeRangeQuery("sum", AggregateKind::kSum, 0, 50);
  const auto sampler = UniSSampler::Create(&sources, query);
  ASSERT_TRUE(sampler.ok());

  AdaptiveSamplingOptions options;
  options.initial_size = 100;
  options.increment = 100;
  options.max_size = 4000;
  options.target_relative_length = 0.5;  // of max(|mean|, std-dev)
  Rng rng(7);
  const auto result = AdaptiveUniSSampling(*sampler, options, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->relative_target_floored);
  EXPECT_TRUE(result->satisfied);
  EXPECT_LT(result->samples.size(), static_cast<size_t>(options.max_size));
}

TEST_F(AdaptiveSamplingTest, TraceSizesIncrease) {
  AdaptiveSamplingOptions options;
  options.initial_size = 20;
  options.increment = 40;
  options.max_size = 180;
  options.target_ci_length = 1e-9;
  Rng rng(6);
  const auto result = AdaptiveUniSSampling(*sampler_, options, rng);
  ASSERT_TRUE(result.ok());
  int prev = 0;
  for (const AdaptiveStep& step : result->trace) {
    EXPECT_GT(step.sample_size, prev);
    prev = step.sample_size;
  }
  EXPECT_EQ(result->trace.back().sample_size, 180);
}

}  // namespace
}  // namespace vastats
