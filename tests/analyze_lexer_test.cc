// Golden tests for the analyzer's token stream: kinds, line numbers,
// comment/string stripping, raw strings, directive capture, and the
// allow-comment parser.

#include "lexer.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace vastats {
namespace analyze {
namespace {

std::vector<std::string> TokenTexts(const LexedSource& lex) {
  std::vector<std::string> texts;
  for (const Token& t : lex.tokens) texts.push_back(t.text);
  return texts;
}

TEST(AnalyzeLexer, GoldenTokenStream) {
  const LexedSource lex = Lex("int F(double x) { return x <= 3 ? 1 : 0; }");
  const std::vector<std::string> want = {"int", "F", "(", "double", "x", ")",
                                         "{",   "return", "x", "<=", "3",
                                         "?",   "1", ":", "0", ";", "}"};
  EXPECT_EQ(TokenTexts(lex), want);
  EXPECT_EQ(lex.tokens[9].kind, TokenKind::kPunct);  // <= fused
  EXPECT_EQ(lex.tokens[10].kind, TokenKind::kNumber);
}

TEST(AnalyzeLexer, FusesMultiCharPunctuators) {
  const LexedSource lex = Lex("a::b->c <<= 1; x >>= 2; p <=> q;");
  const std::vector<std::string> texts = TokenTexts(lex);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "::"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "->"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<<="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), ">>="), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "<=>"), texts.end());
}

TEST(AnalyzeLexer, CommentsAreStrippedButLinesKept) {
  const LexedSource lex = Lex("a\n/* two\nlines */ b\n// tail\nc\n");
  ASSERT_EQ(lex.tokens.size(), 3u);
  EXPECT_EQ(lex.tokens[0].text, "a");
  EXPECT_EQ(lex.tokens[0].line, 1);
  EXPECT_EQ(lex.tokens[1].text, "b");
  EXPECT_EQ(lex.tokens[1].line, 3);  // block comment spans two lines
  EXPECT_EQ(lex.tokens[2].text, "c");
  EXPECT_EQ(lex.tokens[2].line, 5);
  EXPECT_EQ(lex.num_lines, 5);
}

TEST(AnalyzeLexer, StringAndCharLiterals) {
  const LexedSource lex = Lex("auto s = \"a \\\" b\"; char c = '\\n';");
  bool saw_string = false, saw_char = false;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "a \\\" b");  // inner content, escapes kept verbatim
    }
    if (t.kind == TokenKind::kChar) saw_char = true;
  }
  EXPECT_TRUE(saw_string);
  EXPECT_TRUE(saw_char);
}

TEST(AnalyzeLexer, RawStringsDoNotLeakTokens) {
  const LexedSource lex = Lex("auto s = R\"x(throw \"y\" })x\"; int z;");
  bool saw_raw = false;
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "throw");
    if (t.kind == TokenKind::kRawString) {
      saw_raw = true;
      EXPECT_EQ(t.text, "throw \"y\" }");
    }
  }
  EXPECT_TRUE(saw_raw);
}

TEST(AnalyzeLexer, DirectiveCapture) {
  const LexedSource lex =
      Lex("#ifndef GUARD_H_\n#define GUARD_H_\n#include \"util/x.h\"\n"
          "#include <vector>\n  #include \"indented.h\"\n#endif\n");
  ASSERT_EQ(lex.directives.size(), 6u);
  EXPECT_EQ(lex.directives[0].keyword, "ifndef");
  EXPECT_EQ(lex.directives[0].argument, "GUARD_H_");
  EXPECT_TRUE(lex.directives[0].canonical_spelling);
  EXPECT_EQ(lex.directives[2].keyword, "include");
  EXPECT_EQ(lex.directives[2].argument, "util/x.h");
  EXPECT_TRUE(lex.directives[2].quoted);
  EXPECT_EQ(lex.directives[2].line, 3);
  EXPECT_EQ(lex.directives[3].argument, "vector");
  EXPECT_FALSE(lex.directives[3].quoted);
  // Indented `#include` is captured but not canonical (python used ^#).
  EXPECT_FALSE(lex.directives[4].canonical_spelling);
}

TEST(AnalyzeLexer, StructuralViewSkipsDirectiveTokens) {
  const LexedSource lex = Lex("#define BAD {\nint x;\n");
  // The `{` from the macro body must not reach the structural view.
  for (const int idx : lex.structural) {
    EXPECT_FALSE(lex.tokens[static_cast<size_t>(idx)].from_directive);
    EXPECT_NE(lex.tokens[static_cast<size_t>(idx)].text, "{");
  }
  // But the text-level rules still see it in the main stream.
  bool saw_brace = false;
  for (const Token& t : lex.tokens) {
    if (t.text == "{") saw_brace = true;
  }
  EXPECT_TRUE(saw_brace);
}

TEST(AnalyzeLexer, BackslashNewlineContinuation) {
  // A continued #define stays one directive; its body tokens remain in
  // the main stream (the text rules must see macro bodies).
  const LexedSource lex = Lex("#define PI 3.14 \\\n  + 0.0\nint after;\n");
  ASSERT_EQ(lex.directives.size(), 1u);
  EXPECT_EQ(lex.directives[0].keyword, "define");
  EXPECT_EQ(lex.directives[0].argument, "PI");
  bool saw_plus = false;
  for (const Token& t : lex.tokens) {
    if (t.text == "+" && t.from_directive) saw_plus = true;
  }
  EXPECT_TRUE(saw_plus);
  // `after` follows the continued directive on physical line 3.
  const Token& last = lex.tokens[lex.tokens.size() - 2];
  EXPECT_EQ(last.text, "after");
  EXPECT_EQ(last.line, 3);
}

TEST(AnalyzeLexer, AllowedRulesParsing) {
  EXPECT_EQ(AllowedRules("x; // lint-invariants: allow(R1)"),
            (std::vector<std::string>{"R1"}));
  EXPECT_EQ(AllowedRules("x; // lint-invariants: allow(R1, A2)"),
            (std::vector<std::string>{"R1", "A2"}));
  EXPECT_TRUE(AllowedRules("x; // ordinary comment").empty());
  EXPECT_TRUE(AllowedRules("plain code").empty());
}

}  // namespace
}  // namespace analyze
}  // namespace vastats
