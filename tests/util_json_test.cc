#include "util/json_writer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/report.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("name", "vastats");
  json.KeyValue("mean", 92.5);
  json.KeyValue("count", static_cast<int64_t>(400));
  json.KeyValue("ok", true);
  json.Key("missing");
  json.Null();
  json.EndObject();
  EXPECT_EQ(std::move(json).Finish(),
            "{\"name\":\"vastats\",\"mean\":92.5,\"count\":400,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter json;
  json.BeginObject();
  json.Key("intervals");
  json.BeginArray();
  for (int i = 0; i < 2; ++i) {
    json.BeginObject();
    json.KeyValue("lo", static_cast<double>(i));
    json.KeyValue("hi", static_cast<double>(i + 1));
    json.EndObject();
  }
  json.EndArray();
  json.Key("empty");
  json.BeginArray();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(std::move(json).Finish(),
            "{\"intervals\":[{\"lo\":0,\"hi\":1},{\"lo\":1,\"hi\":2}],"
            "\"empty\":[]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("text", "a\"b\\c\nd\te");
  json.EndObject();
  EXPECT_EQ(std::move(json).Finish(),
            "{\"text\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Number(std::nan(""));
  json.Number(INFINITY);
  json.Number(1.5);
  json.EndArray();
  EXPECT_EQ(std::move(json).Finish(), "[null,null,1.5]");
}

TEST(JsonWriterTest, TopLevelArrayOfNumbers) {
  JsonWriter json;
  json.BeginArray();
  json.Number(1.0);
  json.Number(2.0);
  json.EndArray();
  EXPECT_EQ(std::move(json).Finish(), "[1,2]");
}

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sources_ = testing::MakeFigure1Sources();
    ExtractorOptions options;
    options.initial_sample_size = 100;
    options.weight_probes = 5;
    options.kde.rule = BandwidthRule::kSilverman;
    const auto extractor = AnswerStatisticsExtractor::Create(
        &sources_, testing::MakeFigure1Query(AggregateKind::kSum), options);
    stats_.emplace(extractor->Extract().value());
  }

  SourceSet sources_;
  std::optional<AnswerStatistics> stats_;
};

TEST_F(ReportTest, JsonContainsAllSections) {
  const std::string json = AnswerStatisticsToJson(*stats_);
  EXPECT_NE(json.find("\"point_estimates\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"stability\""), std::string::npos);
  EXPECT_NE(json.find("\"sampling\""), std::string::npos);
  // Density/samples omitted by default.
  EXPECT_EQ(json.find("\"density\""), std::string::npos);
  EXPECT_EQ(json.find("\"samples\""), std::string::npos);
  // Balanced braces (coarse well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(ReportTest, JsonDensitySeriesHasRequestedLength) {
  ReportOptions options;
  options.density_points = 16;
  const std::string json = AnswerStatisticsToJson(*stats_, options);
  const size_t f_pos = json.find("\"f\":[");
  ASSERT_NE(f_pos, std::string::npos);
  const size_t end = json.find(']', f_pos);
  const std::string series = json.substr(f_pos, end - f_pos);
  EXPECT_EQ(std::count(series.begin(), series.end(), ','), 15);
}

TEST_F(ReportTest, JsonSamplesIncludedOnRequest) {
  ReportOptions options;
  options.include_samples = true;
  const std::string json = AnswerStatisticsToJson(*stats_, options);
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
}

TEST_F(ReportTest, TextSummaryMentionsKeyNumbers) {
  const std::string text = AnswerStatisticsToText(*stats_);
  EXPECT_NE(text.find("mean:"), std::string::npos);
  EXPECT_NE(text.find("coverage intervals:"), std::string::npos);
  EXPECT_NE(text.find("Stab_L2"), std::string::npos);
}

}  // namespace
}  // namespace vastats
