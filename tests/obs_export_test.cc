#include "obs/export.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_reader.h"

namespace vastats {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(SnakeCaseNameTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsSnakeCaseName("unis_draws_total"));
  EXPECT_TRUE(IsSnakeCaseName("kde"));
  EXPECT_TRUE(IsSnakeCaseName("phase2_seconds"));
  EXPECT_FALSE(IsSnakeCaseName(""));
  EXPECT_FALSE(IsSnakeCaseName("CamelCase"));
  EXPECT_FALSE(IsSnakeCaseName("kebab-case"));
  EXPECT_FALSE(IsSnakeCaseName("dotted.name"));
  EXPECT_FALSE(IsSnakeCaseName("2leading_digit"));
  EXPECT_FALSE(IsSnakeCaseName("_leading_underscore"));
  EXPECT_FALSE(IsSnakeCaseName("has space"));
}

TEST(TraceExportTest, NestedSpansWithAnnotations) {
  Trace trace;
  const int root = trace.BeginSpan("extract");
  const int child = trace.BeginSpan("kde");
  trace.Annotate(child, "grid_size", int64_t{4096});
  trace.Annotate(child, "path", "direct");
  trace.EndSpan(child);
  trace.EndSpan(root);

  const auto json = TraceToJson(trace);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(Contains(*json, "\"name\":\"extract\""));
  EXPECT_TRUE(Contains(*json, "\"children\":["));
  EXPECT_TRUE(Contains(*json, "\"name\":\"kde\""));
  EXPECT_TRUE(Contains(*json, "\"grid_size\":\"4096\""));
  EXPECT_TRUE(Contains(*json, "\"path\":\"direct\""));
  EXPECT_TRUE(Contains(*json, "\"elapsed_seconds\":"));
}

TEST(TraceExportTest, MultipleRootsAreSiblings) {
  Trace trace;
  trace.EndSpan(trace.BeginSpan("first"));
  trace.EndSpan(trace.BeginSpan("second"));
  const auto json = TraceToJson(trace);
  ASSERT_TRUE(json.ok());
  EXPECT_TRUE(Contains(*json, "\"first\""));
  EXPECT_TRUE(Contains(*json, "\"second\""));
}

TEST(TraceExportTest, OpenSpanFailsExport) {
  Trace trace;
  trace.BeginSpan("still_running");
  const auto json = TraceToJson(trace);
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TraceExportTest, NonSnakeCaseSpanNameFailsExport) {
  Trace trace;
  trace.EndSpan(trace.BeginSpan("BadName"));  // lint-invariants: allow(R6)
  const auto json = TraceToJson(trace);
  ASSERT_FALSE(json.ok());
  EXPECT_EQ(json.status().code(), StatusCode::kInvalidArgument);
}

MetricsRegistry& PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("unis_draws_total").Increment(400);
    r->GetGauge("parallel_sampler_threads").Set(4.0);
    constexpr std::array<double, 2> kBounds = {1.0, 2.0};
    Histogram h = r->GetHistogram("visits", kBounds);
    h.Observe(0.5);
    h.Observe(1.5);
    h.Observe(9.0);
    return r;
  }();
  return *registry;
}

TEST(SnapshotExportTest, JsonCarriesAllKinds) {
  const auto json = SnapshotToJson(PopulatedRegistry().Snapshot());
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(Contains(*json, "\"unis_draws_total\":400"));
  EXPECT_TRUE(Contains(*json, "\"parallel_sampler_threads\":4"));
  EXPECT_TRUE(Contains(*json, "\"upper_bounds\":[1,2]"));
  EXPECT_TRUE(Contains(*json, "\"bucket_counts\":[1,1,1]"));
  EXPECT_TRUE(Contains(*json, "\"count\":3"));
  EXPECT_TRUE(Contains(*json, "\"sum\":11"));
}

TEST(SnapshotExportTest, CsvRowsPerMetricField) {
  const auto csv = SnapshotToCsv(PopulatedRegistry().Snapshot());
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  EXPECT_TRUE(Contains(*csv, "kind,name,field,value"));
  EXPECT_TRUE(Contains(*csv, "counter,unis_draws_total,value,400"));
  EXPECT_TRUE(Contains(*csv, "gauge,parallel_sampler_threads,value,4"));
  EXPECT_TRUE(Contains(*csv, "histogram,visits,le_1,1"));
  EXPECT_TRUE(Contains(*csv, "histogram,visits,le_inf,1"));
  EXPECT_TRUE(Contains(*csv, "histogram,visits,count,3"));
}

TEST(SnapshotExportTest, PrometheusExposition) {
  const auto text = SnapshotToPrometheus(PopulatedRegistry().Snapshot());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_TRUE(Contains(*text, "# TYPE unis_draws_total counter\n"
                              "unis_draws_total 400\n"));
  EXPECT_TRUE(Contains(*text, "# TYPE parallel_sampler_threads gauge\n"
                              "parallel_sampler_threads 4\n"));
  // Prometheus histogram buckets are cumulative, ending in +Inf == count.
  EXPECT_TRUE(Contains(*text, "visits_bucket{le=\"1\"} 1\n"));
  EXPECT_TRUE(Contains(*text, "visits_bucket{le=\"2\"} 2\n"));
  EXPECT_TRUE(Contains(*text, "visits_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(Contains(*text, "visits_sum 11\n"));
  EXPECT_TRUE(Contains(*text, "visits_count 3\n"));
}

TEST(SnapshotExportTest, BadMetricNameFailsEveryExporter) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back(CounterSample{"Not-Snake", 1});
  EXPECT_FALSE(SnapshotToJson(snapshot).ok());
  EXPECT_FALSE(SnapshotToCsv(snapshot).ok());
  EXPECT_FALSE(SnapshotToPrometheus(snapshot).ok());
}

TEST(SnapshotExportTest, PrometheusEmitsEstimatedQuantiles) {
  // visits: bounds {1, 2}, observations {0.5, 1.5, 9} -> counts [1, 1, 1].
  // p50 interpolates inside the (1, 2] bucket; p90/p99 land in the overflow
  // bucket and clamp to the last finite edge.
  const auto text = SnapshotToPrometheus(PopulatedRegistry().Snapshot());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_TRUE(Contains(*text, "visits{quantile=\"0.5\"} 1.5\n"));
  EXPECT_TRUE(Contains(*text, "visits{quantile=\"0.9\"} 2\n"));
  EXPECT_TRUE(Contains(*text, "visits{quantile=\"0.99\"} 2\n"));
  // Quantile lines sit between the buckets and the _sum/_count tail.
  EXPECT_LT(text->find("visits_bucket{le=\"+Inf\"}"),
            text->find("visits{quantile=\"0.5\"}"));
  EXPECT_LT(text->find("visits{quantile=\"0.99\"}"), text->find("visits_sum"));
}

TEST(SnapshotExportTest, JsonEmitsEstimatedQuantiles) {
  const auto json = SnapshotToJson(PopulatedRegistry().Snapshot());
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(Contains(*json, "\"p50\":1.5"));
  EXPECT_TRUE(Contains(*json, "\"p90\":2"));
  EXPECT_TRUE(Contains(*json, "\"p99\":2"));
  // The document must survive its own reader.
  EXPECT_TRUE(ParseJson(*json).ok());
}

TEST(SnapshotExportTest, EmptyHistogramQuantilesAreNanAndNull) {
  MetricsRegistry registry;
  constexpr std::array<double, 2> kBounds = {1.0, 2.0};
  registry.GetHistogram("idle_waits", kBounds);  // registered, never observed

  const MetricsSnapshot snapshot = registry.Snapshot();
  const auto prometheus = SnapshotToPrometheus(snapshot);
  ASSERT_TRUE(prometheus.ok()) << prometheus.status().ToString();
  EXPECT_TRUE(Contains(*prometheus, "idle_waits{quantile=\"0.5\"} NaN\n"));
  EXPECT_TRUE(Contains(*prometheus, "idle_waits_count 0\n"));

  // JSON has no NaN literal, so empty-histogram quantiles render as null.
  const auto json = SnapshotToJson(snapshot);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_TRUE(Contains(*json, "\"p50\":null"));
  EXPECT_TRUE(ParseJson(*json).ok());
}

TEST(SnapshotExportTest, PrometheusSpellsNonFiniteValues) {
  MetricsRegistry registry;
  registry.GetGauge("ratio_upper").Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("ratio_lower").Set(
      -std::numeric_limits<double>::infinity());
  registry.GetGauge("ratio_undefined")
      .Set(std::numeric_limits<double>::quiet_NaN());

  const auto text = SnapshotToPrometheus(registry.Snapshot());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_TRUE(Contains(*text, "ratio_upper +Inf\n"));
  EXPECT_TRUE(Contains(*text, "ratio_lower -Inf\n"));
  EXPECT_TRUE(Contains(*text, "ratio_undefined NaN\n"));
}

TEST(ObsExportChromeTraceTest, EmptySnapshotIsAValidTrace) {
  const FlightSnapshot snapshot;
  const auto text = ExportChromeTrace(snapshot);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto doc = ParseJson(*text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->FindArray("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->items.empty());
  const JsonValue* other = doc->FindObject("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->FindNumber("num_tracks")->number_value, 0.0);
  EXPECT_EQ(other->FindNumber("dropped_events")->number_value, 0.0);
  EXPECT_EQ(other->FindNumber("orphaned_events")->number_value, 0.0);
}

TEST(ObsExportChromeTraceTest, RingWrapShowsUpAsDroppedAndOrphaned) {
  FlightRecorderOptions options;
  options.ring_capacity = 16;
  FlightRecorder recorder(options);
  const uint32_t name = recorder.InternName("wrapped_span");
  // 17 begins then 17 ends: the ring keeps only the last 16 ends, so every
  // surviving end lost its begin to the wrap.
  for (int i = 0; i < 17; ++i) recorder.RecordSpanBegin(name);
  for (int i = 0; i < 17; ++i) recorder.RecordSpanEnd(name, 0.001);

  const FlightSnapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 16u);
  EXPECT_EQ(snapshot.TotalDropped(), 18u);

  const auto text = ExportChromeTrace(snapshot);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto doc = ParseJson(*text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* other = doc->FindObject("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->FindNumber("dropped_events")->number_value, 18.0);
  EXPECT_EQ(other->FindNumber("orphaned_events")->number_value, 16.0);
  // No complete events can be reconstructed from orphaned ends.
  const JsonValue* events = doc->FindArray("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const JsonValue& event : events->items) {
    const JsonValue* phase = event.FindString("ph");
    ASSERT_NE(phase, nullptr);
    EXPECT_NE(phase->string_value, "X");
  }
}

TEST(ObsExportChromeTraceTest, TransportEventsRenderAsCounterAndInstants) {
  FlightRecorder recorder{FlightRecorderOptions{}};
  const uint32_t depth = recorder.InternName("transport_in_flight");
  const uint64_t visit = PackTransportVisit(7, 3, 1);
  recorder.Record(FlightEventKind::kTransportPrefetchIssued, depth, 2.0);
  recorder.Record(FlightEventKind::kTransportPrefetchCompleted, depth, 1.0);
  recorder.Record(FlightEventKind::kTransportHedgeFired, depth, 12.5, visit);
  recorder.Record(FlightEventKind::kTransportHedgeWon, depth, 4.25, visit);
  recorder.Record(FlightEventKind::kTransportHedgeCancelled, depth, 9.0,
                  visit);

  const auto text = ExportChromeTrace(recorder.Drain());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto doc = ParseJson(*text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->FindArray("traceEvents");
  ASSERT_NE(events, nullptr);
  // One thread-name metadata event for the track, then the five records.
  ASSERT_EQ(events->items.size(), 6u);
  EXPECT_EQ(events->items[0].FindString("ph")->string_value, "M");

  // The prefetch pair draws one counter track tracing pipeline depth.
  for (size_t i = 1; i < 3; ++i) {
    const JsonValue& event = events->items[i];
    EXPECT_EQ(event.FindString("ph")->string_value, "C");
    EXPECT_EQ(event.FindString("name")->string_value, "transport_in_flight");
    const JsonValue* args = event.FindObject("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->FindNumber("value")->number_value, i == 1 ? 2.0 : 1.0);
  }

  // Hedge lifecycle events are transport-category instants carrying the
  // unpacked (source, epoch, attempt) visit key.
  const char* names[] = {"transport_hedge_fired", "transport_hedge_won",
                         "transport_hedge_cancelled"};
  const char* ms_keys[] = {"cutoff_wall_ms", "wall_ms", "wall_ms"};
  const double ms_values[] = {12.5, 4.25, 9.0};
  for (size_t i = 0; i < 3; ++i) {
    const JsonValue& event = events->items[3 + i];
    EXPECT_EQ(event.FindString("ph")->string_value, "i");
    EXPECT_EQ(event.FindString("cat")->string_value, "transport");
    EXPECT_EQ(event.FindString("name")->string_value, names[i]);
    const JsonValue* args = event.FindObject("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->FindNumber("source")->number_value, 7.0);
    EXPECT_EQ(args->FindNumber("epoch")->number_value, 3.0);
    EXPECT_EQ(args->FindNumber("attempt")->number_value, 1.0);
    EXPECT_EQ(args->FindNumber(ms_keys[i])->number_value, ms_values[i]);
  }
}

TEST(WriteTextFileTest, RoundTripsContent) {
  const std::string path =
      ::testing::TempDir() + "/vastats_obs_export_test.txt";
  const std::string content = "unis_draws_total 400\n";
  ASSERT_TRUE(WriteTextFile(path, content).ok());

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer), file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, read), content);
}

TEST(WriteTextFileTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteTextFile("/nonexistent_dir_zzz/file.txt", "x").ok());
}

}  // namespace
}  // namespace vastats
