#include "core/cio.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/math.h"

namespace vastats {
namespace {

using testing::Bump;
using testing::MakeBumpDensity;

TEST(CioOptionsTest, Validation) {
  CioOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.theta = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.theta = 1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.min_mode_relative_height = 1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.max_modes = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(GreedyCioTest, UnimodalMatchesClassicalInterval) {
  // For a single Gaussian, the theta-coverage solution is the central
  // interval of half-width z_{(1+theta)/2} * sigma.
  const GridDensity density =
      MakeBumpDensity(-6.0, 6.0, 4097, {{1.0, 0.0, 1.0}});
  CioOptions options;
  options.theta = 0.9;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->intervals.size(), 1u);
  EXPECT_GE(result->total_coverage, 0.89);
  const double z = NormalQuantile(0.95).value();
  EXPECT_NEAR(result->intervals[0].lo, -z, 0.15);
  EXPECT_NEAR(result->intervals[0].hi, z, 0.15);
}

TEST(GreedyCioTest, CoverageAtLeastThetaWithTopUp) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4097,
      {{0.5, 8.0, 1.0}, {0.3, 20.0, 1.0}, {0.2, 32.0, 1.0}});
  CioOptions options;
  options.theta = 0.9;
  options.top_up_to_theta = true;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_coverage, 0.9 - 1e-6);
}

TEST(GreedyCioTest, MultiModalReturnsIntervalPerMode) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4097,
      {{0.4, 8.0, 1.0}, {0.35, 20.0, 1.0}, {0.25, 32.0, 1.0}});
  CioOptions options;
  options.theta = 0.9;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 3u);
  // Intervals should be disjoint, sorted, and each should contain a mode.
  for (size_t i = 1; i < result->intervals.size(); ++i) {
    EXPECT_GT(result->intervals[i].lo, result->intervals[i - 1].hi);
  }
  EXPECT_LE(result->intervals[0].lo, 8.0);
  EXPECT_GE(result->intervals[0].hi, 8.0);
}

TEST(GreedyCioTest, ModeContainmentProperty) {
  // Theorem 4.1: the reported intervals contain the largest modes.
  const GridDensity density = MakeBumpDensity(
      0.0, 60.0, 4097,
      {{0.45, 10.0, 1.2}, {0.3, 30.0, 1.0}, {0.25, 50.0, 1.5}});
  CioOptions options;
  options.theta = 0.85;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  const std::vector<Mode> modes = density.FindModes(0.05);
  for (size_t m = 0; m < std::min<size_t>(modes.size(),
                                          result->intervals.size());
       ++m) {
    bool contained = false;
    for (const CoverageInterval& interval : result->intervals) {
      if (modes[m].x >= interval.lo && modes[m].x <= interval.hi) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "mode at " << modes[m].x << " not covered";
  }
}

TEST(GreedyCioTest, IntervalsMuchShorterThanRangeOnPeakedDensity) {
  const GridDensity density = MakeBumpDensity(
      0.0, 100.0, 4097, {{0.6, 20.0, 1.0}, {0.4, 80.0, 1.0}});
  CioOptions options;
  options.theta = 0.9;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->total_length_fraction, 0.25);
  EXPECT_GT(result->total_coverage, 0.5);
}

TEST(GreedyCioTest, PerIntervalCoverageSumsToTotal) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4097, {{0.5, 10.0, 1.0}, {0.5, 30.0, 2.0}});
  CioOptions options;
  options.theta = 0.8;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  double sum = 0.0;
  for (const CoverageInterval& interval : result->intervals) {
    sum += interval.coverage;
    EXPECT_GT(interval.coverage, 0.0);
    EXPECT_LT(interval.lo, interval.hi);
  }
  EXPECT_NEAR(sum, result->total_coverage, 1e-9);
  EXPECT_NEAR(result->TotalLength() / density.range(),
              result->total_length_fraction, 1e-9);
}

TEST(GreedyCioTest, MergesOverlappingBasins) {
  // Two modes so close their theta-level basins overlap: intervals merge.
  const GridDensity density = MakeBumpDensity(
      -10.0, 10.0, 4097, {{0.5, -1.0, 1.0}, {0.5, 1.0, 1.0}});
  CioOptions options;
  options.theta = 0.9;
  options.top_up_to_theta = true;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 1u);
}

TEST(GreedyCioTest, ConstantDensityHasNoModes) {
  const GridDensity density =
      GridDensity::Create(0.0, 1.0, std::vector<double>(128, 1.0)).value();
  CioOptions options;
  EXPECT_EQ(GreedyCio(density, options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SlicingCioTest, ReachesTheta) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4096, {{0.6, 10.0, 1.0}, {0.4, 30.0, 1.5}});
  const auto result = SlicingCio(density, 0.9);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_coverage, 0.9 - 1e-6);
}

TEST(SlicingCioTest, GreedyOverOptimalRatioAtLeastOne) {
  // The slicing baseline picks globally densest slices, so its total length
  // is a lower bound for the greedy solution at equal coverage.
  const GridDensity density = MakeBumpDensity(
      0.0, 80.0, 4097,
      {{0.35, 10.0, 1.0}, {0.25, 30.0, 2.0}, {0.2, 50.0, 0.8},
       {0.2, 70.0, 1.6}});
  CioOptions options;
  options.theta = 0.9;
  options.top_up_to_theta = true;
  const auto greedy = GreedyCio(density, options);
  ASSERT_TRUE(greedy.ok());
  const auto optimal = SlicingCio(density, greedy->total_coverage - 1e-9);
  ASSERT_TRUE(optimal.ok());
  EXPECT_GE(greedy->TotalLength() / optimal->TotalLength(), 1.0 - 0.02);
}

TEST(SlicingCioTest, InputValidation) {
  const GridDensity density =
      MakeBumpDensity(0.0, 10.0, 512, {{1.0, 5.0, 1.0}});
  EXPECT_FALSE(SlicingCio(density, 0.0).ok());
  EXPECT_FALSE(SlicingCio(density, 1.0).ok());
  EXPECT_FALSE(SlicingCio(density, 0.9, 1).ok());
}

TEST(DualCioTest, RespectsLengthBudget) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4097, {{0.5, 10.0, 1.0}, {0.5, 30.0, 1.0}});
  const double budget = 6.0;
  const auto result = DualGreedyCio(density, budget);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->TotalLength(), budget * 1.05);
  EXPECT_GT(result->total_coverage, 0.5);
}

TEST(DualCioTest, MoreBudgetMoreCoverage) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4097, {{0.5, 10.0, 1.0}, {0.5, 30.0, 1.0}});
  const auto small = DualGreedyCio(density, 2.0);
  const auto large = DualGreedyCio(density, 12.0);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->total_coverage, small->total_coverage);
}

TEST(DualCioTest, TinyBudgetCentersOnTallestMode) {
  const GridDensity density = MakeBumpDensity(
      0.0, 40.0, 4097, {{0.7, 10.0, 1.0}, {0.3, 30.0, 1.0}});
  const auto result = DualGreedyCio(density, 0.5);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->intervals.size(), 1u);
  EXPECT_LE(result->intervals[0].lo, 10.0);
  EXPECT_GE(result->intervals[0].hi, 10.0);
  EXPECT_FALSE(DualGreedyCio(density, 0.0).ok());
}

TEST(CioOptionsTest, ProminenceValidation) {
  CioOptions options;
  options.min_mode_prominence = 1.0;
  EXPECT_FALSE(options.Validate().ok());
  options.min_mode_prominence = -0.1;
  EXPECT_FALSE(options.Validate().ok());
  options.min_mode_prominence = 0.5;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(GreedyCioTest, ProminenceFilterIgnoresRipples) {
  // A big hump with a flank ripple: with the prominence filter the greedy
  // must see a single mode and return one interval.
  const GridDensity density = testing::MakeAnalyticDensity(
      -6.0, 6.0, 4097, [](double x) {
        return NormalPdf(x) + 0.008 * NormalPdf((x - 1.2) / 0.05) / 0.05;
      });
  CioOptions options;
  options.theta = 0.8;
  options.min_mode_prominence = 0.2;
  options.top_up_to_theta = true;
  const auto result = GreedyCio(density, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->intervals.size(), 1u);
  EXPECT_GE(result->total_coverage, 0.8 - 1e-6);
}

TEST(CioExpansionTest, SymmetricNeverShorterThanWaterLevel) {
  // The symmetric rule extends each interval to the farther crossing, so at
  // identical descent steps it is a superset of the water-level intervals.
  const GridDensity density = MakeBumpDensity(
      0.0, 60.0, 4097,
      {{0.5, 10.0, 1.0}, {0.3, 30.0, 3.0}, {0.2, 50.0, 0.7}});
  CioOptions water;
  water.theta = 0.85;
  CioOptions symmetric = water;
  symmetric.expansion = CioExpansion::kSymmetric;
  const auto w = GreedyCio(density, water);
  const auto s = GreedyCio(density, symmetric);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s->TotalLength() + 1e-9, w->TotalLength());
  EXPECT_GE(s->total_coverage + 1e-9, w->total_coverage);
}

TEST(CioExpansionTest, EquivalentOnSymmetricDensity) {
  // On a symmetric unimodal density both rules carve the same interval.
  const GridDensity density =
      MakeBumpDensity(-6.0, 6.0, 4097, {{1.0, 0.0, 1.0}});
  CioOptions water;
  water.theta = 0.9;
  CioOptions symmetric = water;
  symmetric.expansion = CioExpansion::kSymmetric;
  const auto w = GreedyCio(density, water);
  const auto s = GreedyCio(density, symmetric);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(w->TotalLength(), s->TotalLength(), 0.05);
}

TEST(CioExpansionTest, SymmetricPaysOnAsymmetricModes) {
  // A mode with a heavy right shoulder: the symmetric interval must include
  // the mirror image of the long side, wasting length on the thin side.
  const GridDensity density = testing::MakeAnalyticDensity(
      0.0, 30.0, 4097, [](double x) {
        // Sharp rise at 10, slow exponential decay to the right, plus a
        // second smaller bump so the descent has a level to stop at.
        double f = 0.0;
        if (x >= 10.0) f += std::exp(-(x - 10.0) / 3.0);
        f += 0.25 * NormalPdf((x - 25.0) / 0.8) / 0.8;
        return f;
      });
  CioOptions water;
  water.theta = 0.7;
  CioOptions symmetric = water;
  symmetric.expansion = CioExpansion::kSymmetric;
  const auto w = GreedyCio(density, water);
  const auto s = GreedyCio(density, symmetric);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->TotalLength(), w->TotalLength() * 1.05);
}

// Property: the greedy total coverage never decreases as theta grows.
class GreedyCioMonotoneInTheta : public ::testing::TestWithParam<double> {};

TEST_P(GreedyCioMonotoneInTheta, CoverageGrowsWithTheta) {
  const GridDensity density = MakeBumpDensity(
      0.0, 60.0, 4097,
      {{0.4, 10.0, 1.0}, {0.35, 30.0, 1.3}, {0.25, 50.0, 0.9}});
  CioOptions lo_options;
  lo_options.theta = GetParam();
  lo_options.top_up_to_theta = true;
  CioOptions hi_options = lo_options;
  hi_options.theta = std::min(0.99, GetParam() + 0.15);
  const auto lo = GreedyCio(density, lo_options);
  const auto hi = GreedyCio(density, hi_options);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_GE(hi->total_coverage + 1e-9, lo->total_coverage);
  EXPECT_GE(hi->TotalLength() + 1e-9, lo->TotalLength());
}

INSTANTIATE_TEST_SUITE_P(Thetas, GreedyCioMonotoneInTheta,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8));

}  // namespace
}  // namespace vastats
