#include "integration/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vastats {
namespace {

TEST(SourceSetIoTest, RoundTripPreservesBindings) {
  const SourceSet original = testing::MakeFigure1Sources();
  const std::string csv = SourceSetToCsv(original);
  const auto restored = SourceSetFromCsv(csv);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->NumSources(), original.NumSources());
  for (int s = 0; s < original.NumSources(); ++s) {
    EXPECT_EQ(restored->source(s).name(), original.source(s).name());
    EXPECT_EQ(restored->source(s).bindings(), original.source(s).bindings());
  }
}

TEST(SourceSetIoTest, HeaderRequired) {
  EXPECT_FALSE(SourceSetFromCsv("a,b,c\nD1,1,2\n").ok());
  EXPECT_FALSE(SourceSetFromCsv("").ok());
  EXPECT_TRUE(SourceSetFromCsv("source,component,value\n").ok());
}

TEST(SourceSetIoTest, MalformedRowsRejected) {
  const std::string header = "source,component,value\n";
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,x,2.0\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,two\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,1.5\nD1,1,2.5\n").ok());
}

TEST(SourceSetIoTest, NonFiniteValuesRejected) {
  const std::string header = "source,component,value\n";
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,nan\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,NaN\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,inf\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,-inf\n").ok());
  EXPECT_FALSE(SourceSetFromCsv(header + "D1,1,1e999\n").ok());
  // Large-but-finite values are still fine.
  EXPECT_TRUE(SourceSetFromCsv(header + "D1,1,1e300\n").ok());
}

TEST(SourceSetIoTest, ParseErrorsCarryRowAndColumnContext) {
  const std::string header = "source,component,value\n";
  const auto bad_value = SourceSetFromCsv(header + "D1,1,5.0\nD2,2,oops\n");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("row 2, column 'value'"),
            std::string::npos)
      << bad_value.status().ToString();
  const auto bad_component = SourceSetFromCsv(header + "D1,x,5.0\n");
  ASSERT_FALSE(bad_component.ok());
  EXPECT_NE(bad_component.status().message().find("row 1, column 'component'"),
            std::string::npos)
      << bad_component.status().ToString();
  const auto bad_fields = SourceSetFromCsv(header + "D1,1\n");
  ASSERT_FALSE(bad_fields.ok());
  EXPECT_NE(bad_fields.status().message().find("row 1 has 2 fields"),
            std::string::npos)
      << bad_fields.status().ToString();
  const auto nan_value = SourceSetFromCsv(header + "D1,1,nan\n");
  ASSERT_FALSE(nan_value.ok());
  EXPECT_NE(nan_value.status().message().find("non-finite"),
            std::string::npos)
      << nan_value.status().ToString();
}

TEST(SourceSetIoTest, EmptySourceNameRejected) {
  const std::string header = "source,component,value\n";
  const auto empty_name = SourceSetFromCsv(header + ",1,5.0\n");
  ASSERT_FALSE(empty_name.ok());
  EXPECT_NE(empty_name.status().message().find("empty source name"),
            std::string::npos)
      << empty_name.status().ToString();
}

TEST(SourceSetIoTest, ScatteredSourceRowsMerge) {
  const auto set = SourceSetFromCsv(
      "source,component,value\nA,1,10\nB,1,11\nA,2,12\n");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->NumSources(), 2);
  EXPECT_EQ(set->source(0).name(), "A");
  EXPECT_EQ(set->source(0).NumBindings(), 2u);
  EXPECT_DOUBLE_EQ(set->source(1).Value(1).value(), 11.0);
}

TEST(SourceSetIoTest, PreservesFullDoublePrecision) {
  SourceSet set;
  DataSource source("precise");
  source.Bind(1, 0.1234567890123456789);
  source.Bind(2, 1e-300);
  source.Bind(3, -98765.4321);
  set.AddSource(std::move(source));
  const auto restored = SourceSetFromCsv(SourceSetToCsv(set));
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->source(0).Value(1).value(),
                   0.1234567890123456789);
  EXPECT_DOUBLE_EQ(restored->source(0).Value(2).value(), 1e-300);
  EXPECT_DOUBLE_EQ(restored->source(0).Value(3).value(), -98765.4321);
}

TEST(SourceSetIoTest, QuotedSourceNames) {
  SourceSet set;
  DataSource source("weather, bc \"official\"");
  source.Bind(1, 5.0);
  set.AddSource(std::move(source));
  const auto restored = SourceSetFromCsv(SourceSetToCsv(set));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->source(0).name(), "weather, bc \"official\"");
}

TEST(SourceSetIoTest, FileRoundTrip) {
  const SourceSet original = testing::MakeFigure1Sources();
  const std::string path = ::testing::TempDir() + "/vastats_sources.csv";
  ASSERT_TRUE(WriteSourceSet(path, original).ok());
  const auto restored = ReadSourceSet(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumSources(), original.NumSources());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadSourceSet("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace vastats
