#include "stats/jackknife.h"

#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(EvaluateMomentStatisticTest, MatchesMoments) {
  const std::vector<double> values = {1, 2, 3, 4, 10};
  const Moments moments = ComputeMoments(values);
  EXPECT_DOUBLE_EQ(
      EvaluateMomentStatistic(MomentStatistic::kMean, values), moments.mean());
  EXPECT_DOUBLE_EQ(EvaluateMomentStatistic(MomentStatistic::kVariance, values),
                   moments.SampleVariance());
  EXPECT_DOUBLE_EQ(EvaluateMomentStatistic(MomentStatistic::kStdDev, values),
                   moments.SampleStdDev());
  EXPECT_DOUBLE_EQ(EvaluateMomentStatistic(MomentStatistic::kSkewness, values),
                   moments.Skewness());
}

TEST(JackknifeGenericTest, LeaveOneOutMeans) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const auto estimates =
      JackknifeGeneric(values, MomentStatisticFn(MomentStatistic::kMean));
  ASSERT_TRUE(estimates.ok());
  ASSERT_EQ(estimates->size(), 3u);
  EXPECT_DOUBLE_EQ((*estimates)[0], 2.5);  // drop 1 -> mean(2,3)
  EXPECT_DOUBLE_EQ((*estimates)[1], 2.0);  // drop 2 -> mean(1,3)
  EXPECT_DOUBLE_EQ((*estimates)[2], 1.5);  // drop 3 -> mean(1,2)
}

TEST(JackknifeGenericTest, RequiresTwoPoints) {
  EXPECT_FALSE(
      JackknifeGeneric(std::vector<double>{1.0},
                       MomentStatisticFn(MomentStatistic::kMean))
          .ok());
}

class JackknifeMomentMatchesGeneric
    : public ::testing::TestWithParam<MomentStatistic> {};

TEST_P(JackknifeMomentMatchesGeneric, FastPathAgreesWithGeneric) {
  const MomentStatistic statistic = GetParam();
  const std::vector<double> values =
      testing::NormalSample(60, 17, 5.0, 2.0);
  const auto fast = JackknifeMoment(values, statistic);
  const auto slow = JackknifeGeneric(values, MomentStatisticFn(statistic));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(fast->size(), slow->size());
  for (size_t i = 0; i < fast->size(); ++i) {
    EXPECT_NEAR((*fast)[i], (*slow)[i], 1e-8) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMomentStatistics, JackknifeMomentMatchesGeneric,
                         ::testing::Values(MomentStatistic::kMean,
                                           MomentStatistic::kVariance,
                                           MomentStatistic::kStdDev,
                                           MomentStatistic::kSkewness));

TEST(JackknifeMomentTest, MinimumSizeEnforced) {
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_FALSE(JackknifeMoment(two, MomentStatistic::kMean).ok());
  const std::vector<double> three = {1.0, 2.0, 3.0};
  EXPECT_TRUE(JackknifeMoment(three, MomentStatistic::kMean).ok());
  EXPECT_FALSE(JackknifeMoment(three, MomentStatistic::kSkewness).ok());
  const std::vector<double> four = {1.0, 2.0, 3.0, 5.0};
  EXPECT_TRUE(JackknifeMoment(four, MomentStatistic::kSkewness).ok());
}

TEST(JackknifeAccelerationTest, ZeroForSymmetricReplicates) {
  const std::vector<double> estimates = {-2, -1, 0, 1, 2};
  EXPECT_NEAR(JackknifeAcceleration(estimates).value(), 0.0, 1e-12);
}

TEST(JackknifeAccelerationTest, ZeroForConstantReplicates) {
  const std::vector<double> estimates(10, 3.0);
  EXPECT_DOUBLE_EQ(JackknifeAcceleration(estimates).value(), 0.0);
}

TEST(JackknifeAccelerationTest, SignTracksSkewOfInfluence) {
  // One very low leave-one-out estimate => (tbar - ti)^3 dominated by a
  // positive cube => positive acceleration.
  const std::vector<double> estimates = {1.0, 1.0, 1.0, 1.0, -10.0};
  EXPECT_GT(JackknifeAcceleration(estimates).value(), 0.0);
  const std::vector<double> mirrored = {-1.0, -1.0, -1.0, -1.0, 10.0};
  EXPECT_LT(JackknifeAcceleration(mirrored).value(), 0.0);
}

TEST(JackknifeAccelerationTest, RequiresTwoReplicates) {
  EXPECT_FALSE(JackknifeAcceleration(std::vector<double>{1.0}).ok());
}

}  // namespace
}  // namespace vastats
