// benchdiff core tests: leaf flattening, timing-path classification, schema
// gating, and the severity ladder (floor skip / improvement info / drift
// warn / regression fail / structural fail).

#include "diff.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json_reader.h"

namespace vastats {
namespace benchdiff {
namespace {

DiffReport MustDiff(const std::string& baseline, const std::string& current,
                    const BenchDiffOptions& options = {}) {
  const auto report = DiffBenchJsonText(baseline, current, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : DiffReport{};
}

std::string WithHeader(const std::string& body) {
  return "{\"schema_version\":1,\"benchmark\":\"micro_pipeline\"" +
         (body.empty() ? std::string() : "," + body) + "}";
}

TEST(BenchDiffTest, FlattenLeavesUsesDottedPathsAndArrayIndices) {
  const auto doc = ParseJson(
      "{\"a\":{\"b\":1,\"c\":[2,{\"d\":3}]},\"e\":null,\"f\":true}");
  ASSERT_TRUE(doc.ok());
  const std::vector<FlatLeaf> leaves = FlattenLeaves(*doc);
  ASSERT_EQ(leaves.size(), 5u);
  EXPECT_EQ(leaves[0].path, "a.b");
  EXPECT_EQ(leaves[1].path, "a.c[0]");
  EXPECT_EQ(leaves[2].path, "a.c[1].d");
  EXPECT_EQ(leaves[3].path, "e");
  EXPECT_EQ(leaves[4].path, "f");
  EXPECT_TRUE(leaves[3].value->is_null());
  EXPECT_TRUE(leaves[4].value->is_bool());
}

TEST(BenchDiffTest, TimingPathClassification) {
  EXPECT_TRUE(IsTimingPath("total_seconds"));
  EXPECT_TRUE(IsTimingPath("phases_seconds.sampling"));
  EXPECT_TRUE(IsTimingPath("pool_comparison.sampling_seconds.pool"));
  EXPECT_TRUE(IsTimingPath("startup_ms"));
  EXPECT_TRUE(IsTimingPath("startup_ms.cold"));
  EXPECT_TRUE(IsTimingPath("latency_ms[3]"));
  EXPECT_FALSE(IsTimingPath("counters.unis_draws_total"));
  EXPECT_FALSE(IsTimingPath("pool_threads"));
  EXPECT_FALSE(IsTimingPath("kde.direct_to_binned_ratio"));
  // "_msg" or "ms_per" must not be mistaken for a millisecond key.
  EXPECT_FALSE(IsTimingPath("status_msg"));
  EXPECT_FALSE(IsTimingPath("items_per_batch"));
}

TEST(BenchDiffTest, IdenticalDocumentsProduceNoFindings) {
  const std::string doc = WithHeader("\"total_seconds\":1.5,\"draws\":400");
  const DiffReport report = MustDiff(doc, doc);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_FALSE(report.HasFail());
  EXPECT_FALSE(report.HasWarn());
  // schema_version, benchmark, total_seconds, draws all compared.
  EXPECT_EQ(report.compared, 4);
  EXPECT_EQ(report.skipped, 0);
}

TEST(BenchDiffTest, SchemaVersionGates) {
  BenchDiffOptions options;
  // Missing on either side.
  auto report = DiffBenchJsonText("{\"a\":1}", WithHeader(""), options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  // Mismatched versions.
  report = DiffBenchJsonText("{\"schema_version\":1}",
                             "{\"schema_version\":2}", options);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("schema_version mismatch"),
            std::string::npos);
  // Different benchmark names.
  report = DiffBenchJsonText(
      "{\"schema_version\":1,\"benchmark\":\"micro_pipeline\"}",
      "{\"schema_version\":1,\"benchmark\":\"chaos\"}", options);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("different benchmarks"),
            std::string::npos);
  // Non-object documents.
  report = DiffBenchJsonText("[1]", "[1]", options);
  ASSERT_FALSE(report.ok());
  // Parse errors name the side.
  report = DiffBenchJsonText("not json", WithHeader(""), options);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("baseline"), std::string::npos);
  report = DiffBenchJsonText(WithHeader(""), "not json", options);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("current"), std::string::npos);
}

TEST(BenchDiffTest, TimingSeverityLadder) {
  const std::string baseline = WithHeader("\"total_seconds\":1.0");
  // 1.2x: inside the warn ratio — silent.
  EXPECT_TRUE(
      MustDiff(baseline, WithHeader("\"total_seconds\":1.2")).findings.empty());
  // 1.6x: warns but does not fail the gate.
  DiffReport report = MustDiff(baseline, WithHeader("\"total_seconds\":1.6"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kWarn);
  EXPECT_EQ(report.findings[0].path, "total_seconds");
  EXPECT_TRUE(report.HasWarn());
  EXPECT_FALSE(report.HasFail());
  // 2.5x: hard regression.
  report = MustDiff(baseline, WithHeader("\"total_seconds\":2.5"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kFail);
  EXPECT_TRUE(report.HasFail());
  // 0.4x: a big improvement is reported as info, never gated.
  report = MustDiff(baseline, WithHeader("\"total_seconds\":0.4"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kInfo);
  EXPECT_FALSE(report.HasFail());
  EXPECT_FALSE(report.HasWarn());
}

TEST(BenchDiffTest, SubFloorTimingsAreSkippedNotGated) {
  // 4ms -> 4.9ms is a 1.2x-of-the-floor jitter band; even a 10x blowup
  // below the floor is scheduler noise, not a regression.
  const DiffReport report =
      MustDiff(WithHeader("\"phases_seconds\":{\"cio\":0.0004}"),
               WithHeader("\"phases_seconds\":{\"cio\":0.004}"));
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.skipped, 1);
  // Crossing the floor re-arms the gate.
  const DiffReport armed =
      MustDiff(WithHeader("\"phases_seconds\":{\"cio\":0.004}"),
               WithHeader("\"phases_seconds\":{\"cio\":0.04}"));
  ASSERT_EQ(armed.findings.size(), 1u);
  EXPECT_EQ(armed.findings[0].severity, DiffSeverity::kFail);
}

TEST(BenchDiffTest, ZeroBaselineTimingWarnsInsteadOfDividing) {
  const DiffReport report = MustDiff(WithHeader("\"total_seconds\":0"),
                                     WithHeader("\"total_seconds\":1.0"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kWarn);
}

TEST(BenchDiffTest, NonTimingNumericDriftOnlyWarns) {
  // pool_threads is machine-dependent; a 16 -> 1 change must not fail CI.
  const DiffReport report = MustDiff(WithHeader("\"pool_threads\":16"),
                                     WithHeader("\"pool_threads\":1"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kWarn);
  EXPECT_NE(report.findings[0].message.find("value drift"), std::string::npos);
  EXPECT_FALSE(report.HasFail());
}

TEST(BenchDiffTest, FlippedFlagFails) {
  const DiffReport report =
      MustDiff(WithHeader("\"bit_identical_across_widths\":true"),
               WithHeader("\"bit_identical_across_widths\":false"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kFail);
  EXPECT_NE(report.findings[0].message.find("flag flipped"),
            std::string::npos);
}

TEST(BenchDiffTest, VanishedMetricFailsNewMetricWarns) {
  const DiffReport report =
      MustDiff(WithHeader("\"counters\":{\"unis_draws_total\":400}"),
               WithHeader("\"counters\":{\"kde_fits_total\":10}"));
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kFail);
  EXPECT_EQ(report.findings[0].path, "counters.unis_draws_total");
  EXPECT_NE(report.findings[0].message.find("disappeared"), std::string::npos);
  EXPECT_EQ(report.findings[1].severity, DiffSeverity::kWarn);
  EXPECT_EQ(report.findings[1].path, "counters.kde_fits_total");
  EXPECT_NE(report.findings[1].message.find("new metric"), std::string::npos);
}

TEST(BenchDiffTest, KindChangeFails) {
  const DiffReport report = MustDiff(WithHeader("\"draws\":400"),
                                     WithHeader("\"draws\":\"400\""));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kFail);
  EXPECT_NE(report.findings[0].message.find("kind changed"),
            std::string::npos);
}

TEST(BenchDiffTest, CustomRatiosAndFloorAreHonored) {
  BenchDiffOptions options;
  options.warn_ratio = 1.1;
  options.fail_ratio = 1.3;
  options.floor_seconds = 0.0;
  const DiffReport report =
      MustDiff(WithHeader("\"total_seconds\":0.001"),
               WithHeader("\"total_seconds\":0.0012"), options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, DiffSeverity::kWarn);
}

TEST(BenchDiffTest, ReportKeepsBaselineDocumentOrder) {
  const DiffReport report = MustDiff(
      WithHeader("\"z_seconds\":1.0,\"a_seconds\":1.0,\"m\":{\"gone\":1}"),
      WithHeader("\"z_seconds\":9.0,\"a_seconds\":9.0"));
  ASSERT_EQ(report.findings.size(), 3u);
  // Findings come back in the baseline's member order, not sorted by path.
  EXPECT_EQ(report.findings[0].path, "z_seconds");
  EXPECT_EQ(report.findings[1].path, "a_seconds");
  EXPECT_EQ(report.findings[2].path, "m.gone");
}

}  // namespace
}  // namespace benchdiff
}  // namespace vastats
