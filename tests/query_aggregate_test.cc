#include "stats/aggregate.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "test_util.h"
#include "util/random.h"

namespace vastats {
namespace {

const std::vector<double> kValues = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};

TEST(AggregateKindTest, ToStringRoundTrips) {
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kCount,
        AggregateKind::kMin, AggregateKind::kMax, AggregateKind::kVariance,
        AggregateKind::kStdDev, AggregateKind::kMedian}) {
    const auto parsed = ParseAggregateKind(AggregateKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_TRUE(ParseAggregateKind("average").ok());
  EXPECT_TRUE(ParseAggregateKind("variance").ok());
  EXPECT_FALSE(ParseAggregateKind("mode").ok());
}

TEST(EvaluateAggregateTest, KnownValues) {
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kSum, kValues).value(),
                   31.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kAverage, kValues).value(),
                   31.0 / 8.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kCount, kValues).value(),
                   8.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kMin, kValues).value(),
                   1.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kMax, kValues).value(),
                   9.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kMedian, kValues).value(),
                   3.5);
}

TEST(EvaluateAggregateTest, VarianceIsPopulationVariance) {
  // Matches the paper's Eq. (1.1)-style averaging over the component set.
  double mean = 0.0;
  for (const double v : kValues) mean += v;
  mean /= static_cast<double>(kValues.size());
  double expected = 0.0;
  for (const double v : kValues) expected += (v - mean) * (v - mean);
  expected /= static_cast<double>(kValues.size());
  EXPECT_NEAR(EvaluateAggregate(AggregateKind::kVariance, kValues).value(),
              expected, 1e-12);
  EXPECT_NEAR(EvaluateAggregate(AggregateKind::kStdDev, kValues).value(),
              std::sqrt(expected), 1e-12);
}

TEST(EvaluateAggregateTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kCount, {}).value(), 0.0);
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kMedian}) {
    EXPECT_FALSE(EvaluateAggregate(kind, {}).ok())
        << AggregateKindToString(kind);
  }
}

TEST(EvaluateAggregateTest, SingleValue) {
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kSum, one).value(), 7.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kAverage, one).value(),
                   7.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kVariance, one).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(EvaluateAggregate(AggregateKind::kMedian, one).value(),
                   7.0);
}

TEST(QuantileAggregateTest, MatchesQuantileFunction) {
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(
        EvaluateAggregate(AggregateKind::kQuantile, values, q).value(),
        Quantile(values, q).value())
        << "q=" << q;
  }
  // Median is the q = 0.5 special case.
  EXPECT_DOUBLE_EQ(
      EvaluateAggregate(AggregateKind::kQuantile, values, 0.5).value(),
      EvaluateAggregate(AggregateKind::kMedian, values).value());
}

TEST(QuantileAggregateTest, PartialMergeWorks) {
  const auto left = NewAggregator(AggregateKind::kQuantile, 0.9);
  const auto right = NewAggregator(AggregateKind::kQuantile, 0.9);
  for (int i = 1; i <= 5; ++i) left->Add(i);
  for (int i = 6; i <= 10; ++i) right->Add(i);
  ASSERT_TRUE(left->Merge(*right).ok());
  const std::vector<double> all = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(left->Finalize().value(), Quantile(all, 0.9).value());
}

TEST(QuantileAggregateTest, ClassifiedAsHolisticAndMonotone) {
  EXPECT_FALSE(IsAlgebraic(AggregateKind::kQuantile));
  EXPECT_TRUE(IsComponentwiseMonotone(AggregateKind::kQuantile));
  EXPECT_EQ(ParseAggregateKind("quantile").value(),
            AggregateKind::kQuantile);
}

TEST(QuantileAggregateTest, QueryValidationChecksQ) {
  AggregateQuery query = MakeRangeQuery("q", AggregateKind::kQuantile, 0, 3);
  query.quantile_q = 0.95;
  EXPECT_TRUE(query.Validate().ok());
  query.quantile_q = 1.5;
  EXPECT_FALSE(query.Validate().ok());
  query.quantile_q = -0.1;
  EXPECT_FALSE(query.Validate().ok());
}

TEST(PartialAggregatorTest, MergeKindMismatchRejected) {
  const auto sum = NewAggregator(AggregateKind::kSum);
  const auto avg = NewAggregator(AggregateKind::kAverage);
  EXPECT_FALSE(sum->Merge(*avg).ok());
  const auto min = NewAggregator(AggregateKind::kMin);
  const auto max = NewAggregator(AggregateKind::kMax);
  EXPECT_FALSE(min->Merge(*max).ok());
}

TEST(PartialAggregatorTest, NewEmptyPreservesKind) {
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kMin, AggregateKind::kMedian}) {
    const auto agg = NewAggregator(kind);
    const auto fresh = agg->NewEmpty();
    EXPECT_EQ(fresh->kind(), kind);
    EXPECT_EQ(fresh->Count(), 0);
  }
}

TEST(PartialAggregatorTest, CountTracksAdds) {
  const auto agg = NewAggregator(AggregateKind::kSum);
  EXPECT_EQ(agg->Count(), 0);
  agg->Add(1.0);
  agg->Add(2.0);
  EXPECT_EQ(agg->Count(), 2);
}

TEST(IsAlgebraicTest, OnlyMedianIsHolistic) {
  EXPECT_TRUE(IsAlgebraic(AggregateKind::kSum));
  EXPECT_TRUE(IsAlgebraic(AggregateKind::kVariance));
  EXPECT_FALSE(IsAlgebraic(AggregateKind::kMedian));
}

TEST(IsComponentwiseMonotoneTest, Classification) {
  EXPECT_TRUE(IsComponentwiseMonotone(AggregateKind::kSum));
  EXPECT_TRUE(IsComponentwiseMonotone(AggregateKind::kAverage));
  EXPECT_TRUE(IsComponentwiseMonotone(AggregateKind::kMedian));
  EXPECT_FALSE(IsComponentwiseMonotone(AggregateKind::kVariance));
  EXPECT_FALSE(IsComponentwiseMonotone(AggregateKind::kStdDev));
}

// Property: for every kind and every split point, partial-merge-finalize
// equals one-shot evaluation (the partial/final decomposition of §4.2).
struct MergeCase {
  AggregateKind kind;
  size_t split;
};

class PartialFinalProperty : public ::testing::TestWithParam<MergeCase> {};

TEST_P(PartialFinalProperty, MergeEqualsBulk) {
  const auto [kind, split] = GetParam();
  Rng rng(99);
  std::vector<double> values(37);
  for (double& v : values) v = rng.Uniform(-10.0, 50.0);

  const auto left = NewAggregator(kind);
  const auto right = NewAggregator(kind);
  for (size_t i = 0; i < values.size(); ++i) {
    (i < split ? left : right)->Add(values[i]);
  }
  ASSERT_TRUE(left->Merge(*right).ok());
  const auto merged = left->Finalize();
  const auto bulk = EvaluateAggregate(kind, values);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(bulk.ok());
  EXPECT_NEAR(merged.value(), bulk.value(), 1e-9)
      << AggregateKindToString(kind) << " split=" << split;
}

std::vector<MergeCase> AllMergeCases() {
  std::vector<MergeCase> cases;
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kCount,
        AggregateKind::kMin, AggregateKind::kMax, AggregateKind::kVariance,
        AggregateKind::kStdDev, AggregateKind::kMedian}) {
    for (const size_t split : {0u, 1u, 18u, 36u, 37u}) {
      cases.push_back({kind, split});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKindsAndSplits, PartialFinalProperty,
                         ::testing::ValuesIn(AllMergeCases()));

}  // namespace
}  // namespace vastats
