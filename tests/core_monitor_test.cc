#include "core/monitor.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "datagen/fault_model.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace vastats {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto d2 = MakeD2(50);
    SyntheticSourceSetOptions options;
    options.num_sources = 30;
    options.num_components = 60;
    options.min_copies = 3;
    options.max_copies = 5;
    options.seed = 51;
    sources_ = BuildSyntheticSourceSet(*d2, options).value();
    base_options_.initial_sample_size = 100;
    base_options_.weight_probes = 5;
  }

  SourceSet sources_;
  ExtractorOptions base_options_;
};

TEST_F(MonitorTest, RegisterRunsInitialExtraction) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  const auto id =
      monitor.Register(MakeRangeQuery("q0", AggregateKind::kSum, 0, 20));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(monitor.NumQueries(), 1);
  const auto stats = monitor.Statistics(*id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->samples.size(), 100u);
  EXPECT_EQ(monitor.RefreshCount(*id).value(), 1);
  EXPECT_TRUE(monitor.Stability(*id).ok());
}

TEST_F(MonitorTest, RegisterRejectsUncoveredQuery) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  AggregateQuery bad = MakeRangeQuery("bad", AggregateKind::kSum, 0, 20);
  bad.components.push_back(9999);
  EXPECT_FALSE(monitor.Register(bad).ok());
  EXPECT_EQ(monitor.NumQueries(), 0);
}

TEST_F(MonitorTest, RefreshOrderIsLeastStableFirst) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  std::vector<QueryId> ids;
  for (int q = 0; q < 4; ++q) {
    ids.push_back(monitor
                      .Register(MakeRangeQuery(std::string("q") + std::to_string(q),
                                               AggregateKind::kSum, q * 15,
                                               15))
                      .value());
  }
  const std::vector<QueryId> order = monitor.RefreshOrder();
  ASSERT_EQ(order.size(), 4u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(monitor.Stability(order[i - 1]).value(),
              monitor.Stability(order[i]).value());
  }
}

TEST_F(MonitorTest, RefreshUpdatesCountAndStatistics) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  const QueryId id =
      monitor.Register(MakeRangeQuery("q", AggregateKind::kSum, 0, 30))
          .value();
  const double first_mean = monitor.Statistics(id)->mean.value;
  ASSERT_TRUE(monitor.Refresh(id).ok());
  EXPECT_EQ(monitor.RefreshCount(id).value(), 2);
  // Different refresh seed => different samples => (almost surely) a
  // slightly different mean estimate.
  EXPECT_NE(monitor.Statistics(id)->mean.value, first_mean);
}

TEST_F(MonitorTest, RefreshLeastStableHonorsBudget) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(monitor
                    .Register(MakeRangeQuery(std::string("q") + std::to_string(q),
                                             AggregateKind::kSum, q * 15,
                                             15))
                    .ok());
  }
  const std::vector<QueryId> expected_order = monitor.RefreshOrder();
  const auto refreshed = monitor.RefreshLeastStable(2);
  ASSERT_TRUE(refreshed.ok());
  ASSERT_EQ(refreshed->size(), 2u);
  EXPECT_EQ((*refreshed)[0], expected_order[0]);
  EXPECT_EQ((*refreshed)[1], expected_order[1]);
  EXPECT_EQ(monitor.RefreshCount(expected_order[0]).value(), 2);
  EXPECT_EQ(monitor.RefreshCount(expected_order[3]).value(), 1);
}

TEST_F(MonitorTest, BrokenCoverageReportedOnRefresh) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  const QueryId id =
      monitor.Register(MakeRangeQuery("q", AggregateKind::kSum, 0, 30))
          .value();
  // Make component 0 uncoverable by unbinding it everywhere.
  for (int s = 0; s < sources_.NumSources(); ++s) {
    sources_.mutable_source(s).Unbind(0);
  }
  EXPECT_FALSE(monitor.Refresh(id).ok());
  // The stale statistics survive the failed refresh.
  EXPECT_TRUE(monitor.Statistics(id).ok());
  EXPECT_EQ(monitor.RefreshCount(id).value(), 1);
  // RefreshLeastStable skips it and reports it as failed.
  std::vector<QueryId> failed;
  const auto refreshed = monitor.RefreshLeastStable(1, &failed);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(refreshed->empty());
  EXPECT_EQ(failed, (std::vector<QueryId>{id}));
}

TEST_F(MonitorTest, RefreshLeastStableReportsFailuresWithoutSpendingBudget) {
  MetricsRegistry metrics;
  ExtractorOptions options = base_options_;
  options.obs.metrics = &metrics;
  ContinuousQueryMonitor monitor(&sources_, options);
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(monitor
                    .Register(MakeRangeQuery(std::string("q") + std::to_string(q),
                                             AggregateKind::kSum, q * 15,
                                             15))
                    .ok());
  }
  // Break coverage for the first three queries (components 5, 20, and 35 fall
  // in their ranges); only q3 over [45, 60) stays refreshable.
  for (int s = 0; s < sources_.NumSources(); ++s) {
    DataSource& source = sources_.mutable_source(s);
    source.Unbind(5);
    source.Unbind(20);
    source.Unbind(35);
  }
  std::vector<QueryId> failed;
  const auto refreshed = monitor.RefreshLeastStable(2, &failed);
  ASSERT_TRUE(refreshed.ok());
  // The three failures must not consume the budget: the walk continues past
  // them and still refreshes the one healthy query.
  ASSERT_EQ(refreshed->size(), 1u);
  EXPECT_EQ((*refreshed)[0], 3);
  std::sort(failed.begin(), failed.end());
  EXPECT_EQ(failed, (std::vector<QueryId>{0, 1, 2}));
  EXPECT_EQ(monitor.RefreshCount(3).value(), 2);
  for (const QueryId id : failed) {
    EXPECT_EQ(monitor.RefreshCount(id).value(), 1);
  }
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.FindCounter("monitor_registrations_total")->value, 4u);
  EXPECT_EQ(snapshot.FindCounter("monitor_refreshes_total")->value, 1u);
  EXPECT_EQ(snapshot.FindCounter("monitor_refresh_failures_total")->value, 3u);
}

TEST_F(MonitorTest, RefreshWithDriftReportsReextractionNoise) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  const QueryId id =
      monitor.Register(MakeRangeQuery("q", AggregateKind::kSum, 0, 30))
          .value();
  const auto report = monitor.RefreshWithDrift(id);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Nothing changed in the sources: the drift is re-sampling noise, within
  // the default tolerance of the stability prediction.
  EXPECT_GT(report->realized_l2, 0.0);
  EXPECT_FALSE(report->anomalous);
  EXPECT_EQ(monitor.RefreshCount(id).value(), 2);
}

TEST_F(MonitorTest, RefreshWithDriftFlagsStructuralChange) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  const QueryId id =
      monitor.Register(MakeRangeQuery("q", AggregateKind::kSum, 0, 30))
          .value();
  // A structural break: every value shifts by +50 (e.g. a unit/semantic
  // regression upstream).
  for (int s = 0; s < sources_.NumSources(); ++s) {
    DataSource& source = sources_.mutable_source(s);
    for (const ComponentId component : source.SortedComponents()) {
      source.Bind(component, source.Value(component).value() + 50.0);
    }
  }
  const auto report = monitor.RefreshWithDrift(id);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->anomalous);
  EXPECT_GT(report->ratio, 3.0);
  // Broken ids still rejected.
  EXPECT_FALSE(monitor.RefreshWithDrift(99).ok());
}

TEST_F(MonitorTest, RepeatedFailuresQuarantineAndDecay) {
  MetricsRegistry metrics;
  ExtractorOptions options = base_options_;
  options.obs.metrics = &metrics;
  ContinuousQueryMonitor monitor(&sources_, options);
  const QueryId broken =
      monitor.Register(MakeRangeQuery("broken", AggregateKind::kSum, 0, 30))
          .value();
  const QueryId healthy =
      monitor
          .Register(MakeRangeQuery("healthy", AggregateKind::kSum, 30, 30))
          .value();
  // Break the first query's coverage; the second stays refreshable.
  std::vector<std::pair<int, double>> saved;
  for (int s = 0; s < sources_.NumSources(); ++s) {
    DataSource& source = sources_.mutable_source(s);
    const auto value = source.Value(5);
    if (value.ok()) {
      saved.emplace_back(s, *value);
      source.Unbind(5);
    }
  }

  // Failure #1 costs no quarantine (it may be transient); failure #2 does.
  EXPECT_FALSE(monitor.Refresh(broken).ok());
  EXPECT_EQ(monitor.ConsecutiveFailures(broken).value(), 1);
  EXPECT_FALSE(monitor.Quarantined(broken).value());
  EXPECT_FALSE(monitor.Refresh(broken).ok());
  EXPECT_EQ(monitor.ConsecutiveFailures(broken).value(), 2);
  EXPECT_TRUE(monitor.Quarantined(broken).value());

  // While quarantined, RefreshLeastStable must skip it entirely: not
  // refreshed, not reported failed, and no budget spent on it.
  std::vector<QueryId> failed;
  const auto round = monitor.RefreshLeastStable(2, &failed);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, (std::vector<QueryId>{healthy}));
  EXPECT_TRUE(failed.empty());
  const MetricsSnapshot snapshot = metrics.Snapshot();
  const auto* skips = snapshot.FindCounter("monitor_quarantine_skips_total");
  ASSERT_NE(skips, nullptr);
  EXPECT_EQ(skips->value, 1u);

  // Restore the bindings: once the quarantine lapses, the query refreshes
  // again and the streak decays instead of resetting.
  for (const auto& [s, value] : saved) {
    sources_.mutable_source(s).Bind(5, value);
  }
  while (monitor.Quarantined(broken).value()) {
    ASSERT_TRUE(monitor.RefreshLeastStable(1).ok());
  }
  ASSERT_TRUE(monitor.Refresh(broken).ok());
  EXPECT_EQ(monitor.ConsecutiveFailures(broken).value(), 1);  // 2 / 2
  EXPECT_FALSE(monitor.Quarantined(broken).value());
}

TEST_F(MonitorTest, QuarantineBackoffGrowsWithStreak) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  const QueryId id =
      monitor.Register(MakeRangeQuery("q", AggregateKind::kSum, 0, 30))
          .value();
  for (int s = 0; s < sources_.NumSources(); ++s) {
    sources_.mutable_source(s).Unbind(5);
  }
  // Four straight failures: streak 4 => quarantine 1 << (4 - 2) = 4 ticks.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(monitor.Refresh(id).ok());
  }
  EXPECT_EQ(monitor.ConsecutiveFailures(id).value(), 4);
  int skipped_rounds = 0;
  while (monitor.Quarantined(id).value()) {
    ASSERT_TRUE(monitor.RefreshLeastStable(1).ok());
    ++skipped_rounds;
    ASSERT_LT(skipped_rounds, 100);
  }
  EXPECT_EQ(skipped_rounds, 4);
}

TEST_F(MonitorTest, DegradedQueriesRefreshBeforeStableCleanOnes) {
  FaultModelOptions fault_options;
  fault_options.transient_failure_prob = 0.25;
  fault_options.seed = 17;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());
  ExtractorOptions options = base_options_;
  FaultToleranceOptions fault;
  fault.model = &*model;
  fault.min_draw_coverage = 0.3;
  options.fault_tolerance = fault;
  ContinuousQueryMonitor monitor(&sources_, options);
  std::vector<QueryId> ids;
  for (int q = 0; q < 3; ++q) {
    ids.push_back(
        monitor
            .Register(MakeRangeQuery(std::string("q") + std::to_string(q),
                                     AggregateKind::kSum, q * 20, 20))
            .value());
  }
  // Every extraction saw transient failures, so every entry is degraded and
  // outranks a clean entry regardless of stability. Within the same rank,
  // the order stays least-stable-first.
  const std::vector<QueryId> order = monitor.RefreshOrder();
  ASSERT_EQ(order.size(), 3u);
  for (const QueryId id : order) {
    EXPECT_TRUE(monitor.Statistics(id)->degradation.degraded);
  }
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(monitor.Stability(order[i - 1]).value(),
              monitor.Stability(order[i]).value());
  }
}

TEST_F(MonitorTest, QualityPriorsDownWeightOpenBreakerSources) {
  FaultModelOptions fault_options;
  fault_options.outage_fraction = 0.2;
  fault_options.outage_epoch = 0;
  fault_options.seed = 97;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());
  ExtractorOptions options = base_options_;
  FaultToleranceOptions fault;
  fault.model = &*model;
  fault.min_draw_coverage = 0.2;
  // Outage breakers must still be open when the session finishes, so the
  // severity snapshot records them as severity 2 (not a half-open probe).
  fault.breaker.cooldown_ms = 1e9;
  options.fault_tolerance = fault;

  ContinuousQueryMonitor healthy(&sources_, base_options_);
  ContinuousQueryMonitor chaotic(&sources_, options);
  const AggregateQuery query = MakeRangeQuery("q", AggregateKind::kSum, 0, 40);
  const QueryId hid = healthy.Register(query).value();
  const QueryId cid = chaotic.Register(query).value();

  const auto base = healthy.QualityPriors(hid);
  const auto adjusted = chaotic.QualityPriors(cid);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(adjusted.ok());
  ASSERT_EQ(base->size(), 30u);
  ASSERT_EQ(adjusted->size(), 30u);

  const auto severity =
      chaotic.Statistics(cid)->degradation.access.breaker_severity;
  BreakerSeverityPriorOptions defaults;
  bool saw_open = false;
  for (size_t s = 0; s < adjusted->size(); ++s) {
    const uint8_t sev = s < severity.size() ? severity[s] : 0;
    if (sev >= 2) {
      saw_open = true;
      EXPECT_LT((*adjusted)[s], (*base)[s]);
      EXPECT_DOUBLE_EQ((*adjusted)[s],
                       std::max(defaults.min_weight,
                                (*base)[s] * defaults.open_factor));
    } else if (sev == 0) {
      EXPECT_DOUBLE_EQ((*adjusted)[s], (*base)[s]);
    }
  }
  EXPECT_TRUE(saw_open);
  // The adjusted priors stay a valid weighted-sampler input.
  EXPECT_TRUE(WeightedUniSSampler::Create(&sources_, query, *adjusted).ok());
}

TEST_F(MonitorTest, InvalidIdsRejected) {
  ContinuousQueryMonitor monitor(&sources_, base_options_);
  EXPECT_FALSE(monitor.Statistics(0).ok());
  EXPECT_FALSE(monitor.Stability(-1).ok());
  EXPECT_FALSE(monitor.Refresh(7).ok());
  EXPECT_FALSE(monitor.RefreshCount(7).ok());
  EXPECT_FALSE(monitor.RefreshLeastStable(0).ok());
}

}  // namespace
}  // namespace vastats
