#include "util/fft.h"

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace vastats {
namespace {

// O(N^2) reference DFT.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& input, bool inverse) {
  const size_t n = input.size();
  std::vector<std::complex<double>> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * kPi * static_cast<double>(j) *
                           static_cast<double>(k) / static_cast<double>(n);
      sum += input[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<std::complex<double>> RandomComplex(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> data(n);
  for (auto& c : data) c = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
  return data;
}

TEST(FftTest, MatchesNaiveDft) {
  for (const size_t n : {4u, 16u, 64u, 256u}) {
    std::vector<std::complex<double>> data = RandomComplex(n, n);
    const std::vector<std::complex<double>> expected =
        NaiveDft(data, /*inverse=*/false);
    ASSERT_TRUE(Fft(data, /*inverse=*/false).ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real(), expected[i].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(data[i].imag(), expected[i].imag(), 1e-9) << "n=" << n;
    }
  }
}

TEST(FftTest, RoundTrip) {
  std::vector<std::complex<double>> data = RandomComplex(128, 99);
  const std::vector<std::complex<double>> original = data;
  ASSERT_TRUE(Fft(data, false).ok());
  ASSERT_TRUE(Fft(data, true).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real() / 128.0, original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag() / 128.0, original[i].imag(), 1e-10);
  }
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(12);
  EXPECT_FALSE(Fft(data, false).ok());
  data.clear();
  EXPECT_FALSE(Fft(data, false).ok());
}

TEST(IsPowerOfTwoTest, Basics) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(4095));
}

std::vector<double> RandomReal(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> data(n);
  for (double& x : data) x = rng.Uniform(-2, 2);
  return data;
}

TEST(DctTest, FastDct2MatchesNaive) {
  for (const size_t n : {8u, 32u, 128u, 512u}) {
    const std::vector<double> input = RandomReal(n, n + 1);
    const std::vector<double> expected = NaiveDct2(input);
    const auto fast = Dct2(input);
    ASSERT_TRUE(fast.ok());
    ASSERT_EQ(fast.value().size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast.value()[i], expected[i], 1e-9) << "n=" << n;
    }
  }
}

TEST(DctTest, FastDct3MatchesNaive) {
  for (const size_t n : {8u, 64u, 256u}) {
    const std::vector<double> input = RandomReal(n, 2 * n + 1);
    const std::vector<double> expected = NaiveDct3(input);
    const auto fast = Dct3(input);
    ASSERT_TRUE(fast.ok());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast.value()[i], expected[i], 1e-9) << "n=" << n;
    }
  }
}

TEST(DctTest, Dct3InvertsDct2UpToScale) {
  const size_t n = 64;
  const std::vector<double> input = RandomReal(n, 7);
  const auto forward = Dct2(input);
  ASSERT_TRUE(forward.ok());
  const auto back = Dct3(forward.value());
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back.value()[i], input[i] * static_cast<double>(n) / 2.0,
                1e-9);
  }
}

TEST(DctTest, NonPowerOfTwoFallsBackToNaive) {
  const std::vector<double> input = RandomReal(12, 5);
  const auto fast = Dct2(input);
  ASSERT_TRUE(fast.ok());
  const std::vector<double> expected = NaiveDct2(input);
  for (size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(fast.value()[i], expected[i], 1e-9);
  }
}

TEST(DctTest, EmptyInputRejected) {
  EXPECT_FALSE(Dct2({}).ok());
  EXPECT_FALSE(Dct3({}).ok());
}

TEST(DctTest, ConstantSignalHasOnlyDcCoefficient) {
  const std::vector<double> input(32, 1.0);
  const auto coeffs = Dct2(input);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_NEAR(coeffs.value()[0], 32.0, 1e-10);
  for (size_t k = 1; k < 32; ++k) {
    EXPECT_NEAR(coeffs.value()[k], 0.0, 1e-10);
  }
}

// ---- DctPlan golden tests: the cached-table fast path against the free
// wrappers (bit-identical by construction) and the O(N^2) references.

TEST(DctPlanTest, BitIdenticalToFreeFunctions) {
  DctPlan plan;
  std::vector<double> plan_out;
  for (const size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    const std::vector<double> input = RandomReal(n, 3 * n + 1);
    ASSERT_TRUE(plan.Dct2(input, plan_out).ok());
    const auto free_fn = Dct2(input);
    ASSERT_TRUE(free_fn.ok());
    // Bitwise equality, not closeness: the plan and the wrappers must run
    // the identical arithmetic (per-thread plans may never perturb results).
    EXPECT_EQ(plan_out, free_fn.value()) << "Dct2 n=" << n;
    ASSERT_TRUE(plan.Dct3(input, plan_out).ok());
    const auto free3 = Dct3(input);
    ASSERT_TRUE(free3.ok());
    EXPECT_EQ(plan_out, free3.value()) << "Dct3 n=" << n;
  }
}

TEST(DctPlanTest, MatchesNaiveReferenceAcrossSizes) {
  DctPlan plan;
  std::vector<double> out;
  for (const size_t n : {16u, 128u, 1024u, 4096u}) {
    const std::vector<double> input = RandomReal(n, 5 * n + 7);
    // Coefficients reach O(sqrt(n)); scale the tolerance with the naive
    // sum's own rounding growth.
    const double tol = 1e-12 * static_cast<double>(n);
    ASSERT_TRUE(plan.Dct2(input, out).ok());
    const std::vector<double> expected2 = NaiveDct2(input);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(out[i], expected2[i], tol) << "Dct2 n=" << n << " i=" << i;
    }
    ASSERT_TRUE(plan.Dct3(input, out).ok());
    const std::vector<double> expected3 = NaiveDct3(input);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(out[i], expected3[i], tol) << "Dct3 n=" << n << " i=" << i;
    }
  }
}

TEST(DctPlanTest, RoundTripAtPipelineGridSize) {
  DctPlan plan;
  const size_t n = 4096;
  const std::vector<double> input = RandomReal(n, 11);
  std::vector<double> forward, back;
  ASSERT_TRUE(plan.Dct2(input, forward).ok());
  ASSERT_TRUE(plan.Dct3(forward, back).ok());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(back[i], input[i] * static_cast<double>(n) / 2.0, 1e-9);
  }
}

TEST(DctPlanTest, CachesTablesPerSize) {
  DctPlan plan;
  std::vector<double> out;
  const std::vector<double> small = RandomReal(256, 1);
  const std::vector<double> large = RandomReal(4096, 2);
  ASSERT_TRUE(plan.Dct2(small, out).ok());
  EXPECT_EQ(plan.cache_misses(), 1u);
  EXPECT_EQ(plan.cache_hits(), 0u);
  // Same size again (either transform direction) hits.
  ASSERT_TRUE(plan.Dct3(small, out).ok());
  ASSERT_TRUE(plan.Dct2(small, out).ok());
  EXPECT_EQ(plan.cache_misses(), 1u);
  EXPECT_EQ(plan.cache_hits(), 2u);
  // A new size builds its own tables without evicting the old ones.
  ASSERT_TRUE(plan.Dct2(large, out).ok());
  EXPECT_EQ(plan.cache_misses(), 2u);
  ASSERT_TRUE(plan.Dct2(small, out).ok());
  ASSERT_TRUE(plan.Dct2(large, out).ok());
  EXPECT_EQ(plan.cache_misses(), 2u);
  EXPECT_EQ(plan.cache_hits(), 4u);
}

TEST(DctPlanTest, NaiveFallbackSizesBypassTheCache) {
  DctPlan plan;
  std::vector<double> out;
  // Non-power-of-two and tiny sizes use the O(N^2) reference directly.
  const std::vector<double> odd = RandomReal(12, 3);
  ASSERT_TRUE(plan.Dct2(odd, out).ok());
  const std::vector<double> expected = NaiveDct2(odd);
  for (size_t i = 0; i < odd.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-9);
  }
  const std::vector<double> tiny = RandomReal(2, 4);
  ASSERT_TRUE(plan.Dct3(tiny, out).ok());
  EXPECT_EQ(plan.cache_misses(), 0u);
  EXPECT_EQ(plan.cache_hits(), 0u);
  std::vector<double> empty_out;
  EXPECT_FALSE(plan.Dct2({}, empty_out).ok());
  EXPECT_FALSE(plan.Dct3({}, empty_out).ok());
}

// One DCT-II of size n through `plan`, asserting success.
void RunSize(DctPlan& plan, size_t n) {
  std::vector<double> input(n, 1.0);
  std::vector<double> output;
  ASSERT_TRUE(plan.Dct2(input, output).ok());
}

TEST(DctPlanLruTest, StaysWithinCapacityAndCountsEvictions) {
  DctPlan plan(/*max_tables=*/2);
  ASSERT_EQ(plan.max_tables(), 2u);
  RunSize(plan, 8);
  RunSize(plan, 16);
  EXPECT_EQ(plan.evictions(), 0u);
  EXPECT_EQ(plan.cache_misses(), 2u);
  // Third size evicts the LRU entry (size 8).
  RunSize(plan, 32);
  EXPECT_EQ(plan.evictions(), 1u);
  // 16 and 32 are resident: hits, no further eviction.
  RunSize(plan, 16);
  RunSize(plan, 32);
  EXPECT_EQ(plan.evictions(), 1u);
  EXPECT_EQ(plan.cache_hits(), 2u);
  // Re-requesting the evicted size rebuilds it (a miss) and evicts again.
  RunSize(plan, 8);
  EXPECT_EQ(plan.evictions(), 2u);
  EXPECT_EQ(plan.cache_misses(), 4u);
}

TEST(DctPlanLruTest, LruVictimIsLeastRecentlyUsed) {
  DctPlan plan(/*max_tables=*/2);
  RunSize(plan, 8);
  RunSize(plan, 16);
  // Touch 8 so 16 becomes the LRU victim.
  RunSize(plan, 8);
  RunSize(plan, 32);  // evicts 16
  EXPECT_EQ(plan.evictions(), 1u);
  const uint64_t hits_before = plan.cache_hits();
  RunSize(plan, 8);  // still resident
  EXPECT_EQ(plan.cache_hits(), hits_before + 1);
  EXPECT_EQ(plan.evictions(), 1u);
}

TEST(DctPlanLruTest, EvictionNeverChangesTransformResults) {
  DctPlan roomy;  // default capacity: no evictions
  DctPlan tight(/*max_tables=*/1);
  Rng rng(0xfeed);
  std::vector<double> input(64);
  for (double& v : input) v = rng.Uniform(-1.0, 1.0);
  std::vector<double> expected;
  ASSERT_TRUE(roomy.Dct2(input, expected).ok());
  // Thrash the tight plan across sizes, then transform the same input: the
  // rebuilt tables must reproduce the exact coefficients.
  RunSize(tight, 8);
  RunSize(tight, 128);
  std::vector<double> actual;
  ASSERT_TRUE(tight.Dct2(input, actual).ok());
  EXPECT_GE(tight.evictions(), 2u);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "coefficient " << i;
  }
}

}  // namespace
}  // namespace vastats
