// util/json_reader tests: value grammar, document-order object members,
// escape handling, duplicate-key rejection, and byte-offset error reporting.

#include "util/json_reader.h"

#include <string>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  const auto null_value = ParseJson("null");
  ASSERT_TRUE(null_value.ok());
  EXPECT_TRUE(null_value->is_null());

  const auto true_value = ParseJson("true");
  ASSERT_TRUE(true_value.ok());
  ASSERT_TRUE(true_value->is_bool());
  EXPECT_TRUE(true_value->bool_value);

  const auto false_value = ParseJson("  false  ");
  ASSERT_TRUE(false_value.ok());
  ASSERT_TRUE(false_value->is_bool());
  EXPECT_FALSE(false_value->bool_value);

  const auto number = ParseJson("-12.5e2");
  ASSERT_TRUE(number.ok());
  ASSERT_TRUE(number->is_number());
  EXPECT_DOUBLE_EQ(number->number_value, -1250.0);

  const auto string = ParseJson("\"micro_pipeline\"");
  ASSERT_TRUE(string.ok());
  ASSERT_TRUE(string->is_string());
  EXPECT_EQ(string->string_value, "micro_pipeline");
}

TEST(JsonReaderTest, ParsesNestedStructuresInDocumentOrder) {
  const auto doc = ParseJson(
      "{\"schema_version\":1,\"phases\":{\"sampling\":0.25,\"kde\":0.5},"
      "\"modes\":[\"serial\",\"pool\"],\"flags\":[true,null]}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  ASSERT_EQ(doc->members.size(), 4u);
  // Members keep document order — the property benchdiff's deterministic
  // walk depends on.
  EXPECT_EQ(doc->members[0].first, "schema_version");
  EXPECT_EQ(doc->members[1].first, "phases");
  EXPECT_EQ(doc->members[2].first, "modes");
  EXPECT_EQ(doc->members[3].first, "flags");

  const JsonValue* phases = doc->FindObject("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->FindNumber("kde"), nullptr);
  EXPECT_DOUBLE_EQ(phases->FindNumber("kde")->number_value, 0.5);
  const JsonValue* modes = doc->FindArray("modes");
  ASSERT_NE(modes, nullptr);
  ASSERT_EQ(modes->items.size(), 2u);
  EXPECT_EQ(modes->items[1].string_value, "pool");
  const JsonValue* flags = doc->FindArray("flags");
  ASSERT_NE(flags, nullptr);
  EXPECT_TRUE(flags->items[0].is_bool());
  EXPECT_TRUE(flags->items[1].is_null());
}

TEST(JsonReaderTest, FindFiltersByKind) {
  const auto doc = ParseJson("{\"name\":\"kde\",\"count\":3}");
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->Find("name"), nullptr);
  EXPECT_EQ(doc->Find("missing"), nullptr);
  EXPECT_NE(doc->FindString("name"), nullptr);
  EXPECT_EQ(doc->FindNumber("name"), nullptr);  // kind mismatch
  EXPECT_NE(doc->FindNumber("count"), nullptr);
  EXPECT_EQ(doc->FindArray("count"), nullptr);
  // Find on a non-object is a quiet nullptr, not an error.
  const auto number = ParseJson("7");
  ASSERT_TRUE(number.ok());
  EXPECT_EQ(number->Find("anything"), nullptr);
}

TEST(JsonReaderTest, DecodesEscapes) {
  const auto doc = ParseJson(R"("tab\there \"quoted\" \\ slash\/ \u0041")");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->string_value, "tab\there \"quoted\" \\ slash/ A");
  // Multi-byte \u escapes come out as UTF-8.
  const auto unicode = ParseJson(R"("\u00e9\u20ac")");
  ASSERT_TRUE(unicode.ok());
  EXPECT_EQ(unicode->string_value, "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonReaderTest, RejectsDuplicateKeys) {
  const auto doc = ParseJson("{\"seconds\":1,\"seconds\":2}");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(doc.status().message().find("seconds"), std::string::npos);
}

TEST(JsonReaderTest, RejectsTrailingGarbageWithOffset) {
  const auto doc = ParseJson("{} extra");
  ASSERT_FALSE(doc.ok());
  // The error points at the first trailing byte.
  EXPECT_NE(doc.status().message().find("byte 3"), std::string::npos);
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "0x10", "+1",
        "\"unterminated", "\"bad escape \\q\"", "[1 2]", "{1: 2}"}) {
    const auto doc = ParseJson(bad);
    EXPECT_FALSE(doc.ok()) << "accepted malformed input: " << bad;
  }
}

TEST(JsonReaderTest, ParsesDeeplyNestedArrays) {
  std::string text;
  constexpr int kDepth = 40;
  for (int i = 0; i < kDepth; ++i) text += '[';
  text += '7';
  for (int i = 0; i < kDepth; ++i) text += ']';
  const auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* value = &*doc;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(value->is_array());
    ASSERT_EQ(value->items.size(), 1u);
    value = &value->items[0];
  }
  EXPECT_DOUBLE_EQ(value->number_value, 7.0);
}

}  // namespace
}  // namespace vastats
