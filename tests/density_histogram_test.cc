#include "density/histogram.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "density/distance.h"
#include "density/kde.h"
#include "test_util.h"
#include "util/math.h"

namespace vastats {
namespace {

TEST(HistogramOptionsTest, Validation) {
  HistogramOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_bins = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.padding_fraction = -1.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ChooseNumBinsTest, SturgesOnPowersOfTwo) {
  HistogramOptions options;
  options.rule = BinRule::kSturges;
  const std::vector<double> samples = testing::NormalSample(256, 1);
  EXPECT_EQ(ChooseNumBins(samples, options).value(), 9);  // log2(256)+1
}

TEST(ChooseNumBinsTest, RulesScaleWithSampleSize) {
  for (const BinRule rule : {BinRule::kScott, BinRule::kFreedmanDiaconis}) {
    HistogramOptions options;
    options.rule = rule;
    const std::vector<double> small = testing::NormalSample(100, 2);
    const std::vector<double> large = testing::NormalSample(10000, 3);
    EXPECT_LT(ChooseNumBins(small, options).value(),
              ChooseNumBins(large, options).value());
  }
}

TEST(ChooseNumBinsTest, FixedCount) {
  HistogramOptions options;
  options.rule = BinRule::kFixedCount;
  options.num_bins = 37;
  const std::vector<double> samples = testing::NormalSample(100, 4);
  EXPECT_EQ(ChooseNumBins(samples, options).value(), 37);
}

TEST(EstimateHistogramTest, UnitMass) {
  const std::vector<double> samples = testing::NormalSample(500, 5, 3.0, 2.0);
  const auto density = EstimateHistogram(samples);
  ASSERT_TRUE(density.ok());
  EXPECT_NEAR(density->TotalMass(), 1.0, 1e-9);
  for (const double v : density->values()) EXPECT_GE(v, 0.0);
}

TEST(EstimateHistogramTest, RecoversGaussianRoughly) {
  const std::vector<double> samples =
      testing::NormalSample(20000, 6, 0.0, 1.0);
  HistogramOptions options;
  options.rule = BinRule::kFixedCount;
  options.num_bins = 64;
  const auto density = EstimateHistogram(samples, options);
  ASSERT_TRUE(density.ok());
  for (const double x : {-1.0, 0.0, 1.0}) {
    EXPECT_NEAR(density->ValueAt(x), NormalPdf(x), 0.05) << "x=" << x;
  }
}

TEST(EstimateHistogramTest, DegenerateInputsRejected) {
  EXPECT_FALSE(EstimateHistogram(std::vector<double>{1.0}).ok());
  EXPECT_FALSE(EstimateHistogram(std::vector<double>(10, 3.0)).ok());
}

TEST(EstimateHistogramTest, NonFiniteInputsRejected) {
  // A NaN would otherwise reach the double->int bucketing cast, which is
  // undefined behavior; the entry points must reject it as InvalidArgument.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  const auto with_nan = EstimateHistogram(std::vector<double>{1.0, nan, 2.0});
  ASSERT_FALSE(with_nan.ok());
  EXPECT_EQ(with_nan.status().code(), StatusCode::kInvalidArgument);
  const auto with_inf = EstimateHistogram(std::vector<double>{1.0, inf, 2.0});
  ASSERT_FALSE(with_inf.ok());
  EXPECT_EQ(with_inf.status().code(), StatusCode::kInvalidArgument);
  HistogramOptions options;
  options.rule = BinRule::kScott;
  EXPECT_FALSE(ChooseNumBins(std::vector<double>{nan, 1.0}, options).ok());
}

TEST(ChooseNumBinsTest, ExtremeRangeToWidthRatioIsCapped) {
  // One far outlier stretches the range while the IQR stays tiny, driving
  // the Freedman-Diaconis width toward zero; range/width then exceeds
  // INT_MAX and the unguarded cast was UB. The rule must cap instead.
  std::vector<double> samples(1000, 0.0);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<double>(i % 7) * 1e-13;
  }
  samples.push_back(1e300);
  HistogramOptions options;
  options.rule = BinRule::kFreedmanDiaconis;
  const auto bins = ChooseNumBins(samples, options);
  ASSERT_TRUE(bins.ok());
  EXPECT_GE(bins.value(), 1);
  EXPECT_LE(bins.value(), 1 << 20);
}

TEST(HistogramVsKdeTest, KdeConvergesFasterOnSmoothDensity) {
  // The §2.2 claim: KDE converges to the true density faster. Compare the
  // integrated squared error against a standard normal at a moderate n.
  auto ise = [](const GridDensity& estimate) {
    double total = 0.0;
    const size_t n = 2001;
    const double lo = -5.0, hi = 5.0;
    const double step = (hi - lo) / static_cast<double>(n - 1);
    double prev = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double x = lo + static_cast<double>(i) * step;
      const double diff = estimate.ValueAt(x) - NormalPdf(x);
      const double sq = diff * diff;
      if (i > 0) total += 0.5 * (prev + sq) * step;
      prev = sq;
    }
    return total;
  };

  double kde_total = 0.0, hist_total = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<double> samples =
        testing::NormalSample(400, 100 + static_cast<uint64_t>(trial));
    KdeOptions kde_options;
    kde_options.rule = BandwidthRule::kSilverman;
    const auto kde = EstimateKde(samples, kde_options);
    const auto hist = EstimateHistogram(samples);
    ASSERT_TRUE(kde.ok());
    ASSERT_TRUE(hist.ok());
    kde_total += ise(kde->density);
    hist_total += ise(*hist);
  }
  EXPECT_LT(kde_total, hist_total);
}

}  // namespace
}  // namespace vastats
