#include "stats/descriptive.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace vastats {
namespace {

TEST(MomentsTest, EmptyIsZero) {
  Moments moments;
  EXPECT_EQ(moments.count(), 0);
  EXPECT_EQ(moments.mean(), 0.0);
  EXPECT_EQ(moments.SampleVariance(), 0.0);
  EXPECT_EQ(moments.Skewness(), 0.0);
}

TEST(MomentsTest, SmallKnownSample) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Moments moments = ComputeMoments(values);
  EXPECT_EQ(moments.count(), 8);
  EXPECT_DOUBLE_EQ(moments.mean(), 5.0);
  EXPECT_DOUBLE_EQ(moments.PopulationVariance(), 4.0);
  EXPECT_NEAR(moments.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(moments.min(), 2.0);
  EXPECT_DOUBLE_EQ(moments.max(), 9.0);
  EXPECT_DOUBLE_EQ(moments.Sum(), 40.0);
}

TEST(MomentsTest, SkewnessSignReflectsAsymmetry) {
  // Right-skewed sample.
  const std::vector<double> right = {1, 1, 1, 2, 2, 3, 10};
  EXPECT_GT(ComputeMoments(right).Skewness(), 0.5);
  // Mirrored sample is left-skewed with opposite sign.
  std::vector<double> left;
  for (const double v : right) left.push_back(-v);
  EXPECT_NEAR(ComputeMoments(left).Skewness(),
              -ComputeMoments(right).Skewness(), 1e-12);
}

TEST(MomentsTest, SkewnessOfSymmetricSampleIsZero) {
  const std::vector<double> values = {-3, -1, 0, 1, 3};
  EXPECT_NEAR(ComputeMoments(values).Skewness(), 0.0, 1e-12);
}

TEST(MomentsTest, ConstantSampleDegenerates) {
  const std::vector<double> values(10, 4.2);
  const Moments moments = ComputeMoments(values);
  EXPECT_DOUBLE_EQ(moments.mean(), 4.2);
  EXPECT_NEAR(moments.SampleVariance(), 0.0, 1e-20);
  EXPECT_EQ(moments.Skewness(), 0.0);
  EXPECT_EQ(moments.ExcessKurtosis(), 0.0);
}

TEST(MomentsTest, MergeMatchesBulkComputation) {
  Rng rng(5);
  std::vector<double> all;
  Moments merged;
  for (int part = 0; part < 5; ++part) {
    Moments chunk;
    const int size = 10 + part * 17;
    for (int i = 0; i < size; ++i) {
      const double x = rng.Normal(part * 3.0, 1.0 + part);
      chunk.Add(x);
      all.push_back(x);
    }
    merged.Merge(chunk);
  }
  const Moments bulk = ComputeMoments(all);
  EXPECT_EQ(merged.count(), bulk.count());
  EXPECT_NEAR(merged.mean(), bulk.mean(), 1e-10);
  EXPECT_NEAR(merged.SampleVariance(), bulk.SampleVariance(), 1e-8);
  EXPECT_NEAR(merged.Skewness(), bulk.Skewness(), 1e-8);
  EXPECT_NEAR(merged.ExcessKurtosis(), bulk.ExcessKurtosis(), 1e-8);
  EXPECT_EQ(merged.min(), bulk.min());
  EXPECT_EQ(merged.max(), bulk.max());
}

TEST(MomentsTest, MergeWithEmptySides) {
  Moments empty;
  Moments filled = ComputeMoments(std::vector<double>{1.0, 2.0, 3.0});
  Moments target;
  target.Merge(filled);  // empty.Merge(filled)
  EXPECT_EQ(target.count(), 3);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
  filled.Merge(empty);  // filled.Merge(empty) is a no-op
  EXPECT_EQ(filled.count(), 3);
}

TEST(MomentsTest, NormalSampleMomentsConverge) {
  const std::vector<double> values =
      testing::NormalSample(100000, 71, 10.0, 3.0);
  const Moments moments = ComputeMoments(values);
  EXPECT_NEAR(moments.mean(), 10.0, 0.05);
  EXPECT_NEAR(moments.SampleStdDev(), 3.0, 0.05);
  EXPECT_NEAR(moments.Skewness(), 0.0, 0.05);
  EXPECT_NEAR(moments.ExcessKurtosis(), 0.0, 0.1);
}

TEST(QuantileTest, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3, 1, 2}).value(), 2.0);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4, 1, 3, 2}).value(), 2.5);
}

TEST(QuantileTest, Type7Interpolation) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0).value(), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5).value(), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0 / 3.0).value(), 2.0);
}

TEST(QuantileTest, SingleElement) {
  const std::vector<double> values = {42.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0).value(), 42.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.7).value(), 42.0);
}

TEST(QuantileTest, RejectsEmptyAndBadQ) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_FALSE(Quantile(values, -0.1).ok());
  EXPECT_FALSE(Quantile(values, 1.1).ok());
}

TEST(QuantileTest, MonotoneInQ) {
  const std::vector<double> values = testing::NormalSample(500, 3);
  double prev = Quantile(values, 0.0).value();
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double current = Quantile(values, q).value();
    EXPECT_GE(current, prev);
    prev = current;
  }
}

TEST(SummarizeTest, AllFieldsFilled) {
  const std::vector<double> values = {1, 2, 3, 4, 100};
  const auto summary = Summarize(values);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->count, 5);
  EXPECT_DOUBLE_EQ(summary->mean, 22.0);
  EXPECT_DOUBLE_EQ(summary->median, 3.0);
  EXPECT_DOUBLE_EQ(summary->min, 1.0);
  EXPECT_DOUBLE_EQ(summary->max, 100.0);
  EXPECT_GT(summary->skewness, 1.0);  // strongly right-skewed
  EXPECT_NEAR(summary->std_dev, std::sqrt(summary->variance), 1e-12);
}

TEST(SummarizeTest, RejectsEmpty) { EXPECT_FALSE(Summarize({}).ok()); }

// Property sweep: merged moments must equal bulk moments for any split.
class MomentsMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MomentsMergeProperty, SplitInvariance) {
  const int split = GetParam();
  const std::vector<double> values = testing::NormalSample(200, 13, 5.0, 2.0);
  Moments left, right;
  for (int i = 0; i < 200; ++i) {
    (i < split ? left : right).Add(values[static_cast<size_t>(i)]);
  }
  left.Merge(right);
  const Moments bulk = ComputeMoments(values);
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-10);
  EXPECT_NEAR(left.SampleVariance(), bulk.SampleVariance(), 1e-9);
  EXPECT_NEAR(left.Skewness(), bulk.Skewness(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Splits, MomentsMergeProperty,
                         ::testing::Values(0, 1, 7, 50, 100, 150, 199, 200));

}  // namespace
}  // namespace vastats
