// Concurrent serving over the real async transport. A server whose base
// options route source visits through AsyncSourceTransport must, under
// contended multi-threaded traffic, return answers bit-identical to the
// same server running on the simulated fault seam — the wire never leaks
// nondeterminism into cached or freshly extracted results. Run under TSan
// this doubles as the data-race suite for transport + scheduler + caches.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "datagen/distributions.h"
#include "datagen/fault_model.h"
#include "datagen/source_builder.h"
#include "serving/server.h"
#include "stats/aggregate_query.h"
#include "transport/async_transport.h"

namespace vastats {
namespace {

using serving::ExtractionServer;
using serving::QueryRequest;
using serving::ServingOptions;

Result<SourceSet> BuildRedundantSources(uint64_t seed) {
  SyntheticSourceSetOptions options;
  options.num_sources = 30;
  options.num_components = 60;
  options.min_copies = 3;
  options.max_copies = 5;
  options.seed = seed;
  const auto d2 = MakeD2(seed + 1);
  return BuildSyntheticSourceSet(*d2, options);
}

// Small pipeline so a chaotic extraction completes in milliseconds while
// still exercising drops, retries, and breaker bookkeeping.
ExtractorOptions FastChaoticBase(const FaultModel* model) {
  ExtractorOptions options;
  options.initial_sample_size = 96;
  options.bootstrap.num_sets = 16;
  options.kde.grid_size = 256;
  options.weight_probes = 5;
  options.seed = 0xfeed5eed;
  options.sampling_threads = 2;
  FaultToleranceOptions fault;
  fault.model = model;
  fault.min_draw_coverage = 0.3;
  options.fault_tolerance = fault;
  return options;
}

void ExpectBitIdentical(const AnswerStatistics& a, const AnswerStatistics& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.mean.value, b.mean.value);
  EXPECT_EQ(a.mean.ci.lo, b.mean.ci.lo);
  EXPECT_EQ(a.mean.ci.hi, b.mean.ci.hi);
  EXPECT_EQ(a.variance.value, b.variance.value);
  EXPECT_EQ(a.stability.stab_l2, b.stability.stab_l2);
  EXPECT_EQ(a.degradation.degraded, b.degradation.degraded);
  EXPECT_EQ(a.degradation.draws_kept, b.degradation.draws_kept);
  EXPECT_EQ(a.degradation.draws_dropped, b.degradation.draws_dropped);
  EXPECT_EQ(a.degradation.access.visits, b.degradation.access.visits);
  EXPECT_EQ(a.degradation.access.retries, b.degradation.access.retries);
  EXPECT_EQ(a.degradation.access.transient_failures,
            b.degradation.access.transient_failures);
  EXPECT_EQ(a.degradation.access.breaker_severity,
            b.degradation.access.breaker_severity);
}

class TransportServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto set = BuildRedundantSources(2027);
    ASSERT_TRUE(set.ok()) << set.status().message();
    sources_ = std::make_unique<SourceSet>(std::move(set).value());
    FaultModelOptions fault_options;
    fault_options.transient_failure_prob = 0.15;
    fault_options.corrupt_value_prob = 0.02;
    fault_options.outage_fraction = 0.2;
    fault_options.outage_epoch = 16;
    fault_options.seed = 4242;
    auto model = FaultModel::Create(sources_->NumSources(), fault_options);
    ASSERT_TRUE(model.ok()) << model.status().message();
    model_ = std::make_unique<FaultModel>(std::move(model).value());
  }

  std::unique_ptr<ExtractionServer> MakeServer(
      transport::AsyncSourceTransport* transport, int max_in_flight) {
    ServingOptions options;
    options.base = FastChaoticBase(model_.get());
    options.base.fault_tolerance->transport = transport;
    options.scheduler.max_in_flight = max_in_flight;
    options.scheduler.max_queue_depth = 32;
    Result<std::unique_ptr<ExtractionServer>> server =
        ExtractionServer::Create(sources_.get(), std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().message();
    return std::move(server.value());
  }

  static std::vector<QueryRequest> MixedRequests() {
    std::vector<QueryRequest> requests;
    QueryRequest a;
    a.query = MakeRangeQuery("low", AggregateKind::kSum, 0, 20);
    QueryRequest b;
    b.query = MakeRangeQuery("mid", AggregateKind::kAverage, 20, 20);
    QueryRequest c;
    c.query = MakeRangeQuery("high", AggregateKind::kSum, 40, 20);
    QueryRequest d;
    d.query = MakeRangeQuery("wide", AggregateKind::kAverage, 0, 60);
    requests.push_back(std::move(a));
    requests.push_back(std::move(b));
    requests.push_back(std::move(c));
    requests.push_back(std::move(d));
    return requests;
  }

  std::unique_ptr<SourceSet> sources_;
  std::unique_ptr<FaultModel> model_;
};

TEST_F(TransportServingTest, ConcurrentTrafficMatchesSimulatedServer) {
  // Ground truth: the same server shape on the simulated seam, serially.
  std::unique_ptr<ExtractionServer> simulated = MakeServer(nullptr, 1);
  const std::vector<QueryRequest> requests = MixedRequests();
  std::vector<AnswerStatistics> expected;
  for (const QueryRequest& request : requests) {
    Result<AnswerStatistics> reference = simulated->Extract(request);
    ASSERT_TRUE(reference.ok()) << reference.status().message();
    ASSERT_TRUE(reference->degradation.degraded);  // chaos actually bites
    expected.push_back(std::move(reference).value());
  }

  transport::TransportOptions transport_options;
  transport_options.endpoint.service_threads = 3;
  auto async = transport::AsyncSourceTransport::Create(
      *sources_, model_.get(), transport_options);
  ASSERT_TRUE(async.ok()) << async.status().message();
  std::unique_ptr<ExtractionServer> transported =
      MakeServer(async->get(), 4);

  // 16 threads hammer 4 distinct queries: cold misses race each other
  // through transport channels, warm hits race the cache.
  constexpr int kThreads = 16;
  std::vector<Result<AnswerStatistics>> got(
      kThreads, Result<AnswerStatistics>(Status::Internal("not run")));
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        got[static_cast<size_t>(t)] =
            transported->Extract(requests[static_cast<size_t>(t) %
                                          requests.size()]);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(got[static_cast<size_t>(t)].ok())
        << got[static_cast<size_t>(t)].status().message();
    ExpectBitIdentical(*got[static_cast<size_t>(t)],
                       expected[static_cast<size_t>(t) % requests.size()]);
  }
  EXPECT_GT(async->get()->counters().requests, 0u);
}

TEST_F(TransportServingTest, BatchedAndRepeatRequestsStayBitIdentical) {
  std::unique_ptr<ExtractionServer> simulated = MakeServer(nullptr, 1);
  transport::TransportOptions transport_options;
  transport_options.endpoint.backend = transport::EndpointBackend::kSocketPair;
  auto async = transport::AsyncSourceTransport::Create(
      *sources_, model_.get(), transport_options);
  ASSERT_TRUE(async.ok()) << async.status().message();
  std::unique_ptr<ExtractionServer> transported = MakeServer(async->get(), 4);

  const std::vector<QueryRequest> requests = MixedRequests();
  std::vector<Result<AnswerStatistics>> batch =
      transported->ExtractBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().message();
    Result<AnswerStatistics> reference = simulated->Extract(requests[i]);
    ASSERT_TRUE(reference.ok()) << reference.status().message();
    ExpectBitIdentical(*batch[i], *reference);
    // A warm repeat over transport serves the identical cached answer.
    Result<AnswerStatistics> warm = transported->Extract(requests[i]);
    ASSERT_TRUE(warm.ok()) << warm.status().message();
    ExpectBitIdentical(*warm, *reference);
  }
}

}  // namespace
}  // namespace vastats
