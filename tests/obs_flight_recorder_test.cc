// Flight-recorder tests: ring-wrap drop accounting, (track, seq) drain
// order, sequence continuity across drains, and — the observability
// contract the exporter leans on — a drained journal whose *structure* is
// identical however wide the pool that produced it was.

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/json_reader.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

TEST(ObsFlightRecorderTest, InternNameIsIdempotent) {
  FlightRecorder recorder;
  const uint32_t a = recorder.InternName("pool_task");
  const uint32_t b = recorder.InternName("pool_batch");
  EXPECT_NE(a, b);
  EXPECT_EQ(recorder.InternName("pool_task"), a);
  EXPECT_EQ(recorder.InternName("pool_batch"), b);
}

TEST(ObsFlightRecorderTest, TinyCapacityIsClampedUp) {
  FlightRecorderOptions options;
  options.ring_capacity = 1;
  FlightRecorder recorder(options);
  EXPECT_GE(recorder.ring_capacity(), 16);
}

TEST(ObsFlightRecorderTest, RingWrapKeepsNewestAndCountsDropped) {
  FlightRecorderOptions options;
  options.ring_capacity = 16;
  FlightRecorder recorder(options);
  const uint32_t name = recorder.InternName("wrap_probe");
  const int total = 40;
  for (int i = 0; i < total; ++i) {
    recorder.RecordCounterSample(name, static_cast<double>(i));
  }

  const FlightSnapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 16u);
  ASSERT_EQ(snapshot.num_tracks, 1);
  ASSERT_EQ(snapshot.dropped_by_track.size(), 1u);
  EXPECT_EQ(snapshot.dropped_by_track[0], 24u);
  EXPECT_EQ(snapshot.TotalDropped(), 24u);
  // The survivors are exactly the newest records, oldest-first.
  for (size_t i = 0; i < snapshot.events.size(); ++i) {
    EXPECT_EQ(snapshot.events[i].seq, 24 + i);
    EXPECT_DOUBLE_EQ(snapshot.events[i].value, 24.0 + static_cast<double>(i));
  }
  EXPECT_EQ(snapshot.NameOf(snapshot.events[0]), "wrap_probe");
}

TEST(ObsFlightRecorderTest, SequenceNumbersSurviveDrain) {
  FlightRecorder recorder;
  const uint32_t name = recorder.InternName("drain_probe");
  recorder.RecordSpanBegin(name);
  recorder.RecordSpanEnd(name, 0.5);
  const FlightSnapshot first = recorder.Drain();
  ASSERT_EQ(first.events.size(), 2u);
  EXPECT_EQ(first.events[0].seq, 0u);
  EXPECT_EQ(first.events[1].seq, 1u);

  recorder.RecordCounterSample(name, 3.0);
  const FlightSnapshot second = recorder.Drain();
  ASSERT_EQ(second.events.size(), 1u);
  // Counters keep climbing: records straddling two drains stay ordered.
  EXPECT_EQ(second.events[0].seq, 2u);
  EXPECT_EQ(second.events[0].track, first.events[0].track);
  EXPECT_EQ(second.TotalDropped(), 0u);
  // Draining clears the rings; nothing is replayed.
  EXPECT_TRUE(recorder.Drain().events.empty());
}

TEST(ObsFlightRecorderTest, DrainMergesTracksInTrackSeqOrder) {
  FlightRecorder recorder;
  const uint32_t name = recorder.InternName("multi_thread_probe");
  recorder.RecordCounterSample(name, 0.0);  // track 0 = this thread
  constexpr int kThreads = 3;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, name] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.RecordCounterSample(name, static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const FlightSnapshot snapshot = recorder.Drain();
  EXPECT_EQ(snapshot.num_tracks, kThreads + 1);
  ASSERT_EQ(snapshot.events.size(),
            static_cast<size_t>(kThreads * kPerThread + 1));
  // Sorted by (track, seq): track ids never decrease, and within a track
  // the sequence increases by exactly one.
  for (size_t i = 1; i < snapshot.events.size(); ++i) {
    const EventRecord& prev = snapshot.events[i - 1];
    const EventRecord& curr = snapshot.events[i];
    if (curr.track == prev.track) {
      EXPECT_EQ(curr.seq, prev.seq + 1);
    } else {
      EXPECT_GT(curr.track, prev.track);
    }
  }
}

TEST(ObsFlightRecorderTest, BreakerTransitionPackingRoundTrips) {
  const uint64_t packed = PackBreakerTransition(7, 0, 1);
  int source = -1;
  int from = -1;
  int to = -1;
  UnpackBreakerTransition(packed, &source, &from, &to);
  EXPECT_EQ(source, 7);
  EXPECT_EQ(from, 0);
  EXPECT_EQ(to, 1);
}

// ---------------------------------------------------------------------------
// Cross-width determinism. The extraction pipeline is bit-identical across
// pool widths; the journal cannot be *byte*-identical (timestamps, track
// count, and the worker that claims each chunk all vary), but its structure
// must be: the same multiset of (kind, name, aux) events, balanced span
// nesting on every track, and per-track sequence ordering.

struct CanonicalEvent {
  int kind;
  std::string name;
  uint64_t aux;

  bool operator==(const CanonicalEvent&) const = default;
  bool operator<(const CanonicalEvent& other) const {
    return std::tie(kind, name, aux) <
           std::tie(other.kind, other.name, other.aux);
  }
};

// Timestamps, values, and track assignment are scheduling-dependent; what
// happened (and, for pool tasks, to which task index) is not.
std::vector<CanonicalEvent> Canonicalize(const FlightSnapshot& snapshot) {
  std::vector<CanonicalEvent> out;
  out.reserve(snapshot.events.size());
  for (const EventRecord& event : snapshot.events) {
    out.push_back(CanonicalEvent{static_cast<int>(event.kind),
                                 std::string(snapshot.NameOf(event)),
                                 event.aux});
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CheckPerTrackInvariants(const FlightSnapshot& snapshot) {
  ASSERT_EQ(snapshot.TotalDropped(), 0u) << "ring wrapped; widen the ring";
  // Per-track: seq ascends and span begin/end pairs balance (spans are
  // scoped objects, so no track ever ends more spans than it began).
  std::vector<uint64_t> last_seq(static_cast<size_t>(snapshot.num_tracks), 0);
  std::vector<int> open_spans(static_cast<size_t>(snapshot.num_tracks), 0);
  std::vector<bool> seen(static_cast<size_t>(snapshot.num_tracks), false);
  for (const EventRecord& event : snapshot.events) {
    ASSERT_LT(event.track, static_cast<uint32_t>(snapshot.num_tracks));
    const size_t track = event.track;
    if (seen[track]) {
      EXPECT_GT(event.seq, last_seq[track]);
    }
    seen[track] = true;
    last_seq[track] = event.seq;
    if (event.kind == FlightEventKind::kSpanBegin) ++open_spans[track];
    if (event.kind == FlightEventKind::kSpanEnd) {
      --open_spans[track];
      EXPECT_GE(open_spans[track], 0)
          << "span end without begin on track " << track;
    }
  }
  for (int track = 0; track < snapshot.num_tracks; ++track) {
    EXPECT_EQ(open_spans[static_cast<size_t>(track)], 0)
        << "unbalanced spans on track " << track;
  }
}

FlightSnapshot RunJournaledExtraction(ThreadPool* pool) {
  FlightRecorder recorder;
  MetricsRegistry metrics;
  ExtractorOptions options;
  options.initial_sample_size = 80;
  options.bootstrap.num_sets = 10;
  options.kde.grid_size = 256;
  options.weight_probes = 5;
  options.sampling_threads = 4;
  options.pool = pool;
  options.obs.metrics = &metrics;
  options.obs.recorder = &recorder;
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto extractor = AnswerStatisticsExtractor::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum), options);
  EXPECT_TRUE(extractor.ok()) << extractor.status().ToString();
  if (extractor.ok()) {
    const auto stats = extractor->Extract();
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  }
  return recorder.Drain();
}

TEST(FlightRecorderDeterminismTest, JournalStructureIsPoolWidthInvariant) {
  ThreadPoolOptions one;
  one.num_threads = 1;
  ThreadPool pool_1(one);
  const FlightSnapshot base = RunJournaledExtraction(&pool_1);
  ASSERT_FALSE(base.events.empty());
  CheckPerTrackInvariants(base);
  const std::vector<CanonicalEvent> expected = Canonicalize(base);

  for (const int width : {4, 16, 0}) {  // 0 = hardware concurrency
    ThreadPoolOptions pool_options;
    pool_options.num_threads = width;
    ThreadPool pool(pool_options);
    const FlightSnapshot snapshot = RunJournaledExtraction(&pool);
    CheckPerTrackInvariants(snapshot);
    EXPECT_EQ(Canonicalize(snapshot), expected)
        << "journal structure diverged at pool width " << width;
  }
}

// ---------------------------------------------------------------------------
// Chrome trace schema: the exported artifact of a real journaled run must
// parse and carry the fields chrome://tracing and Perfetto rely on.

TEST(ObsFlightRecorderTest, ChromeTraceExportOfRealRunMatchesSchema) {
  ThreadPoolOptions pool_options;
  pool_options.num_threads = 2;
  ThreadPool pool(pool_options);
  const FlightSnapshot snapshot = RunJournaledExtraction(&pool);
  ASSERT_FALSE(snapshot.events.empty());

  const auto text = ExportChromeTrace(snapshot);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto doc = ParseJson(*text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const JsonValue* display = doc->FindString("displayTimeUnit");
  ASSERT_NE(display, nullptr);
  EXPECT_EQ(display->string_value, "ms");
  const JsonValue* other = doc->FindObject("otherData");
  ASSERT_NE(other, nullptr);
  ASSERT_NE(other->FindNumber("num_tracks"), nullptr);
  EXPECT_EQ(other->FindNumber("num_tracks")->number_value,
            static_cast<double>(snapshot.num_tracks));
  ASSERT_NE(other->FindNumber("dropped_events"), nullptr);
  EXPECT_EQ(other->FindNumber("dropped_events")->number_value, 0.0);
  ASSERT_NE(other->FindNumber("orphaned_events"), nullptr);

  const JsonValue* events = doc->FindArray("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->items.empty());
  int metadata = 0;
  int queue_waits = 0;
  int task_runs = 0;
  bool main_thread_named = false;
  for (const JsonValue& event : events->items) {
    ASSERT_TRUE(event.is_object());
    const JsonValue* phase = event.FindString("ph");
    ASSERT_NE(phase, nullptr);
    ASSERT_NE(event.FindNumber("pid"), nullptr);
    ASSERT_NE(event.FindNumber("tid"), nullptr);
    const JsonValue* name = event.FindString("name");
    ASSERT_NE(name, nullptr);
    if (phase->string_value == "M") {
      ++metadata;
      EXPECT_EQ(name->string_value, "thread_name");
      const JsonValue* args = event.FindObject("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* thread = args->FindString("name");
      ASSERT_NE(thread, nullptr);
      if (thread->string_value == "main") main_thread_named = true;
      continue;
    }
    ASSERT_NE(event.FindNumber("ts"), nullptr);
    if (phase->string_value == "X") {
      const JsonValue* dur = event.FindNumber("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number_value, 0.0);
      if (name->string_value == "pool_queue_wait") ++queue_waits;
      if (name->string_value == "pool_task_run") ++task_runs;
    }
  }
  EXPECT_EQ(metadata, snapshot.num_tracks);
  EXPECT_TRUE(main_thread_named);
  // The pooled phases must show up as per-worker contention events.
  EXPECT_GT(queue_waits, 0);
  EXPECT_GT(task_runs, 0);
  EXPECT_EQ(queue_waits, task_runs);
}

}  // namespace
}  // namespace vastats
