#include "density/kde.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/math.h"
#include "util/random.h"

namespace vastats {
namespace {

TEST(KdeTest, NonFiniteInputsRejected) {
  // A NaN would otherwise reach LinearBinning's double->size_t cast (UB).
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  KdeOptions options;
  const auto with_nan =
      EstimateKde(std::vector<double>{1.0, nan, 2.0}, options);
  ASSERT_FALSE(with_nan.ok());
  EXPECT_EQ(with_nan.status().code(), StatusCode::kInvalidArgument);
  const auto with_inf =
      EstimateKde(std::vector<double>{1.0, -inf, 2.0}, options);
  ASSERT_FALSE(with_inf.ok());
  EXPECT_EQ(with_inf.status().code(), StatusCode::kInvalidArgument);
}

TEST(KdeOptionsTest, Validation) {
  KdeOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.grid_size = 4;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.bandwidth = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.padding_fraction = -0.5;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.binned = true;
  options.grid_size = 1000;  // not a power of two
  EXPECT_FALSE(options.Validate().ok());
}

TEST(BandwidthTest, SilvermanOnStandardNormal) {
  const std::vector<double> samples = testing::NormalSample(1000, 1);
  const double h = SilvermanBandwidth(samples);
  // 0.9 * ~1.0 * 1000^(-0.2) ~= 0.226.
  EXPECT_NEAR(h, 0.9 * std::pow(1000.0, -0.2), 0.05);
}

TEST(BandwidthTest, ScottOnStandardNormal) {
  const std::vector<double> samples = testing::NormalSample(1000, 2);
  EXPECT_NEAR(ScottBandwidth(samples), 1.06 * std::pow(1000.0, -0.2), 0.05);
}

TEST(BandwidthTest, DegenerateSampleGetsPositiveFloor) {
  const std::vector<double> constant(50, 3.0);
  EXPECT_GT(SilvermanBandwidth(constant), 0.0);
  EXPECT_GT(ScottBandwidth(constant), 0.0);
}

TEST(BandwidthTest, BotevOnGaussianNearRuleOfThumb) {
  const std::vector<double> samples = testing::NormalSample(2000, 3);
  const auto h = BotevBandwidth(samples);
  ASSERT_TRUE(h.ok());
  const double silverman = SilvermanBandwidth(samples);
  // The diffusion selector should land in the same ballpark on Gaussian data.
  EXPECT_GT(h.value(), 0.3 * silverman);
  EXPECT_LT(h.value(), 3.0 * silverman);
}

TEST(BandwidthTest, BotevSmallerOnBimodalData) {
  // Rule-of-thumb bandwidths oversmooth mixtures; the diffusion selector
  // should pick a clearly smaller h than Silverman's sd-driven value.
  const std::vector<double> samples = testing::BimodalSample(2000, 4, 20.0);
  const auto botev = BotevBandwidth(samples);
  ASSERT_TRUE(botev.ok());
  EXPECT_LT(botev.value(), ScottBandwidth(samples));
}

TEST(BandwidthTest, BotevRejectsBadInput) {
  EXPECT_FALSE(BotevBandwidth(std::vector<double>{1.0}).ok());
  const std::vector<double> samples = testing::NormalSample(100, 5);
  EXPECT_FALSE(BotevBandwidth(samples, 100).ok());  // not a power of two
}

TEST(KdeTest, IntegratesToOne) {
  const std::vector<double> samples = testing::NormalSample(400, 6, 5.0, 2.0);
  for (const bool binned : {false, true}) {
    KdeOptions options;
    options.binned = binned;
    const auto kde = EstimateKde(samples, options);
    ASSERT_TRUE(kde.ok()) << "binned=" << binned;
    EXPECT_NEAR(kde->density.TotalMass(), 1.0, 1e-9);
    EXPECT_GT(kde->bandwidth, 0.0);
  }
}

TEST(KdeTest, RecoversGaussianShape) {
  const std::vector<double> samples =
      testing::NormalSample(5000, 7, 10.0, 2.0);
  KdeOptions options;
  const auto kde = EstimateKde(samples, options);
  ASSERT_TRUE(kde.ok());
  // Compare against the true density at a few points.
  for (const double x : {6.0, 8.0, 10.0, 12.0, 14.0}) {
    const double truth = NormalPdf((x - 10.0) / 2.0) / 2.0;
    EXPECT_NEAR(kde->density.ValueAt(x), truth, 0.02) << "x=" << x;
  }
}

TEST(KdeTest, DirectAndBinnedAgree) {
  const std::vector<double> samples = testing::BimodalSample(800, 8);
  KdeOptions direct;
  direct.rule = BandwidthRule::kSilverman;
  KdeOptions binned = direct;
  binned.binned = true;
  const auto kde_direct = EstimateKde(samples, direct);
  const auto kde_binned = EstimateKde(samples, binned);
  ASSERT_TRUE(kde_direct.ok());
  ASSERT_TRUE(kde_binned.ok());
  double max_diff = 0.0;
  for (double x = -2.0; x <= 12.0; x += 0.05) {
    max_diff = std::max(max_diff,
                        std::fabs(kde_direct->density.ValueAt(x) -
                                  kde_binned->density.ValueAt(x)));
  }
  // Peak height here is ~0.2; binning error should be far below it.
  EXPECT_LT(max_diff, 0.01);
}

TEST(KdeTest, SeparatesWellSpacedModes) {
  const std::vector<double> samples = testing::BimodalSample(2000, 9, 10.0);
  KdeOptions options;
  const auto kde = EstimateKde(samples, options);
  ASSERT_TRUE(kde.ok());
  const std::vector<Mode> modes = kde->density.FindModes(0.2);
  ASSERT_EQ(modes.size(), 2u);
  const double lo = std::min(modes[0].x, modes[1].x);
  const double hi = std::max(modes[0].x, modes[1].x);
  EXPECT_NEAR(lo, 0.0, 0.5);
  EXPECT_NEAR(hi, 10.0, 0.5);
}

TEST(KdeTest, ManualBandwidthOverridesRule) {
  const std::vector<double> samples = testing::NormalSample(200, 10);
  KdeOptions options;
  options.bandwidth = 0.5;
  const auto kde = EstimateKde(samples, options);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->bandwidth, 0.5);
}

TEST(KdeTest, FixedRangeIsHonored) {
  const std::vector<double> samples = testing::NormalSample(200, 11, 5.0);
  KdeOptions options;
  options.x_min = -20.0;
  options.x_max = 40.0;
  const auto kde = EstimateKde(samples, options);
  ASSERT_TRUE(kde.ok());
  EXPECT_DOUBLE_EQ(kde->density.x_min(), -20.0);
  EXPECT_DOUBLE_EQ(kde->density.x_max(), 40.0);
  EXPECT_NEAR(kde->density.TotalMass(), 1.0, 1e-9);
}

TEST(KdeTest, RejectsTinySamples) {
  EXPECT_FALSE(EstimateKde(std::vector<double>{1.0}, KdeOptions{}).ok());
}

TEST(KdeTest, LargerBandwidthSmoothsAwayModes) {
  const std::vector<double> samples = testing::BimodalSample(1000, 12, 6.0);
  KdeOptions narrow;
  narrow.bandwidth = 0.3;
  KdeOptions wide;
  wide.bandwidth = 5.0;
  const auto kde_narrow = EstimateKde(samples, narrow);
  const auto kde_wide = EstimateKde(samples, wide);
  ASSERT_TRUE(kde_narrow.ok());
  ASSERT_TRUE(kde_wide.ok());
  EXPECT_GE(kde_narrow->density.FindModes(0.1).size(), 2u);
  EXPECT_EQ(kde_wide->density.FindModes(0.1).size(), 1u);
}

TEST(KdeTest, BandwidthFlooredToGridResolution) {
  // Near-discrete answer sets drive plug-in bandwidths towards zero; the
  // estimator clamps h to ~1.5 grid cells so the density stays resolvable.
  std::vector<double> atoms;
  for (int i = 0; i < 400; ++i) {
    atoms.push_back(i % 3 == 0 ? 89.0 : (i % 3 == 1 ? 93.0 : 96.0));
  }
  KdeOptions options;  // Botev
  const auto kde = EstimateKde(atoms, options);
  ASSERT_TRUE(kde.ok());
  const double min_h = 1.5 * kde->density.range() /
                       static_cast<double>(kde->density.size() - 1);
  EXPECT_GE(kde->bandwidth, min_h * (1.0 - 1e-12));
  EXPECT_NEAR(kde->density.TotalMass(), 1.0, 1e-9);
  // Three resolvable modes at the atoms.
  const std::vector<Mode> modes = kde->density.FindModes(0.1);
  ASSERT_EQ(modes.size(), 3u);
}

// ---- Binned-vs-direct agreement: the production DCT path against the
// O(n * grid) direct-summation oracle, per sample shape. Both paths see
// identical options apart from the `binned` flag, so they land on the same
// grid and (same selector input) the same bandwidth. Two error regimes on
// the 4096-point default grid:
//  * h spanning many grid cells (the smooth shapes): the paths differ by
//    linear-binning error plus the boundary treatment (reflective DCT vs.
//    truncate-and-normalize), together under 0.5% of the peak in L_inf and
//    5e-3 in L1;
//  * h at the 1.5-cell clamp (near-discrete data): binning resolution is
//    no longer negligible against the kernel width, and the documented
//    bound loosens to 5% of the peak / 0.05 in L1.
struct AgreementCase {
  const char* name;
  std::vector<double> (*make)(uint64_t seed);
  double linf_frac_of_peak;
  double l1;
};

class KdeBinnedDirectAgreement
    : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(KdeBinnedDirectAgreement, PathsAgreeWithinBinningError) {
  const std::vector<double> samples = GetParam().make(1234);
  KdeOptions direct_options;  // Botev rule, 4096 grid
  direct_options.binned = false;
  KdeOptions binned_options = direct_options;
  binned_options.binned = true;
  const auto direct = EstimateKde(samples, direct_options);
  const auto binned = EstimateKde(samples, binned_options);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(binned.ok());
  // Same selector input => same bandwidth, same grid.
  EXPECT_DOUBLE_EQ(direct->bandwidth, binned->bandwidth);
  ASSERT_EQ(direct->density.size(), binned->density.size());
  ASSERT_DOUBLE_EQ(direct->density.x_min(), binned->density.x_min());
  ASSERT_DOUBLE_EQ(direct->density.x_max(), binned->density.x_max());
  const double dx = direct->density.range() /
                    static_cast<double>(direct->density.size() - 1);
  double peak = 0.0, l_inf = 0.0, l1 = 0.0;
  for (size_t i = 0; i < direct->density.size(); ++i) {
    const double a = direct->density.values()[i];
    const double b = binned->density.values()[i];
    peak = std::max(peak, a);
    l_inf = std::max(l_inf, std::fabs(a - b));
    l1 += std::fabs(a - b) * dx;
  }
  EXPECT_LT(l_inf, GetParam().linf_frac_of_peak * peak) << GetParam().name;
  EXPECT_LT(l1, GetParam().l1) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdeBinnedDirectAgreement,
    ::testing::Values(
        AgreementCase{"unimodal", testing::UnimodalSample, 5e-3, 5e-3},
        AgreementCase{"bimodal", testing::BimodalAgreementSample, 5e-3, 5e-3},
        AgreementCase{"heavy_tailed", testing::HeavyTailSample, 5e-3, 5e-3},
        AgreementCase{"near_discrete", testing::NearDiscreteSample, 0.05, 0.05}),
    [](const ::testing::TestParamInfo<AgreementCase>& info) {
      return info.param.name;
    });

// Property sweep: unit mass and non-negativity across sample shapes.
struct KdeCase {
  const char* name;
  int n;
  uint64_t seed;
  bool binned;
};

class KdeMassProperty : public ::testing::TestWithParam<KdeCase> {};

TEST_P(KdeMassProperty, UnitMassNonNegative) {
  const KdeCase& test_case = GetParam();
  Rng rng(test_case.seed);
  std::vector<double> samples(static_cast<size_t>(test_case.n));
  for (double& v : samples) {
    v = rng.Bernoulli(0.3) ? rng.Exponential(0.2) : rng.Normal(-5.0, 0.5);
  }
  KdeOptions options;
  options.binned = test_case.binned;
  const auto kde = EstimateKde(samples, options);
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->density.TotalMass(), 1.0, 1e-9);
  for (const double v : kde->density.values()) EXPECT_GE(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdeMassProperty,
    ::testing::Values(KdeCase{"direct_small", 20, 1, false},
                      KdeCase{"direct_large", 2000, 2, false},
                      KdeCase{"binned_small", 20, 3, true},
                      KdeCase{"binned_large", 2000, 4, true}),
    [](const ::testing::TestParamInfo<KdeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace vastats
