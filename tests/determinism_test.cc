// Cross-cutting determinism guarantees: everything seeded must be
// bit-identical across repeated runs. The experiment harnesses (and anyone
// debugging a statistical pipeline) depend on this, so it is pinned for
// every randomized layer of the library.

#include <string>

#include <gtest/gtest.h>

#include "test_util.h"
#include "vastats/vastats.h"

namespace vastats {
namespace {

TEST(DeterminismTest, SyntheticWorkloadsAreBitIdentical) {
  for (int run = 0; run < 2; ++run) {
    // Build twice inside the loop so no state leaks between builds.
    const auto mixture_a = MakeD2(42);
    const auto mixture_b = MakeD2(42);
    SyntheticSourceSetOptions options;
    options.num_sources = 25;
    options.num_components = 50;
    options.seed = 43;
    const auto set_a = BuildSyntheticSourceSet(*mixture_a, options);
    const auto set_b = BuildSyntheticSourceSet(*mixture_b, options);
    ASSERT_TRUE(set_a.ok());
    ASSERT_TRUE(set_b.ok());
    for (int s = 0; s < 25; ++s) {
      ASSERT_EQ(set_a->source(s).bindings(), set_b->source(s).bindings());
    }
  }
}

TEST(DeterminismTest, ClimateArchiveIsBitIdentical) {
  ClimateArchiveOptions options;
  options.num_stations = 60;
  options.num_districts = 6;
  options.daily_month = 6;
  options.seed = 99;
  const auto a = ClimateArchive::Build(options);
  const auto b = ClimateArchive::Build(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto sources_a = a->MakeSourceSet();
  const auto sources_b = b->MakeSourceSet();
  for (int s = 0; s < 60; ++s) {
    ASSERT_EQ(sources_a->source(s).bindings(),
              sources_b->source(s).bindings());
  }
  EXPECT_EQ(a->DailyTruth(3, 15).value(), b->DailyTruth(3, 15).value());
}

TEST(DeterminismTest, FullPipelineIsBitIdentical) {
  SourceSet sources = testing::MakeFigure1Sources();
  ExtractorOptions options;
  options.initial_sample_size = 120;
  options.weight_probes = 5;
  options.seed = 7;
  options.kde.rule = BandwidthRule::kSilverman;
  const auto run = [&]() {
    return AnswerStatisticsExtractor::Create(
               &sources, testing::MakeFigure1Query(AggregateKind::kSum),
               options)
        ->Extract()
        .value();
  };
  const AnswerStatistics a = run();
  const AnswerStatistics b = run();
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.mean.value, b.mean.value);
  EXPECT_EQ(a.mean.ci.lo, b.mean.ci.lo);
  EXPECT_EQ(a.variance.ci.hi, b.variance.ci.hi);
  EXPECT_EQ(a.stability.stab_l2, b.stability.stab_l2);
  EXPECT_EQ(a.stability.psi, b.stability.psi);
  ASSERT_EQ(a.coverage.intervals.size(), b.coverage.intervals.size());
  for (size_t i = 0; i < a.coverage.intervals.size(); ++i) {
    EXPECT_EQ(a.coverage.intervals[i].lo, b.coverage.intervals[i].lo);
    EXPECT_EQ(a.coverage.intervals[i].hi, b.coverage.intervals[i].hi);
  }
  ASSERT_EQ(a.density.size(), b.density.size());
  for (size_t i = 0; i < a.density.size(); i += 97) {
    EXPECT_EQ(a.density.values()[i], b.density.values()[i]);
  }
  // The JSON report embeds wall-clock timings, so compare everything up to
  // the sampling section instead of the full string.
  const std::string json_a = AnswerStatisticsToJson(a);
  const std::string json_b = AnswerStatisticsToJson(b);
  const size_t cut_a = json_a.find("\"sampling\"");
  const size_t cut_b = json_b.find("\"sampling\"");
  ASSERT_NE(cut_a, std::string::npos);
  EXPECT_EQ(json_a.substr(0, cut_a), json_b.substr(0, cut_b));
}

TEST(DeterminismTest, GroupedEvaluationIsBitIdentical) {
  SourceSet sources = testing::MakeFigure1Sources();
  GroupedAggregateQuery query;
  query.name = "g";
  query.aggregate = AggregateKind::kAverage;
  query.groups.push_back(QueryGroup{"a", {1, 2}});
  query.groups.push_back(QueryGroup{"b", {3, 4, 5}});
  query.has_having = true;
  query.having.threshold = 17.0;
  ExtractorOptions options;
  options.initial_sample_size = 100;
  options.weight_probes = 5;
  options.kde.rule = BandwidthRule::kSilverman;
  const auto run = [&]() {
    return GroupedQueryEvaluator::Create(&sources, query, options)
        ->Evaluate()
        .value();
  };
  const GroupedAnswer a = run();
  const GroupedAnswer b = run();
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].statistics.mean.value,
              b.groups[g].statistics.mean.value);
    EXPECT_EQ(a.groups[g].having_probability, b.groups[g].having_probability);
  }
}

TEST(DeterminismTest, WeightedAndMultiSamplersAreBitIdentical) {
  SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  const auto weighted = WeightedUniSSampler::Create(
      &sources, query, {2.0, 1.0, 1.0, 0.5});
  Rng rng_a(5), rng_b(5);
  EXPECT_EQ(weighted->Sample(100, rng_a).value(),
            weighted->Sample(100, rng_b).value());

  const auto multi = MultiAggregateSampler::Create(
      &sources, query.components,
      {{AggregateKind::kSum, 0.5}, {AggregateKind::kMedian, 0.5}});
  Rng rng_c(6), rng_d(6);
  EXPECT_EQ(multi->Sample(100, rng_c).value(),
            multi->Sample(100, rng_d).value());
}

TEST(DeterminismTest, SimulationsAreBitIdentical) {
  SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = UniSSampler::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum));
  KdeOptions kde_options;
  kde_options.rule = BandwidthRule::kSilverman;
  Rng base_rng(3);
  const auto base = sampler->Sample(150, base_rng);
  const auto kde = EstimateKde(*base, kde_options);
  SimulatedStabilityOptions sim;
  sim.trials = 5;
  sim.samples_per_trial = 60;
  sim.kde = kde_options;
  Rng rng_a(9), rng_b(9);
  EXPECT_EQ(SimulateStability(*sampler, kde->density, sim, rng_a).value(),
            SimulateStability(*sampler, kde->density, sim, rng_b).value());
}

}  // namespace
}  // namespace vastats
