#include "util/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotonic) {
  const Stopwatch watch;
  double last = watch.ElapsedSeconds();
  EXPECT_GE(last, 0.0);
  // steady_clock never goes backwards, so repeated reads never decrease.
  for (int i = 0; i < 1000; ++i) {
    const double now = watch.ElapsedSeconds();
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(StopwatchTest, AdvancesAcrossASleep) {
  const Stopwatch watch;
  const double before = watch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double after = watch.ElapsedSeconds();
  // The sleep is a lower bound on the wall time that passed (sleeps can
  // oversleep, never undersleep).
  EXPECT_GE(after - before, 0.005);
}

TEST(StopwatchTest, RestartRewindsTheOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.ElapsedSeconds(), 0.005);
  watch.Restart();
  // Immediately after a restart the reading is (close to) zero — certainly
  // less than the slept interval it would still show without the restart.
  EXPECT_LT(watch.ElapsedSeconds(), 0.005);
}

TEST(StopwatchTest, MillisTracksSeconds) {
  const Stopwatch watch;
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_LT(millis, (seconds + 1.0) * 1e3);
}

}  // namespace
}  // namespace vastats
