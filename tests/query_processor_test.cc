#include "sampling/query_processor.h"

#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vastats {
namespace {

TEST(AggregateQueryTest, ValidateRequiresComponents) {
  AggregateQuery query;
  query.name = "empty";
  EXPECT_FALSE(query.Validate().ok());
  query.components = {1};
  EXPECT_TRUE(query.Validate().ok());
}

TEST(MakeRangeQueryTest, BuildsContiguousComponents) {
  const AggregateQuery query =
      MakeRangeQuery("range", AggregateKind::kSum, 100, 5);
  EXPECT_EQ(query.name, "range");
  EXPECT_EQ(query.kind, AggregateKind::kSum);
  EXPECT_EQ(query.components,
            (std::vector<ComponentId>{100, 101, 102, 103, 104}));
}

TEST(QueryProcessorTest, EvaluatesFigure1Assignment) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kSum);
  const QueryProcessor processor;
  // c1 from D1 (21), c2 from D3 (17), c3 from D4 (15), c4 from D3 (20),
  // c5 from D2 (18) => 91.
  const Assignment assignment = {0, 2, 3, 2, 1};
  const auto answer = processor.Evaluate(sources, query, assignment);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer.value(), 91.0);
}

TEST(QueryProcessorTest, DifferentAssignmentsDifferentAnswers) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kSum);
  const QueryProcessor processor;
  const double a =
      processor.Evaluate(sources, query, {0, 0, 2, 2, 1}).value();
  const double b =
      processor.Evaluate(sources, query, {2, 2, 2, 2, 1}).value();
  EXPECT_NE(a, b);  // D1 vs D3 disagree on components 1 and 2
}

TEST(QueryProcessorTest, ArityMismatchRejected) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kSum);
  const QueryProcessor processor;
  EXPECT_FALSE(processor.Evaluate(sources, query, {0, 1}).ok());
}

TEST(QueryProcessorTest, InvalidSourceIndexRejected) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kSum);
  const QueryProcessor processor;
  EXPECT_EQ(processor.Evaluate(sources, query, {0, 1, 2, 2, 9})
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(processor.Evaluate(sources, query, {0, 1, 2, 2, -1})
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(QueryProcessorTest, SourceMissingBindingRejected) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kSum);
  const QueryProcessor processor;
  // D1 (index 0) does not bind component 3.
  const auto answer = processor.Evaluate(sources, query, {0, 1, 0, 2, 1});
  EXPECT_EQ(answer.status().code(), StatusCode::kNotFound);
}

TEST(QueryProcessorTest, EvaluateValuesDelegates) {
  const QueryProcessor processor;
  AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kAverage);
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(processor.EvaluateValues(query, values).value(), 2.0);
}

}  // namespace
}  // namespace vastats
