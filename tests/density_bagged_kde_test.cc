#include "density/bagged_kde.h"

#include <vector>

#include <gtest/gtest.h>

#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

std::vector<std::vector<double>> MakeSets(const std::vector<double>& data,
                                          int num_sets, uint64_t seed) {
  Rng rng(seed);
  BootstrapOptions options;
  options.num_sets = num_sets;
  return BootstrapSets(data, options, rng).value();
}

TEST(BaggedKdeTest, UnitMassAndCommonGrid) {
  const std::vector<double> data = testing::NormalSample(300, 1, 4.0, 1.5);
  const auto sets = MakeSets(data, 20, 2);
  const auto bagged = EstimateBaggedKde(sets, data, KdeOptions{});
  ASSERT_TRUE(bagged.ok());
  EXPECT_NEAR(bagged->density.TotalMass(), 1.0, 1e-9);
  EXPECT_EQ(bagged->set_bandwidths.size(), 20u);
  EXPECT_GT(bagged->bandwidth, 0.0);
  // Grid must cover all the data.
  EXPECT_LT(bagged->density.x_min(), 0.0);
  EXPECT_GT(bagged->density.x_max(), 8.0);
}

TEST(BaggedKdeTest, CloseToSingleKdeOnLargeData) {
  const std::vector<double> data = testing::NormalSample(2000, 3, 0.0, 1.0);
  const auto sets = MakeSets(data, 30, 4);
  KdeOptions options;
  options.rule = BandwidthRule::kSilverman;
  const auto bagged = EstimateBaggedKde(sets, data, options);
  const auto single = EstimateKde(data, options);
  ASSERT_TRUE(bagged.ok());
  ASSERT_TRUE(single.ok());
  for (const double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) {
    EXPECT_NEAR(bagged->density.ValueAt(x), single->density.ValueAt(x), 0.03)
        << "x=" << x;
  }
}

TEST(BaggedKdeTest, BaggingStabilizesDensityEstimates) {
  // Point-wise variability of the bagged estimate across independent
  // bootstrap draws should not exceed the variability of single-set KDEs.
  const std::vector<double> data = testing::NormalSample(150, 5, 0.0, 1.0);
  KdeOptions options;
  options.rule = BandwidthRule::kSilverman;
  options.x_min = -4.0;
  options.x_max = 4.0;

  Moments single_at_zero, bagged_at_zero;
  for (int trial = 0; trial < 20; ++trial) {
    const auto sets = MakeSets(data, 25, 100 + static_cast<uint64_t>(trial));
    const auto bagged = EstimateBaggedKde(sets, data, options);
    ASSERT_TRUE(bagged.ok());
    bagged_at_zero.Add(bagged->density.ValueAt(0.0));
    const auto single = EstimateKde(sets[0], options);
    ASSERT_TRUE(single.ok());
    single_at_zero.Add(single->density.ValueAt(0.0));
  }
  EXPECT_LE(bagged_at_zero.SampleVariance(),
            single_at_zero.SampleVariance() + 1e-12);
}

TEST(BaggedKdeTest, HonorsFixedRange) {
  const std::vector<double> data = testing::NormalSample(100, 7, 2.0);
  const auto sets = MakeSets(data, 5, 8);
  KdeOptions options;
  options.x_min = -10.0;
  options.x_max = 14.0;
  const auto bagged = EstimateBaggedKde(sets, data, options);
  ASSERT_TRUE(bagged.ok());
  EXPECT_DOUBLE_EQ(bagged->density.x_min(), -10.0);
  EXPECT_DOUBLE_EQ(bagged->density.x_max(), 14.0);
}

TEST(BaggedKdeTest, RejectsDegenerateInput) {
  EXPECT_FALSE(EstimateBaggedKde({}, {}, KdeOptions{}).ok());
  const std::vector<std::vector<double>> bad_sets = {{1.0}};
  EXPECT_FALSE(EstimateBaggedKde(bad_sets, {}, KdeOptions{}).ok());
}

TEST(BaggedKdeTest, EmptyReferenceFallsBackToFirstSet) {
  const std::vector<double> data = testing::NormalSample(100, 9);
  const auto sets = MakeSets(data, 3, 10);
  const auto bagged = EstimateBaggedKde(sets, {}, KdeOptions{});
  ASSERT_TRUE(bagged.ok());
  EXPECT_GT(bagged->bandwidth, 0.0);
}

// ---- Determinism matrix: bandwidth_mode x pool width. Every cell must
// reproduce the serial result bit for bit — densities and per-set
// bandwidths — regardless of how many workers raced over the sets.
class BaggedKdeDeterminismMatrix
    : public ::testing::TestWithParam<BandwidthMode> {};

TEST_P(BaggedKdeDeterminismMatrix, BitIdenticalAcrossPoolWidths) {
  const BandwidthMode mode = GetParam();
  const std::vector<double> data = testing::NormalSample(400, 21, 3.0, 1.5);
  const auto sets = MakeSets(data, 30, 22);
  BaggedKdeOptions options;
  options.bandwidth_mode = mode;
  const auto serial = EstimateBaggedKde(sets, data, options);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->set_bandwidths.size(), 30u);
  if (mode == BandwidthMode::kShared) {
    // One selector run: every set reuses the reference-sample h (the
    // per-fit grid clamp cannot trigger on this well-spread sample).
    for (const double h : serial->set_bandwidths) {
      EXPECT_EQ(h, serial->set_bandwidths[0]);
    }
  }
  for (const int width : {1, 4, 16}) {
    ThreadPool pool(ThreadPoolOptions{.num_threads = width});
    const auto pooled = EstimateBaggedKde(sets, data, options, {}, &pool);
    ASSERT_TRUE(pooled.ok()) << "width " << width;
    EXPECT_EQ(pooled->bandwidth, serial->bandwidth) << "width " << width;
    EXPECT_EQ(pooled->set_bandwidths, serial->set_bandwidths)
        << "width " << width;
    ASSERT_EQ(pooled->density.values().size(),
              serial->density.values().size());
    for (size_t i = 0; i < serial->density.values().size(); ++i) {
      ASSERT_EQ(pooled->density.values()[i], serial->density.values()[i])
          << "width " << width << " grid point " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthModes, BaggedKdeDeterminismMatrix,
    ::testing::Values(BandwidthMode::kPerSet, BandwidthMode::kShared),
    [](const ::testing::TestParamInfo<BandwidthMode>& info) {
      return info.param == BandwidthMode::kPerSet ? "per_set" : "shared";
    });

TEST(BaggedKdeTest, SharedModeMatchesPerSetGridAndMass) {
  // kShared changes the per-set bandwidths, not the estimator contract:
  // same grid, unit mass, and the reported h equals the per-set h.
  const std::vector<double> data = testing::NormalSample(300, 23, 4.0, 1.0);
  const auto sets = MakeSets(data, 15, 24);
  BaggedKdeOptions shared;
  shared.bandwidth_mode = BandwidthMode::kShared;
  const auto bagged = EstimateBaggedKde(sets, data, shared);
  ASSERT_TRUE(bagged.ok());
  EXPECT_NEAR(bagged->density.TotalMass(), 1.0, 1e-9);
  EXPECT_EQ(bagged->set_bandwidths[0], bagged->bandwidth);
}

TEST(BaggedKdeTest, PooledFitsAreBitIdenticalToSerial) {
  const std::vector<double> data = testing::NormalSample(400, 11, 2.0, 1.0);
  const auto sets = MakeSets(data, 25, 12);
  const auto serial = EstimateBaggedKde(sets, data, KdeOptions{});
  ASSERT_TRUE(serial.ok());
  for (const int size : {1, 2, 4}) {
    ThreadPool pool(ThreadPoolOptions{.num_threads = size});
    const auto pooled =
        EstimateBaggedKde(sets, data, KdeOptions{}, {}, &pool);
    ASSERT_TRUE(pooled.ok());
    EXPECT_EQ(pooled->set_bandwidths, serial->set_bandwidths)
        << "pool size " << size;
    EXPECT_EQ(pooled->bandwidth, serial->bandwidth);
    ASSERT_EQ(pooled->density.values().size(), serial->density.values().size());
    for (size_t i = 0; i < serial->density.values().size(); ++i) {
      EXPECT_EQ(pooled->density.values()[i], serial->density.values()[i]);
    }
  }
}

}  // namespace
}  // namespace vastats
