// Include-graph and layer-DAG tests for the analyzer's RepoIndex: edge
// resolution, layer ranks, include chains, and fact merging.

#include "repo_index.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "source.h"

namespace vastats {
namespace analyze {
namespace {

RepoIndex IndexOf(std::vector<std::pair<std::string, std::string>> files) {
  std::vector<SourceFile> sources;
  for (auto& [path, text] : files) {
    sources.push_back(MakeSourceFile(path, std::move(text)));
  }
  return BuildRepoIndex(std::move(sources));
}

TEST(AnalyzeIncludeGraph, LayerRanks) {
  EXPECT_EQ(LayerRank("util"), 0);
  EXPECT_EQ(LayerRank("obs"), 1);
  EXPECT_EQ(LayerRank("stats"), 2);
  EXPECT_EQ(LayerRank("density"), 2);
  EXPECT_EQ(LayerRank("sampling"), 2);
  EXPECT_EQ(LayerRank("datagen"), 2);
  EXPECT_EQ(LayerRank("integration"), 3);
  EXPECT_EQ(LayerRank("core"), 4);
  EXPECT_EQ(LayerRank("fusion"), 4);
  EXPECT_EQ(LayerRank("query"), 5);
  EXPECT_EQ(LayerRank("unknown"), -1);
}

TEST(AnalyzeIncludeGraph, ResolvesQuotedIncludesSrcRelative) {
  const RepoIndex index = IndexOf(
      {{"src/core/a.cc",
        "#include \"core/a.h\"\n#include \"util/b.h\"\n"
        "#include <vector>\n#include \"missing/x.h\"\n"},
       {"src/core/a.h", "int A();\n"},
       {"src/util/b.h", "int B();\n"}});
  const int a_cc = index.by_path.at("src/core/a.cc");
  ASSERT_EQ(index.includes[static_cast<size_t>(a_cc)].size(), 2u);
  EXPECT_EQ(index.includes[static_cast<size_t>(a_cc)][0].to,
            index.by_path.at("src/core/a.h"));
  EXPECT_EQ(index.includes[static_cast<size_t>(a_cc)][0].line, 1);
  EXPECT_EQ(index.includes[static_cast<size_t>(a_cc)][1].to,
            index.by_path.at("src/util/b.h"));
  EXPECT_EQ(index.includes[static_cast<size_t>(a_cc)][1].line, 2);
}

TEST(AnalyzeIncludeGraph, IncludeChainReachesNearestCc) {
  // a.cc -> mid.h -> deep.h: the chain for deep.h walks back to a.cc.
  const RepoIndex index = IndexOf(
      {{"src/core/a.cc", "#include \"core/mid.h\"\n"},
       {"src/core/mid.h", "#include \"core/deep.h\"\n"},
       {"src/core/deep.h", "int D();\n"}});
  const std::vector<std::string> chain =
      index.IncludeChain(index.by_path.at("src/core/deep.h"));
  const std::vector<std::string> want = {"src/core/a.cc", "src/core/mid.h",
                                         "src/core/deep.h"};
  EXPECT_EQ(chain, want);
}

TEST(AnalyzeIncludeGraph, IncludeChainWithoutIncluderIsSelf) {
  const RepoIndex index = IndexOf({{"src/core/lone.h", "int L();\n"}});
  const std::vector<std::string> chain =
      index.IncludeChain(index.by_path.at("src/core/lone.h"));
  EXPECT_EQ(chain, std::vector<std::string>{"src/core/lone.h"});
}

TEST(AnalyzeIncludeGraph, MergesEnumAndStatusFacts) {
  const RepoIndex index = IndexOf(
      {{"src/core/a.h",
        "enum class Kind { kOne, kTwo };\nStatus Commit();\n"},
       {"src/util/b.h",
        "class C {\n  std::unordered_map<int, int>& table();\n};\n"}});
  ASSERT_EQ(index.enums_by_name.count("Kind"), 1u);
  EXPECT_EQ(index.enums_by_name.at("Kind")->enumerators.size(), 2u);
  EXPECT_EQ(index.enum_of_enumerator.at("kTwo"), "Kind");
  EXPECT_EQ(index.status_functions.count("Commit"), 1u);
  EXPECT_EQ(index.unordered_methods.count("table"), 1u);
}

TEST(AnalyzeIncludeGraph, VoidOverloadRemovesStatusFunction) {
  const RepoIndex index = IndexOf(
      {{"src/core/a.h", "Status Rebuild(int n);\n"},
       {"src/core/b.h", "class C {\n  void Rebuild();\n};\n"}});
  EXPECT_EQ(index.status_functions.count("Rebuild"), 0u);
}

TEST(AnalyzeIncludeGraph, TestsDoNotContributeFacts) {
  // Facts merge from src/ only; a tests/ enum must not enter the registry.
  const RepoIndex index = IndexOf(
      {{"tests/a_test.cc", "enum class Fake { kA };\n"}});
  EXPECT_EQ(index.enums_by_name.count("Fake"), 0u);
}

}  // namespace
}  // namespace analyze
}  // namespace vastats
