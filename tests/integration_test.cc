#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/data_source.h"
#include "datagen/source_set.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(DataSourceTest, BindAndLookup) {
  DataSource source("weather-bc");
  EXPECT_EQ(source.name(), "weather-bc");
  EXPECT_EQ(source.NumBindings(), 0u);
  source.Bind(1, 21.0);
  source.Bind(2, 19.0);
  EXPECT_TRUE(source.Has(1));
  EXPECT_FALSE(source.Has(3));
  EXPECT_DOUBLE_EQ(source.Value(1).value(), 21.0);
  EXPECT_EQ(source.Value(3).status().code(), StatusCode::kNotFound);
}

TEST(DataSourceTest, RebindReplacesValue) {
  DataSource source("s");
  source.Bind(1, 10.0);
  source.Bind(1, 12.0);
  EXPECT_EQ(source.NumBindings(), 1u);
  EXPECT_DOUBLE_EQ(source.Value(1).value(), 12.0);
}

TEST(DataSourceTest, Unbind) {
  DataSource source("s");
  source.Bind(1, 10.0);
  EXPECT_TRUE(source.Unbind(1));
  EXPECT_FALSE(source.Unbind(1));
  EXPECT_FALSE(source.Has(1));
}

TEST(DataSourceTest, SortedComponents) {
  DataSource source("s");
  source.Bind(5, 1.0);
  source.Bind(1, 2.0);
  source.Bind(3, 3.0);
  EXPECT_EQ(source.SortedComponents(), (std::vector<ComponentId>{1, 3, 5}));
}

TEST(SourceSetTest, Figure1CoverageIndex) {
  const SourceSet set = testing::MakeFigure1Sources();
  EXPECT_EQ(set.NumSources(), 4);
  // Component 1 (Burnaby 06-10) is held by D1, D2, D3.
  EXPECT_EQ(set.Covering(1), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(set.CoverageCount(2), 3);
  EXPECT_EQ(set.Covering(4), (std::vector<int>{2}));
  EXPECT_EQ(set.CoverageCount(99), 0);
  EXPECT_TRUE(set.Covering(99).empty());
}

TEST(SourceSetTest, Universe) {
  const SourceSet set = testing::MakeFigure1Sources();
  EXPECT_EQ(set.Universe(), (std::vector<ComponentId>{1, 2, 3, 4, 5}));
}

TEST(SourceSetTest, ValidateCoverage) {
  const SourceSet set = testing::MakeFigure1Sources();
  const std::vector<ComponentId> good = {1, 2, 3};
  EXPECT_TRUE(set.ValidateCoverage(good).ok());
  const std::vector<ComponentId> bad = {1, 42};
  const Status status = set.ValidateCoverage(bad);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SourceSetTest, AverageCoverage) {
  const SourceSet set = testing::MakeFigure1Sources();
  // Coverage counts: c1=3, c2=3, c3=2, c4=1, c5=1 => avg = 2.0.
  const std::vector<ComponentId> components = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(set.AverageCoverage(components).value(), 2.0);
  EXPECT_FALSE(set.AverageCoverage({}).ok());
}

TEST(SourceSetTest, ValueRange) {
  const SourceSet set = testing::MakeFigure1Sources();
  // Vancouver 06-11 has values 19 (D1), 22 (D2), 17 (D3).
  const auto range = set.ValueRange(2);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->first, 17.0);
  EXPECT_DOUBLE_EQ(range->second, 22.0);
  EXPECT_FALSE(set.ValueRange(42).ok());
}

TEST(SourceSetTest, IndexRebuiltAfterAddSource) {
  SourceSet set = testing::MakeFigure1Sources();
  EXPECT_EQ(set.CoverageCount(4), 1);
  DataSource d5("D5");
  d5.Bind(4, 21.5);
  set.AddSource(std::move(d5));
  EXPECT_EQ(set.CoverageCount(4), 2);
  EXPECT_EQ(set.NumSources(), 5);
}

TEST(SourceSetTest, MutableSourceEditsPropagate) {
  SourceSet set = testing::MakeFigure1Sources();
  EXPECT_EQ(set.CoverageCount(99), 0);  // force the index to build
  set.mutable_source(0).Bind(99, 1.0);
  EXPECT_TRUE(set.source(0).Has(99));
  // The coverage index must reflect the mutation.
  EXPECT_EQ(set.CoverageCount(99), 1);
}

}  // namespace
}  // namespace vastats
