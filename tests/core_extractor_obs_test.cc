// Telemetry integration tests for the extraction pipeline: span taxonomy,
// PhaseTimings/span agreement, metrics coverage, and the parallel-sampling
// reporting path.

#include <cmath>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace vastats {
namespace {

std::string FindAnnotation(const SpanRecord& span, std::string_view key) {
  for (const SpanAnnotation& annotation : span.annotations) {
    if (annotation.key == key) return annotation.value;
  }
  return "";
}

ExtractorOptions SmallOptions() {
  ExtractorOptions options;
  options.initial_sample_size = 40;
  options.bootstrap.num_sets = 10;
  options.kde.grid_size = 256;
  options.weight_probes = 5;
  return options;
}

Result<AnswerStatistics> RunInstrumented(Trace* trace,
                                         MetricsRegistry* metrics,
                                         ExtractorOptions options) {
  const SourceSet sources = testing::MakeFigure1Sources();
  options.obs.trace = trace;
  options.obs.metrics = metrics;
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(
          &sources, testing::MakeFigure1Query(AggregateKind::kSum), options));
  return extractor.Extract();
}

TEST(ExtractorObsTest, RecordsTheFullSpanTaxonomy) {
  Trace trace;
  const auto stats = RunInstrumented(&trace, nullptr, SmallOptions());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  for (const char* name :
       {"extract", "sampling", "unis_sample", "extract_from_samples",
        "bootstrap", "point_statistics", "kde", "bagged_kde", "kde_estimate",
        "cio", "cio_greedy", "stability", "unis_estimate_weight"}) {
    EXPECT_GE(trace.CountOf(name), 1) << "missing span: " << name;
  }
  // One kde_estimate child per bootstrap set.
  EXPECT_EQ(trace.CountOf("kde_estimate"), 10);
  // The phases nest under the pipeline roots.
  const SpanRecord* sampling = trace.Find("sampling");
  ASSERT_NE(sampling, nullptr);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(sampling->parent)].name,
            "extract");
  const SpanRecord* kde = trace.Find("kde");
  ASSERT_NE(kde, nullptr);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(kde->parent)].name,
            "extract_from_samples");
  // Every recorded span name passes the exporter's naming rules.
  EXPECT_TRUE(TraceToJson(trace).ok());
}

TEST(ExtractorObsTest, PhaseTimingsDeriveFromTheSpans) {
  Trace trace;
  const auto stats = RunInstrumented(&trace, nullptr, SmallOptions());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const PhaseTimings& timings = stats->timings;
  // Close() hands back the trace-recorded elapsed, so (absent a clamp, which
  // cannot trigger here since phases are disjoint sub-spans of the root)
  // PhaseTimings and the trace are the same numbers.
  EXPECT_DOUBLE_EQ(timings.sampling_seconds,
                   trace.Find("sampling")->elapsed_seconds);
  EXPECT_DOUBLE_EQ(timings.bootstrap_seconds,
                   trace.Find("bootstrap")->elapsed_seconds);
  EXPECT_DOUBLE_EQ(timings.point_statistics_seconds,
                   trace.Find("point_statistics")->elapsed_seconds);
  EXPECT_DOUBLE_EQ(timings.kde_seconds, trace.Find("kde")->elapsed_seconds);
  EXPECT_DOUBLE_EQ(timings.cio_seconds, trace.Find("cio")->elapsed_seconds);
  EXPECT_DOUBLE_EQ(timings.stability_seconds,
                   trace.Find("stability")->elapsed_seconds);
  // The breakdown never exceeds the root span's wall time.
  EXPECT_LE(timings.TotalSeconds(),
            trace.Find("extract")->elapsed_seconds * 1.05);
}

TEST(ExtractorObsTest, PopulatesPipelineMetrics) {
  MetricsRegistry metrics;
  const auto stats = RunInstrumented(nullptr, &metrics, SmallOptions());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const MetricsSnapshot snapshot = metrics.Snapshot();
  const CounterSample* draws = snapshot.FindCounter("unis_draws_total");
  ASSERT_NE(draws, nullptr);
  // 40 pipeline draws plus 5 weight probes.
  EXPECT_EQ(draws->value, 45u);
  EXPECT_EQ(snapshot.FindCounter("extractions_total")->value, 1u);
  EXPECT_EQ(snapshot.FindCounter("bagged_kde_sets_total")->value, 10u);
  // One KDE per bootstrap set, all on the binned DCT path by default.
  EXPECT_EQ(snapshot.FindCounter("kde_binned_path_total")->value, 10u);
  EXPECT_EQ(snapshot.FindCounter("cio_runs_total")->value, 1u);
  ASSERT_NE(snapshot.FindCounter("kde_botev_iterations_total"), nullptr);
  EXPECT_GT(snapshot.FindCounter("kde_botev_iterations_total")->value, 0u);
  const HistogramSample* visited =
      snapshot.FindHistogram("unis_sources_visited_per_draw");
  ASSERT_NE(visited, nullptr);
  EXPECT_EQ(visited->count, 40u);
  // Everything the pipeline emitted survives the exporters.
  EXPECT_TRUE(SnapshotToJson(snapshot).ok());
  EXPECT_TRUE(SnapshotToPrometheus(snapshot).ok());
}

TEST(ExtractorObsTest, ParallelSamplingReportsPerChunk) {
  Trace trace;
  MetricsRegistry metrics;
  ExtractorOptions options = SmallOptions();
  // 200 draws over the default 64-draw chunks -> 4 chunks (3 full + 1 tail).
  options.initial_sample_size = 200;
  options.sampling_threads = 4;
  const auto stats = RunInstrumented(&trace, &metrics, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(trace.CountOf("parallel_sample"), 1);
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.FindCounter("parallel_sampler_runs_total")->value, 1u);
  // Applied parallelism: 4 requested workers over 4 chunks.
  EXPECT_EQ(snapshot.FindGauge("parallel_sampler_threads")->value, 4.0);
  // Worker threads flush their draw counts into their own shards; the merged
  // histogram must see one observation per chunk and all 200 draws.
  const HistogramSample* per_chunk =
      snapshot.FindHistogram("parallel_sampler_draws_per_chunk");
  ASSERT_NE(per_chunk, nullptr);
  EXPECT_EQ(per_chunk->count, 4u);
  EXPECT_DOUBLE_EQ(per_chunk->sum, 200.0);
  // 200 pipeline draws plus the 5 weight probes.
  EXPECT_EQ(snapshot.FindCounter("unis_draws_total")->value, 205u);
}

TEST(ExtractorObsTest, PoolRunReportsPoolTelemetry) {
  Trace trace;
  MetricsRegistry metrics;
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  ExtractorOptions options = SmallOptions();
  options.initial_sample_size = 200;
  options.sampling_threads = 4;
  options.pool = &pool;
  const auto stats = RunInstrumented(&trace, &metrics, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  const MetricsSnapshot snapshot = metrics.Snapshot();
  // Pool task accounting: 4 sampling chunks + 4 x 10 bootstrap statistic
  // evaluations + 10 KDE fits, all with latency observations.
  const CounterSample* tasks = snapshot.FindCounter("thread_pool_tasks_total");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->value, 54u);
  const HistogramSample* latency =
      snapshot.FindHistogram("thread_pool_task_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 54u);
  ASSERT_NE(snapshot.FindGauge("thread_pool_queue_depth"), nullptr);
  // The spans that dispatched onto the pool say so.
  const SpanRecord* sample_span = trace.Find("parallel_sample");
  ASSERT_NE(sample_span, nullptr);
  EXPECT_EQ(FindAnnotation(*sample_span, "pool"), "true");
  const SpanRecord* kde_span = trace.Find("bagged_kde");
  ASSERT_NE(kde_span, nullptr);
  EXPECT_EQ(FindAnnotation(*kde_span, "pool"), "true");
  // Pooled KDE fits report metrics only (Trace is single-threaded).
  EXPECT_EQ(trace.CountOf("kde_estimate"), 0);
}

TEST(ExtractorObsTest, TelemetryDoesNotPerturbResults) {
  const auto plain = RunInstrumented(nullptr, nullptr, SmallOptions());
  Trace trace;
  MetricsRegistry metrics;
  const auto instrumented = RunInstrumented(&trace, &metrics, SmallOptions());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(instrumented.ok());
  EXPECT_EQ(plain->mean.value, instrumented->mean.value);
  EXPECT_EQ(plain->variance.value, instrumented->variance.value);
  EXPECT_EQ(plain->stability.stab_l2, instrumented->stability.stab_l2);
  EXPECT_EQ(plain->samples, instrumented->samples);
}

TEST(ReconcilePhaseTimingsTest, ConsistentTimingsPassUntouched) {
  PhaseTimings timings;
  timings.sampling_seconds = 1.0;
  timings.kde_seconds = 2.0;
  EXPECT_TRUE(ReconcilePhaseTimings(timings, 3.1));
  EXPECT_DOUBLE_EQ(timings.sampling_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timings.kde_seconds, 2.0);
  // Within tolerance of a slightly smaller total is still fine.
  EXPECT_TRUE(ReconcilePhaseTimings(timings, 2.95));
  EXPECT_DOUBLE_EQ(timings.kde_seconds, 2.0);
}

TEST(ReconcilePhaseTimingsTest, DoubleCountedTimingsAreClampedProportionally) {
  PhaseTimings timings;
  timings.sampling_seconds = 2.0;
  timings.bootstrap_seconds = 2.0;
  timings.kde_seconds = 2.0;
  // Sum 6 s against a 3 s wall clock: every phase was counted twice.
  EXPECT_FALSE(ReconcilePhaseTimings(timings, 3.0));
  EXPECT_DOUBLE_EQ(timings.sampling_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timings.bootstrap_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timings.kde_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timings.TotalSeconds(), 3.0);
}

TEST(ReconcilePhaseTimingsTest, ZeroAndNegativeEdgeCases) {
  PhaseTimings zero;
  EXPECT_TRUE(ReconcilePhaseTimings(zero, 0.0));
  PhaseTimings timings;
  timings.cio_seconds = 1.0;
  // A zero wall clock clamps everything to zero.
  EXPECT_FALSE(ReconcilePhaseTimings(timings, 0.0));
  EXPECT_DOUBLE_EQ(timings.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace vastats
