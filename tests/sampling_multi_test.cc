#include "sampling/multi.h"

#include "sampling/unis.h"

#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

std::vector<ComponentId> Figure1Components() { return {1, 2, 3, 4, 5}; }

TEST(MultiAggregateSamplerTest, Validation) {
  const SourceSet sources = testing::MakeFigure1Sources();
  EXPECT_FALSE(MultiAggregateSampler::Create(nullptr, Figure1Components(),
                                             {{AggregateKind::kSum, 0.5}})
                   .ok());
  EXPECT_FALSE(
      MultiAggregateSampler::Create(&sources, {}, {{AggregateKind::kSum, 0.5}})
          .ok());
  EXPECT_FALSE(
      MultiAggregateSampler::Create(&sources, Figure1Components(), {}).ok());
  EXPECT_FALSE(MultiAggregateSampler::Create(
                   &sources, Figure1Components(),
                   {{AggregateKind::kQuantile, 1.5}})
                   .ok());
  EXPECT_FALSE(MultiAggregateSampler::Create(&sources, {1, 42},
                                             {{AggregateKind::kSum, 0.5}})
                   .ok());
}

TEST(MultiAggregateSamplerTest, AnswersAreMutuallyConsistent) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = MultiAggregateSampler::Create(
      &sources, Figure1Components(),
      {{AggregateKind::kSum, 0.5},
       {AggregateKind::kAverage, 0.5},
       {AggregateKind::kMin, 0.5},
       {AggregateKind::kMax, 0.5}});
  ASSERT_TRUE(sampler.ok());
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto answers = sampler->SampleOne(rng);
    ASSERT_TRUE(answers.ok());
    ASSERT_EQ(answers->size(), 4u);
    const double sum = (*answers)[0];
    const double avg = (*answers)[1];
    const double min = (*answers)[2];
    const double max = (*answers)[3];
    // All four come from the same assignment, so they cohere exactly.
    EXPECT_NEAR(avg, sum / 5.0, 1e-12);
    EXPECT_LE(min, avg);
    EXPECT_GE(max, avg);
  }
}

TEST(MultiAggregateSamplerTest, MarginalsMatchSingleAggregateSampler) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto multi = MultiAggregateSampler::Create(
      &sources, Figure1Components(), {{AggregateKind::kSum, 0.5}});
  ASSERT_TRUE(multi.ok());
  const auto single = UniSSampler::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(single.ok());
  Rng rng_multi(2), rng_single(2);
  const auto multi_samples = multi->Sample(4000, rng_multi);
  const auto single_samples = single->Sample(4000, rng_single);
  ASSERT_TRUE(multi_samples.ok());
  ASSERT_TRUE(single_samples.ok());
  // Same answer distribution: compare means of the {89, 93, 96} atoms.
  const double multi_mean = ComputeMoments((*multi_samples)[0]).mean();
  const double single_mean = ComputeMoments(*single_samples).mean();
  EXPECT_NEAR(multi_mean, single_mean, 0.2);
}

TEST(MultiAggregateSamplerTest, SampleShapesSeries) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = MultiAggregateSampler::Create(
      &sources, Figure1Components(),
      {{AggregateKind::kSum, 0.5}, {AggregateKind::kQuantile, 0.8}});
  ASSERT_TRUE(sampler.ok());
  Rng rng(3);
  const auto series = sampler->Sample(50, rng);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 2u);
  EXPECT_EQ((*series)[0].size(), 50u);
  EXPECT_EQ((*series)[1].size(), 50u);
  EXPECT_FALSE(sampler->Sample(0, rng).ok());
}

}  // namespace
}  // namespace vastats
