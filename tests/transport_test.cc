// Unit coverage of the async transport: wire framing, the sanctioned
// clock-mapping helpers, endpoint backends (in-process queues, AF_UNIX
// socket pairs, file-backed payload spools), prefetch pipelining with a
// bounded in-flight depth, and hedged duplicate requests.

#include "transport/async_transport.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/fault_model.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "transport/clock_map.h"
#include "transport/endpoint.h"
#include "transport/wire.h"

namespace vastats::transport {
namespace {

using ::vastats::testing::MakeFigure1Sources;

TEST(WireTest, RequestFramesRoundTripBackToBack) {
  WireRequest a;
  a.id = 0x1122334455667788ULL;
  a.channel = 7;
  a.source = 3;
  a.epoch = -1;  // sign must survive
  a.attempt = 2;
  a.num_components = 5;
  WireRequest b;
  b.id = 99;
  b.channel = 1;
  b.source = 0;
  b.epoch = (1LL << 40) + 17;
  b.attempt = 0;
  b.num_components = 1;

  std::string bytes;
  AppendRequestFrame(a, &bytes);
  AppendRequestFrame(b, &bytes);
  ASSERT_EQ(bytes.size(), 2 * kRequestFrameBytes);

  WireRequest got;
  const auto first = DecodeRequestFrame(bytes, &got);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, kRequestFrameBytes);
  EXPECT_EQ(got.id, a.id);
  EXPECT_EQ(got.channel, a.channel);
  EXPECT_EQ(got.source, a.source);
  EXPECT_EQ(got.epoch, a.epoch);
  EXPECT_EQ(got.attempt, a.attempt);
  EXPECT_EQ(got.num_components, a.num_components);

  const auto second =
      DecodeRequestFrame(std::string_view(bytes).substr(*first), &got);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, kRequestFrameBytes);
  EXPECT_EQ(got.epoch, b.epoch);
}

TEST(WireTest, PartialFramesWaitForMoreBytes) {
  WireRequest request;
  request.id = 5;
  std::string bytes;
  AppendRequestFrame(request, &bytes);
  for (size_t cut = 0; cut < kRequestFrameBytes; ++cut) {
    WireRequest got;
    const auto consumed =
        DecodeRequestFrame(std::string_view(bytes).substr(0, cut), &got);
    ASSERT_TRUE(consumed.ok());
    EXPECT_EQ(*consumed, 0u) << "cut=" << cut;
  }

  std::string response_bytes;
  AppendResponseFrame(5, false, 1.5,
                      EncodeBindings({{1, 2.0}, {2, 3.0}}), &response_bytes);
  WireResponse response;
  // Header complete but the body still streaming: not a frame yet.
  const auto consumed = DecodeResponseFrame(
      std::string_view(response_bytes).substr(0, kResponseHeaderBytes + 3),
      &response);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, 0u);
}

TEST(WireTest, ResponseFramesRoundTripPayload) {
  const std::vector<TransportBinding> bindings = {
      {1, 21.5}, {2, -3.25}, {9, 0.0}};
  std::string bytes;
  AppendResponseFrame(42, false, 2.75, EncodeBindings(bindings), &bytes);
  ASSERT_EQ(bytes.size(),
            kResponseHeaderBytes + bindings.size() * kBindingBytes);

  WireResponse response;
  const auto consumed = DecodeResponseFrame(bytes, &response);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, bytes.size());
  EXPECT_EQ(response.id, 42u);
  EXPECT_FALSE(response.failed);
  EXPECT_DOUBLE_EQ(response.virtual_ms, 2.75);
  ASSERT_EQ(response.payload.size(), bindings.size());
  for (size_t i = 0; i < bindings.size(); ++i) {
    EXPECT_EQ(response.payload[i].component, bindings[i].component);
    EXPECT_DOUBLE_EQ(response.payload[i].value, bindings[i].value);
  }

  std::string failed_bytes;
  AppendResponseFrame(43, true, 8.0, {}, &failed_bytes);
  const auto failed_consumed = DecodeResponseFrame(failed_bytes, &response);
  ASSERT_TRUE(failed_consumed.ok());
  EXPECT_TRUE(response.failed);
  EXPECT_TRUE(response.payload.empty());
}

TEST(WireTest, CorruptMagicIsAnError) {
  WireRequest request;
  std::string bytes;
  AppendRequestFrame(request, &bytes);
  bytes[0] = 'X';
  WireRequest got;
  EXPECT_FALSE(DecodeRequestFrame(bytes, &got).ok());

  std::string response_bytes;
  AppendResponseFrame(1, false, 0.0, {}, &response_bytes);
  response_bytes[1] ^= 0x40;
  WireResponse response;
  EXPECT_FALSE(DecodeResponseFrame(response_bytes, &response).ok());
}

TEST(ClockMapTest, WallBudgetMapScalesLinearly) {
  const WallBudgetMap map(0.25);
  EXPECT_DOUBLE_EQ(map.ToVirtualMs(8.0), 2.0);
  EXPECT_DOUBLE_EQ(map.ToVirtualMs(0.0), 0.0);
}

TEST(ClockMapTest, WallClockIsMonotone) {
  const WallClock clock;
  const double first = clock.NowMs();
  const double second = clock.NowMs();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(ClockMapTest, CutoffIsInfiniteUntilWarm) {
  LatencyCutoffEstimator estimator(16);
  for (int i = 0; i < 7; ++i) estimator.Observe(1.0);
  EXPECT_EQ(estimator.count(), 7);
  EXPECT_TRUE(std::isinf(estimator.CutoffMs(0.5, 2.0, 8, 0.0)));
  estimator.Observe(1.0);
  EXPECT_FALSE(std::isinf(estimator.CutoffMs(0.5, 2.0, 8, 0.0)));
}

TEST(ClockMapTest, CutoffUsesNearestRankPercentileTimesMultiplier) {
  LatencyCutoffEstimator estimator(128);
  for (int i = 1; i <= 100; ++i) estimator.Observe(static_cast<double>(i));
  // Nearest-rank p95 of {1..100} is 95; doubled is 190.
  EXPECT_DOUBLE_EQ(estimator.CutoffMs(0.95, 2.0, 16, 0.0), 190.0);
  // The floor wins when the observed latencies are tiny.
  EXPECT_DOUBLE_EQ(estimator.CutoffMs(0.95, 2.0, 16, 500.0), 500.0);
  // The window keeps only the most recent `capacity` observations.
  LatencyCutoffEstimator small(4);
  for (const double v : {100.0, 1.0, 1.0, 1.0, 1.0}) small.Observe(v);
  EXPECT_DOUBLE_EQ(small.CutoffMs(1.0, 1.0, 4, 0.0), 1.0);
}

TEST(TransportOptionsTest, Validation) {
  TransportOptions options;
  EXPECT_TRUE(options.Validate().ok());

  options.max_in_flight = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};

  options.latency_mode = LatencyChargeMode::kWallMapped;
  options.virtual_ms_per_wall_ms = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};

  options.hedge.enabled = true;
  options.hedge.percentile = 1.5;
  EXPECT_FALSE(options.Validate().ok());
  options.hedge.percentile = 0.9;
  options.hedge.multiplier = 0.5;
  EXPECT_FALSE(options.Validate().ok());
  options.hedge.multiplier = 2.0;
  options.hedge.max_hedges_per_attempt = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};

  options.latency_window = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};

  options.endpoint.service_threads = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.endpoint.straggler_fraction = 1.5;
  EXPECT_FALSE(options.Validate().ok());
}

// Expected payload of a successful visit to `source`: its sorted bindings.
std::vector<TransportBinding> ExpectedPayload(const SourceSet& sources,
                                              int source) {
  std::vector<TransportBinding> expected;
  for (const auto& [component, value] :
       sources.source(source).SortedBindings()) {
    expected.push_back({component, value});
  }
  return expected;
}

void ExpectPayloadEq(std::span<const TransportBinding> got,
                     const std::vector<TransportBinding>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].component, want[i].component);
    EXPECT_DOUBLE_EQ(got[i].value, want[i].value);
  }
}

TEST(TransportChannelTest, DemandVisitDeliversSortedPayload) {
  const SourceSet sources = MakeFigure1Sources();
  for (const EndpointBackend backend :
       {EndpointBackend::kInProcess, EndpointBackend::kSocketPair}) {
    TransportOptions options;
    options.endpoint.backend = backend;
    auto transport = AsyncSourceTransport::Create(sources, nullptr, options);
    ASSERT_TRUE(transport.ok());
    auto channel = (*transport)->OpenChannel();
    ASSERT_TRUE(channel.ok());
    for (int source = 0; source < sources.NumSources(); ++source) {
      const auto expected = ExpectedPayload(sources, source);
      const TransportAttemptResult result = (*channel)->PerformAttempt(
          source, /*epoch=*/source, /*attempt=*/0,
          static_cast<int>(expected.size()));
      EXPECT_FALSE(result.failed);
      // Null model: every attempt succeeds instantly.
      EXPECT_DOUBLE_EQ(result.virtual_ms, 0.0);
      ExpectPayloadEq(result.payload, expected);
    }
  }
}

TEST(TransportChannelTest, FileBackedPayloadsServeIdenticalBytes) {
  const SourceSet sources = MakeFigure1Sources();
  TransportOptions options;
  options.endpoint.file_backed_payloads = true;
  auto transport = AsyncSourceTransport::Create(sources, nullptr, options);
  ASSERT_TRUE(transport.ok());
  auto channel = (*transport)->OpenChannel();
  ASSERT_TRUE(channel.ok());
  for (int source = 0; source < sources.NumSources(); ++source) {
    const auto expected = ExpectedPayload(sources, source);
    const TransportAttemptResult result = (*channel)->PerformAttempt(
        source, 0, 0, static_cast<int>(expected.size()));
    EXPECT_FALSE(result.failed);
    ExpectPayloadEq(result.payload, expected);
  }
}

TEST(TransportChannelTest, OutcomesMatchTheKeyedFaultModel) {
  const SourceSet sources = MakeFigure1Sources();
  FaultModelOptions fault;
  fault.transient_failure_prob = 0.4;
  fault.latency_jitter_sigma = 0.3;
  fault.outage_fraction = 0.25;
  fault.outage_epoch = 4;
  fault.seed = 2024;
  const auto model = FaultModel::Create(sources.NumSources(), fault);
  ASSERT_TRUE(model.ok());

  TransportOptions options;
  auto transport = AsyncSourceTransport::Create(sources, &*model, options);
  ASSERT_TRUE(transport.ok());
  auto channel = (*transport)->OpenChannel();
  ASSERT_TRUE(channel.ok());
  for (int64_t epoch = 0; epoch < 8; ++epoch) {
    for (int source = 0; source < sources.NumSources(); ++source) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        const TransportAttemptResult result =
            (*channel)->PerformAttempt(source, epoch, attempt, 2);
        const bool want_failed =
            model->PermanentlyOut(source, epoch) ||
            model->AttemptFails(source, epoch, attempt);
        EXPECT_EQ(result.failed, want_failed)
            << "source=" << source << " epoch=" << epoch
            << " attempt=" << attempt;
        EXPECT_DOUBLE_EQ(result.virtual_ms,
                         model->AttemptLatencyMs(source, epoch, attempt, 2));
        if (!want_failed) {
          ExpectPayloadEq(result.payload, ExpectedPayload(sources, source));
        } else {
          EXPECT_TRUE(result.payload.empty());
        }
      }
    }
  }
}

TEST(TransportChannelTest, StagingPrefetchesUpToTheInFlightBound) {
  const SourceSet sources = MakeFigure1Sources();
  TransportOptions options;
  options.max_in_flight = 2;
  auto transport = AsyncSourceTransport::Create(sources, nullptr, options);
  ASSERT_TRUE(transport.ok());
  auto channel = (*transport)->OpenChannel();
  ASSERT_TRUE(channel.ok());

  const std::vector<int> order = {0, 1, 2, 3};
  const std::vector<int> counts = {2, 3, 4, 1};
  (*channel)->StageVisitOrder(0, order, counts);
  EXPECT_LE((*channel)->in_flight(), 2);
  EXPECT_GE((*channel)->counters().prefetches_issued, 2u);

  for (size_t i = 0; i < order.size(); ++i) {
    const TransportAttemptResult result =
        (*channel)->PerformAttempt(order[i], 0, 0, counts[i]);
    EXPECT_FALSE(result.failed);
    ExpectPayloadEq(result.payload, ExpectedPayload(sources, order[i]));
  }
  const TransportCounters& counters = (*channel)->counters();
  EXPECT_EQ(counters.prefetches_issued, 4u);
  EXPECT_LE(counters.peak_in_flight, 2u);
  EXPECT_EQ(counters.requests, 4u);  // every visit rode its prefetch
  EXPECT_EQ(counters.hedges_fired, 0u);
}

TEST(TransportChannelTest, SyncModeNeverPrefetches) {
  const SourceSet sources = MakeFigure1Sources();
  TransportOptions options;
  options.max_in_flight = 1;
  auto transport = AsyncSourceTransport::Create(sources, nullptr, options);
  ASSERT_TRUE(transport.ok());
  auto channel = (*transport)->OpenChannel();
  ASSERT_TRUE(channel.ok());
  (*channel)->StageVisitOrder(0, std::vector<int>{0, 1, 2},
                              std::vector<int>{2, 3, 4});
  EXPECT_EQ((*channel)->in_flight(), 0);
  const TransportAttemptResult result = (*channel)->PerformAttempt(0, 0, 0, 2);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ((*channel)->counters().prefetches_issued, 0u);
  EXPECT_EQ((*channel)->counters().peak_in_flight, 1u);
}

TEST(TransportChannelTest, UnconsumedPrefetchesAreCountedWasted) {
  const SourceSet sources = MakeFigure1Sources();
  FaultModelOptions fault;  // default: no faults, but a real model object
  const auto model = FaultModel::Create(sources.NumSources(), fault);
  ASSERT_TRUE(model.ok());
  TransportOptions options;
  options.max_in_flight = 8;
  auto transport = AsyncSourceTransport::Create(sources, &*model, options);
  ASSERT_TRUE(transport.ok());
  {
    auto channel = (*transport)->OpenChannel();
    ASSERT_TRUE(channel.ok());
    // Stage a full draw but consume only the first visit; the rest of the
    // staged prefetches (already issued) must be discarded as wasted when
    // the next draw re-stages.
    (*channel)->StageVisitOrder(0, std::vector<int>{0, 1, 2, 3},
                                std::vector<int>{2, 3, 4, 1});
    (void)(*channel)->PerformAttempt(0, 0, 0, 2);
    (*channel)->StageVisitOrder(1, std::vector<int>{0}, std::vector<int>{2});
    (void)(*channel)->PerformAttempt(0, 1, 0, 2);
  }
  const TransportCounters merged = (*transport)->counters();
  EXPECT_EQ(merged.prefetches_issued, 5u);
  EXPECT_EQ(merged.prefetches_wasted, 3u);
  EXPECT_EQ(merged.requests, 5u);
  // Orphaned responses still in flight at close are dropped, so responses
  // may trail requests — but both consumed visits were ingested.
  EXPECT_LE(merged.responses, merged.requests);
  EXPECT_GE(merged.responses, 2u);
  EXPECT_GT(merged.bytes_received, 0u);
}

TEST(TransportChannelTest, HedgesFireOnStragglersAndNeverChangeResults) {
  const SourceSet sources = MakeFigure1Sources();
  TransportOptions options;
  options.endpoint.service_threads = 4;
  // Realize latency in wall time: ~0.2 ms per visit, with a keyed 25% of
  // request ids stretched 50x (~10 ms). A hedged duplicate re-rolls the
  // straggler draw under its fresh id, so it usually dodges the stall.
  options.endpoint.wall_ms_per_virtual_ms = 0.2;
  options.endpoint.straggler_fraction = 0.25;
  options.endpoint.straggler_multiplier = 50.0;
  options.hedge.enabled = true;
  options.hedge.percentile = 0.5;
  options.hedge.multiplier = 2.0;
  options.hedge.min_samples = 8;
  options.hedge.min_cutoff_ms = 0.5;
  options.poll_quantum_ms = 0.1;
  FaultModelOptions fault;  // default latency_base_ms = 1.0, no failures
  fault.transient_failure_prob = 0.0;
  fault.corrupt_value_prob = 0.0;
  const auto model = FaultModel::Create(sources.NumSources(), fault);
  ASSERT_TRUE(model.ok());

  auto transport = AsyncSourceTransport::Create(sources, &*model, options);
  ASSERT_TRUE(transport.ok());
  FlightRecorder recorder;
  auto channel = (*transport)->OpenChannel(nullptr, &recorder);
  ASSERT_TRUE(channel.ok());

  const auto expected = ExpectedPayload(sources, 2);
  for (int64_t epoch = 0; epoch < 300; ++epoch) {
    const TransportAttemptResult result =
        (*channel)->PerformAttempt(2, epoch, 0,
                                   static_cast<int>(expected.size()));
    // Hedging must never change what the sampler sees.
    EXPECT_FALSE(result.failed);
    EXPECT_DOUBLE_EQ(result.virtual_ms,
                     model->AttemptLatencyMs(2, epoch, 0,
                                             static_cast<int>(expected.size())));
    ExpectPayloadEq(result.payload, expected);
    if ((*channel)->counters().hedges_won > 0 && epoch >= 32) break;
  }

  const TransportCounters& counters = (*channel)->counters();
  EXPECT_GT(counters.hedges_fired, 0u);
  EXPECT_EQ(counters.hedges_won + counters.hedges_cancelled,
            counters.hedges_fired);

  const FlightSnapshot snapshot = recorder.Drain();
  bool saw_fired = false;
  for (const EventRecord& event : snapshot.events) {
    if (event.kind == FlightEventKind::kTransportHedgeFired) {
      saw_fired = true;
      int source = 0, attempt = 0;
      int64_t epoch = 0;
      UnpackTransportVisit(event.aux, &source, &epoch, &attempt);
      EXPECT_EQ(source, 2);
      EXPECT_EQ(attempt, 0);
      EXPECT_GE(event.value, options.hedge.min_cutoff_ms);
    }
  }
  EXPECT_TRUE(saw_fired);
}

TEST(TransportChannelTest, WallMappedModeChargesMeasuredBlocking) {
  const SourceSet sources = MakeFigure1Sources();
  TransportOptions options;
  options.latency_mode = LatencyChargeMode::kWallMapped;
  options.virtual_ms_per_wall_ms = 2.0;
  options.endpoint.wall_ms_per_virtual_ms = 0.5;  // ~0.5 ms real delay
  FaultModelOptions fault;
  const auto model = FaultModel::Create(sources.NumSources(), fault);
  ASSERT_TRUE(model.ok());
  auto transport = AsyncSourceTransport::Create(sources, &*model, options);
  ASSERT_TRUE(transport.ok());
  auto channel = (*transport)->OpenChannel();
  ASSERT_TRUE(channel.ok());
  // A demand visit blocks for the endpoint's (wall-realized) service delay,
  // so the mapped charge must be strictly positive.
  const TransportAttemptResult demand = (*channel)->PerformAttempt(0, 0, 0, 2);
  EXPECT_FALSE(demand.failed);
  EXPECT_GT(demand.virtual_ms, 0.0);
  EXPECT_TRUE(std::isfinite(demand.virtual_ms));
}

TEST(TransportChannelTest, MetricsFlushOnChannelClose) {
  const SourceSet sources = MakeFigure1Sources();
  MetricsRegistry metrics;
  TransportOptions options;
  auto transport = AsyncSourceTransport::Create(sources, nullptr, options);
  ASSERT_TRUE(transport.ok());
  {
    auto channel = (*transport)->OpenChannel(&metrics);
    ASSERT_TRUE(channel.ok());
    (*channel)->StageVisitOrder(0, std::vector<int>{0, 1},
                                std::vector<int>{2, 3});
    (void)(*channel)->PerformAttempt(0, 0, 0, 2);
    (void)(*channel)->PerformAttempt(1, 0, 0, 3);
  }
  const MetricsSnapshot snapshot = metrics.Snapshot();
  const auto counter_value = [&](std::string_view name) -> uint64_t {
    const CounterSample* sample = snapshot.FindCounter(name);
    return sample != nullptr ? sample->value : 0;
  };
  EXPECT_EQ(counter_value("transport_requests_total"), 2u);
  EXPECT_EQ(counter_value("transport_responses_total"), 2u);
  EXPECT_EQ(counter_value("transport_prefetches_issued_total"), 2u);
  EXPECT_EQ(counter_value("transport_prefetches_wasted_total"), 0u);
  EXPECT_GT(counter_value("transport_bytes_received_total"), 0u);
}

}  // namespace
}  // namespace vastats::transport
