#include "integration/grouped_query.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/grouped_extractor.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(HavingClauseTest, AllComparators) {
  HavingClause clause;
  clause.threshold = 10.0;
  clause.comparator = HavingComparator::kGreater;
  EXPECT_TRUE(clause.Test(10.5));
  EXPECT_FALSE(clause.Test(10.0));
  clause.comparator = HavingComparator::kGreaterEqual;
  EXPECT_TRUE(clause.Test(10.0));
  EXPECT_FALSE(clause.Test(9.9));
  clause.comparator = HavingComparator::kLess;
  EXPECT_TRUE(clause.Test(9.0));
  EXPECT_FALSE(clause.Test(10.0));
  clause.comparator = HavingComparator::kLessEqual;
  EXPECT_TRUE(clause.Test(10.0));
  EXPECT_FALSE(clause.Test(10.1));
}

TEST(GroupedAggregateQueryTest, Validation) {
  GroupedAggregateQuery query;
  query.name = "q";
  EXPECT_FALSE(query.Validate().ok());  // no groups
  query.groups.push_back(QueryGroup{"empty", {}});
  EXPECT_FALSE(query.Validate().ok());  // empty group
  query.groups[0].components = {1, 2};
  EXPECT_TRUE(query.Validate().ok());
}

TEST(GroupedAggregateQueryTest, GroupQueryFlattens) {
  GroupedAggregateQuery query;
  query.name = "avg-temp";
  query.aggregate = AggregateKind::kAverage;
  query.groups.push_back(QueryGroup{"june", {1, 2, 3}});
  query.groups.push_back(QueryGroup{"july", {4, 5}});
  const AggregateQuery june = query.GroupQuery(0);
  EXPECT_EQ(june.name, "avg-temp/june");
  EXPECT_EQ(june.kind, AggregateKind::kAverage);
  EXPECT_EQ(june.components, (std::vector<ComponentId>{1, 2, 3}));
  EXPECT_EQ(query.GroupQuery(1).components,
            (std::vector<ComponentId>{4, 5}));
}

TEST(GroupComponentsByTest, PartitionsByKey) {
  const std::vector<ComponentId> components = {10, 11, 12, 13, 14};
  const std::vector<std::string> keys = {"a", "b", "a", "c", "b"};
  const GroupedAggregateQuery query =
      GroupComponentsBy("g", AggregateKind::kSum, components, keys);
  ASSERT_EQ(query.groups.size(), 3u);
  EXPECT_EQ(query.groups[0].key, "a");
  EXPECT_EQ(query.groups[0].components, (std::vector<ComponentId>{10, 12}));
  EXPECT_EQ(query.groups[1].key, "b");
  EXPECT_EQ(query.groups[1].components, (std::vector<ComponentId>{11, 14}));
  EXPECT_EQ(query.groups[2].key, "c");
  EXPECT_EQ(query.groups[2].components, (std::vector<ComponentId>{13}));
}

class GroupedEvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sources_ = testing::MakeFigure1Sources();
    // Two groups over the Figure 1 components: "cold" = Surrey+Richmond
    // (values 15 and 18), "warm" = Burnaby+Vancouver (values 17..22).
    query_.name = "avg-by-area";
    query_.aggregate = AggregateKind::kAverage;
    query_.groups.push_back(QueryGroup{"warm", {1, 2, 4}});
    query_.groups.push_back(QueryGroup{"cold", {3, 5}});
    options_.initial_sample_size = 150;
    options_.weight_probes = 5;
    options_.kde.rule = BandwidthRule::kSilverman;
  }

  SourceSet sources_;
  GroupedAggregateQuery query_;
  ExtractorOptions options_;
};

TEST_F(GroupedEvaluatorTest, PerGroupStatistics) {
  const auto evaluator =
      GroupedQueryEvaluator::Create(&sources_, query_, options_);
  ASSERT_TRUE(evaluator.ok()) << evaluator.status().ToString();
  const auto answer = evaluator->Evaluate();
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_EQ(answer->groups.size(), 2u);
  // Warm group: averages of (19..21, 17..22, 20) => around 19-21.
  EXPECT_GT(answer->groups[0].statistics.mean.value, 18.5);
  EXPECT_LT(answer->groups[0].statistics.mean.value, 21.5);
  // Cold group: average of 15 and 18 = 16.5 always.
  EXPECT_NEAR(answer->groups[1].statistics.mean.value, 16.5, 0.01);
  // No HAVING: both groups pass trivially.
  EXPECT_DOUBLE_EQ(answer->groups[0].having_probability, 1.0);
  EXPECT_EQ(answer->PassingKeys(0.99).size(), 2u);
}

TEST_F(GroupedEvaluatorTest, HavingProbabilityIsFractionOfViableAnswers) {
  query_.has_having = true;
  query_.having.aggregate = AggregateKind::kAverage;
  query_.having.comparator = HavingComparator::kGreater;
  query_.having.threshold = 17.0;
  const auto evaluator =
      GroupedQueryEvaluator::Create(&sources_, query_, options_);
  ASSERT_TRUE(evaluator.ok());
  const auto answer = evaluator->Evaluate();
  ASSERT_TRUE(answer.ok());
  // Warm group always averages > 17; cold group always 16.5 < 17.
  EXPECT_DOUBLE_EQ(answer->groups[0].having_probability, 1.0);
  EXPECT_DOUBLE_EQ(answer->groups[1].having_probability, 0.0);
  EXPECT_EQ(answer->PassingKeys(0.95),
            (std::vector<std::string>{"warm"}));
}

TEST_F(GroupedEvaluatorTest, ProbabilisticHavingOnBoundaryThreshold) {
  // Threshold inside the warm group's viable range: pass probability must
  // be strictly between 0 and 1.
  query_.has_having = true;
  query_.having.aggregate = AggregateKind::kAverage;
  query_.having.comparator = HavingComparator::kGreater;
  // Warm viable averages: (c1 in {19,21}, c2 in {17,19,22}, c4=20)/3,
  // so between 18.67 and 21. Use 19.5.
  query_.having.threshold = 19.5;
  const auto evaluator =
      GroupedQueryEvaluator::Create(&sources_, query_, options_);
  ASSERT_TRUE(evaluator.ok());
  const auto answer = evaluator->Evaluate();
  ASSERT_TRUE(answer.ok());
  EXPECT_GT(answer->groups[0].having_probability, 0.05);
  EXPECT_LT(answer->groups[0].having_probability, 0.95);
}

TEST_F(GroupedEvaluatorTest, HavingOnDifferentAggregate) {
  // SELECT average but HAVING on the max: cold group max = 18 > 17.
  query_.has_having = true;
  query_.having.aggregate = AggregateKind::kMax;
  query_.having.comparator = HavingComparator::kGreater;
  query_.having.threshold = 17.0;
  const auto evaluator =
      GroupedQueryEvaluator::Create(&sources_, query_, options_);
  ASSERT_TRUE(evaluator.ok());
  const auto answer = evaluator->Evaluate();
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->groups[1].having_probability, 1.0);
}

TEST_F(GroupedEvaluatorTest, UncoveredGroupRejectedAtCreate) {
  query_.groups.push_back(QueryGroup{"ghost", {999}});
  const auto evaluator =
      GroupedQueryEvaluator::Create(&sources_, query_, options_);
  EXPECT_FALSE(evaluator.ok());
}

}  // namespace
}  // namespace vastats
