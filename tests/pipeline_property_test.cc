// Cross-cutting property sweeps over the whole Algorithm-1 pipeline:
// invariants that must hold for every workload shape, aggregate kind, and
// seed — the kind of failure-injection net that catches integration
// regressions no unit test sees.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "sampling/exhaustive.h"
#include "test_util.h"
#include "vastats/vastats.h"

namespace vastats {
namespace {

struct PipelineCase {
  const char* name;
  AggregateKind kind;
  ConflictModel conflict;
  int num_sources;
  int num_components;
  uint64_t seed;
};

class PipelineInvariants : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineInvariants, HoldEndToEnd) {
  const PipelineCase& test_case = GetParam();
  const auto mixture = MakeD2(test_case.seed);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = test_case.num_sources;
  source_options.num_components = test_case.num_components;
  source_options.min_copies = 2;
  source_options.max_copies =
      std::min(5, test_case.num_sources);
  source_options.conflict_model = test_case.conflict;
  source_options.seed = test_case.seed + 1;
  SourceSet sources =
      BuildSyntheticSourceSet(*mixture, source_options).value();

  AggregateQuery query = MakeRangeQuery("q", test_case.kind, 0,
                                        test_case.num_components);
  ExtractorOptions options;
  options.initial_sample_size = 120;
  options.weight_probes = 8;
  options.seed = test_case.seed + 2;
  const auto extractor =
      AnswerStatisticsExtractor::Create(&sources, query, options);
  ASSERT_TRUE(extractor.ok()) << extractor.status().ToString();
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // --- Point estimates.
  EXPECT_TRUE(std::isfinite(stats->mean.value));
  EXPECT_GE(stats->variance.value, 0.0);
  EXPECT_GE(stats->std_dev.value, 0.0);
  EXPECT_LE(stats->mean.ci.lo, stats->mean.ci.hi);
  // The bagged mean sits inside (or at worst on) its own CI.
  EXPECT_GE(stats->mean.value, stats->mean.ci.lo - 1e-9);
  EXPECT_LE(stats->mean.value, stats->mean.ci.hi + 1e-9);

  // --- Samples inside the viable envelope (monotone aggregates only).
  if (IsComponentwiseMonotone(test_case.kind)) {
    const auto range = ViableRange(sources, query);
    ASSERT_TRUE(range.ok());
    for (const double v : stats->samples) {
      EXPECT_GE(v, range->first - 1e-9);
      EXPECT_LE(v, range->second + 1e-9);
    }
  }

  // --- Density.
  EXPECT_NEAR(stats->density.TotalMass(), 1.0, 1e-6);
  for (const double f : stats->density.values()) EXPECT_GE(f, 0.0);

  // --- Coverage intervals.
  EXPECT_GE(stats->coverage.total_coverage, 0.0);
  EXPECT_LE(stats->coverage.total_coverage, 1.0 + 1e-9);
  EXPECT_GE(stats->coverage.total_length_fraction, 0.0);
  EXPECT_LE(stats->coverage.total_length_fraction, 1.0 + 1e-9);
  double previous_hi = -1e300;
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    EXPECT_LT(interval.lo, interval.hi);
    EXPECT_GT(interval.lo, previous_hi);  // disjoint and ordered
    previous_hi = interval.hi;
    EXPECT_GE(interval.lo, stats->density.x_min() - 1e-9);
    EXPECT_LE(interval.hi, stats->density.x_max() + 1e-9);
  }

  // --- Stability.
  EXPECT_GT(stats->stability.change_ratio, 0.0);
  EXPECT_LT(stats->stability.change_ratio, 1.0);
  EXPECT_GT(stats->stability.bandwidth, 0.0);
  EXPECT_FALSE(std::isnan(stats->stability.stab_l2));
  EXPECT_FALSE(std::isnan(stats->stability.stab_bh));
  EXPECT_GE(stats->answer_weight_y, 1.0);
  EXPECT_LE(stats->answer_weight_y,
            static_cast<double>(test_case.num_sources));
}

std::vector<PipelineCase> AllPipelineCases() {
  std::vector<PipelineCase> cases;
  int variant = 0;
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kMedian,
        AggregateKind::kVariance, AggregateKind::kStdDev,
        AggregateKind::kMin, AggregateKind::kMax}) {
    for (const ConflictModel conflict :
         {ConflictModel::kSharedBaseNoise, ConflictModel::kIndependentRedraw}) {
      cases.push_back(PipelineCase{
          "", kind, conflict, 15 + (variant % 3) * 10, 25 + (variant % 4) * 15,
          900 + static_cast<uint64_t>(variant)});
      ++variant;
    }
  }
  return cases;
}

std::string PipelineCaseName(
    const ::testing::TestParamInfo<PipelineCase>& info) {
  std::string name(AggregateKindToString(info.param.kind));
  name += info.param.conflict == ConflictModel::kSharedBaseNoise
              ? "_sharednoise"
              : "_redraw";
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllShapes, PipelineInvariants,
                         ::testing::ValuesIn(AllPipelineCases()),
                         PipelineCaseName);

}  // namespace
}  // namespace vastats
