#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "datagen/fault_model.h"
#include "datagen/source_accessor.h"
#include "stats/aggregate_query.h"
#include "sampling/adaptive.h"
#include "sampling/parallel.h"
#include "sampling/unis.h"
#include "sampling/weighted.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

using ::vastats::testing::MakeFigure1Query;
using ::vastats::testing::MakeFigure1Sources;

// Three disjoint sources: each component is bound exactly once, so any
// partial draw's aggregate is an exact function of which sources answered.
// Excluding C leaves components {1, 2, 3, 4} with values {1, 2, 3, 4}.
SourceSet MakePartitionSources() {
  SourceSet set;
  DataSource a("A");
  a.Bind(1, 1.0);
  a.Bind(2, 2.0);
  DataSource b("B");
  b.Bind(3, 3.0);
  b.Bind(4, 4.0);
  DataSource c("C");
  c.Bind(5, 100.0);
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  set.AddSource(std::move(c));
  return set;
}

AggregateQuery PartitionQuery(AggregateKind kind) {
  AggregateQuery query;
  query.name = "partition";
  query.kind = kind;
  query.components = {1, 2, 3, 4, 5};
  return query;
}

struct PartialCase {
  AggregateKind kind;
  double expected;  // aggregate over {1, 2, 3, 4} with source C excluded
};

// Satellite: partially-covered draws must finalize to the exact aggregate
// of the covered subset for all five paper aggregates — MEDIAN (holistic)
// and VARIANCE (population, Eq. 1.1-style) included.
TEST(PartialCoverageTest, FiveAggregatesFinalizeExactlyOverCoveredSubset) {
  const PartialCase cases[] = {
      {AggregateKind::kSum, 10.0},     {AggregateKind::kAverage, 2.5},
      {AggregateKind::kCount, 4.0},    {AggregateKind::kVariance, 1.25},
      {AggregateKind::kMedian, 2.5},
  };
  const SourceSet set = MakePartitionSources();
  const std::vector<char> excluded = {0, 0, 1};  // drop C -> coverage 4/5
  for (const PartialCase& c : cases) {
    UniSOptions options;
    options.require_full_coverage = false;
    const auto sampler =
        UniSSampler::Create(&set, PartitionQuery(c.kind), options);
    ASSERT_TRUE(sampler.ok());
    Rng rng(99);
    const auto sample = sampler->SampleOne(rng, excluded);
    ASSERT_TRUE(sample.ok());
    EXPECT_TRUE(sample->value_valid);
    EXPECT_DOUBLE_EQ(sample->coverage, 0.8);
    EXPECT_DOUBLE_EQ(sample->value, c.expected);
    EXPECT_EQ(sample->sources_contributing, 2);
  }
}

TEST(PartialCoverageTest, DegradedDrawMatchesExactSubsetAggregates) {
  const PartialCase cases[] = {
      {AggregateKind::kSum, 10.0},     {AggregateKind::kAverage, 2.5},
      {AggregateKind::kCount, 4.0},    {AggregateKind::kVariance, 1.25},
      {AggregateKind::kMedian, 2.5},
  };
  const SourceSet set = MakePartitionSources();
  const std::vector<char> excluded = {0, 0, 1};
  const auto accessor = SourceAccessor::Create(3, nullptr);
  ASSERT_TRUE(accessor.ok());
  for (const PartialCase& c : cases) {
    const auto sampler = UniSSampler::Create(&set, PartitionQuery(c.kind));
    ASSERT_TRUE(sampler.ok());
    AccessSession session = accessor->StartSession();
    Rng rng(99);
    session.BeginNextDraw();
    const auto sample = sampler->SampleOneDegraded(rng, session, excluded);
    ASSERT_TRUE(sample.ok());
    EXPECT_TRUE(sample->value_valid);
    EXPECT_DOUBLE_EQ(sample->coverage, 0.8);
    EXPECT_DOUBLE_EQ(sample->value, c.expected);
  }
}

TEST(DegradedSamplingTest, ZeroCoverageDrawIsInvalidAndBatchDropsIt) {
  const SourceSet set = MakeFigure1Sources();
  FaultModelOptions fault;
  fault.outage_fraction = 1.0;  // every source dark from epoch 0
  fault.outage_epoch = 0;
  const auto model = FaultModel::Create(4, fault);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 2;
  const auto accessor = SourceAccessor::Create(4, &*model, retry);
  ASSERT_TRUE(accessor.ok());
  const auto sampler =
      UniSSampler::Create(&set, MakeFigure1Query(AggregateKind::kAverage));
  ASSERT_TRUE(sampler.ok());

  AccessSession one_session = accessor->StartSession();
  Rng rng(3);
  one_session.BeginNextDraw();
  const auto sample = sampler->SampleOneDegraded(rng, one_session);
  ASSERT_TRUE(sample.ok());
  EXPECT_FALSE(sample->value_valid);
  EXPECT_DOUBLE_EQ(sample->coverage, 0.0);
  EXPECT_GT(sample->sources_failed + sample->sources_skipped_open, 0);

  AccessSession batch_session = accessor->StartSession();
  Rng batch_rng(3);
  const auto batch = sampler->SampleDegraded(16, batch_rng, batch_session);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
  const AccessStats stats = batch_session.Finish();
  EXPECT_GT(stats.failed_visits, 0u);
}

TEST(DegradedSamplingTest, NullModelDegradedMatchesPlainSampler) {
  const SourceSet set = MakeFigure1Sources();
  const auto sampler =
      UniSSampler::Create(&set, MakeFigure1Query(AggregateKind::kAverage));
  ASSERT_TRUE(sampler.ok());
  const auto accessor = SourceAccessor::Create(4, nullptr);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  Rng plain_rng(12345);
  Rng degraded_rng(12345);
  for (int draw = 0; draw < 32; ++draw) {
    const auto plain = sampler->SampleOne(plain_rng);
    ASSERT_TRUE(plain.ok());
    session.BeginNextDraw();
    const auto degraded = sampler->SampleOneDegraded(degraded_rng, session);
    ASSERT_TRUE(degraded.ok());
    EXPECT_TRUE(degraded->value_valid);
    EXPECT_DOUBLE_EQ(degraded->value, plain->value);
    EXPECT_DOUBLE_EQ(degraded->coverage, plain->coverage);
    EXPECT_EQ(degraded->sources_visited, plain->sources_visited);
    EXPECT_EQ(degraded->sources_contributing, plain->sources_contributing);
  }
}

TEST(DegradedSamplingTest, WeightedDegradedMatchesPlainAndDropsDarkDraws) {
  const SourceSet set = MakeFigure1Sources();
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const auto sampler = WeightedUniSSampler::Create(
      &set, MakeFigure1Query(AggregateKind::kAverage), weights);
  ASSERT_TRUE(sampler.ok());

  const auto accessor = SourceAccessor::Create(4, nullptr);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  Rng plain_rng(777);
  Rng degraded_rng(777);
  for (int draw = 0; draw < 16; ++draw) {
    const auto plain = sampler->SampleOne(plain_rng);
    ASSERT_TRUE(plain.ok());
    session.BeginNextDraw();
    const auto degraded = sampler->SampleOneDegraded(degraded_rng, session);
    ASSERT_TRUE(degraded.ok());
    EXPECT_TRUE(degraded->value_valid);
    EXPECT_DOUBLE_EQ(degraded->value, *plain);
    EXPECT_DOUBLE_EQ(degraded->coverage, 1.0);
  }

  FaultModelOptions fault;
  fault.outage_fraction = 1.0;
  fault.outage_epoch = 0;
  const auto model = FaultModel::Create(4, fault);
  ASSERT_TRUE(model.ok());
  const auto dark_accessor = SourceAccessor::Create(4, &*model);
  ASSERT_TRUE(dark_accessor.ok());
  AccessSession dark_session = dark_accessor->StartSession();
  Rng dark_rng(777);
  const auto batch = sampler->SampleDegraded(8, dark_rng, dark_session);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

// Tentpole acceptance: a chaos run's kept values, coverages, dropped count,
// and merged access telemetry are bit-identical across serial,
// thread-per-call (1/4/16 workers), and pool (1/4/16 threads) execution.
TEST(ParallelFaultDeterminismTest, ChaosRunIsBitIdenticalAcrossWidths) {
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 60;
  source_options.min_copies = 3;
  source_options.max_copies = 5;
  source_options.seed = 51;
  const auto d2 = MakeD2(7);
  const auto set = BuildSyntheticSourceSet(*d2, source_options);
  ASSERT_TRUE(set.ok());
  const auto sampler = UniSSampler::Create(
      &*set, MakeRangeQuery("chaos", AggregateKind::kAverage, 0, 60));
  ASSERT_TRUE(sampler.ok());

  FaultModelOptions fault;
  fault.transient_failure_prob = 0.2;
  fault.failure_spread_sigma = 0.5;
  fault.corrupt_value_prob = 0.05;
  fault.latency_jitter_sigma = 0.3;
  fault.outage_fraction = 0.2;
  fault.outage_epoch = 128;
  fault.seed = 4242;
  const auto model = FaultModel::Create(30, fault);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base_ms = 2.0;
  const auto accessor = SourceAccessor::Create(30, &*model, retry);
  ASSERT_TRUE(accessor.ok());

  ParallelSampleOptions base;
  base.seed = 0xc0ffee;
  base.chunk_draws = 64;
  base.num_threads = 1;
  const auto reference =
      ParallelUniSSampleWithFaults(*sampler, 256, *accessor, 0.3, base);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->values.empty());
  EXPECT_EQ(reference->values.size(), reference->coverages.size());
  EXPECT_GT(reference->access.visits, 0u);

  const auto expect_identical = [&](const FaultAwareSampleResult& got) {
    ASSERT_EQ(got.values.size(), reference->values.size());
    for (size_t i = 0; i < got.values.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.values[i], reference->values[i]);
      EXPECT_DOUBLE_EQ(got.coverages[i], reference->coverages[i]);
    }
    EXPECT_EQ(got.dropped_draws, reference->dropped_draws);
    EXPECT_EQ(got.access.visits, reference->access.visits);
    EXPECT_EQ(got.access.attempts, reference->access.attempts);
    EXPECT_EQ(got.access.retries, reference->access.retries);
    EXPECT_EQ(got.access.transient_failures,
              reference->access.transient_failures);
    EXPECT_EQ(got.access.failed_visits, reference->access.failed_visits);
    EXPECT_EQ(got.access.breaker_open_skips,
              reference->access.breaker_open_skips);
    EXPECT_EQ(got.access.corrupt_values_rejected,
              reference->access.corrupt_values_rejected);
    EXPECT_EQ(got.access.breaker_transitions,
              reference->access.breaker_transitions);
    EXPECT_DOUBLE_EQ(got.access.virtual_ms, reference->access.virtual_ms);
    EXPECT_DOUBLE_EQ(got.access.backoff_ms, reference->access.backoff_ms);
    EXPECT_EQ(got.access.breaker_severity, reference->access.breaker_severity);
  };

  for (const int threads : {4, 16}) {
    ParallelSampleOptions options = base;
    options.num_threads = threads;
    const auto result =
        ParallelUniSSampleWithFaults(*sampler, 256, *accessor, 0.3, options);
    ASSERT_TRUE(result.ok());
    expect_identical(*result);
  }
  for (const int pool_threads : {1, 4, 16}) {
    ThreadPool pool(ThreadPoolOptions{pool_threads});
    ParallelSampleOptions options = base;
    options.pool = &pool;
    const auto result =
        ParallelUniSSampleWithFaults(*sampler, 256, *accessor, 0.3, options);
    ASSERT_TRUE(result.ok());
    expect_identical(*result);
  }
}

TEST(ParallelFaultDeterminismTest, RejectsBadArguments) {
  const SourceSet set = MakeFigure1Sources();
  const auto sampler =
      UniSSampler::Create(&set, MakeFigure1Query(AggregateKind::kAverage));
  ASSERT_TRUE(sampler.ok());
  const auto accessor = SourceAccessor::Create(4, nullptr);
  ASSERT_TRUE(accessor.ok());
  ParallelSampleOptions options;
  options.num_threads = 1;
  EXPECT_FALSE(
      ParallelUniSSampleWithFaults(*sampler, 0, *accessor, 0.5, options).ok());
  EXPECT_FALSE(
      ParallelUniSSampleWithFaults(*sampler, 8, *accessor, 1.5, options).ok());
  // An accessor narrower than the source set cannot cover its visits.
  const auto narrow = SourceAccessor::Create(2, nullptr);
  ASSERT_TRUE(narrow.ok());
  EXPECT_FALSE(
      ParallelUniSSampleWithFaults(*sampler, 8, *narrow, 0.5, options).ok());
}

TEST(AdaptiveDegradedTest, ReportsCoveragesAndRequestedDraws) {
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 20;
  source_options.num_components = 30;
  source_options.min_copies = 3;
  source_options.max_copies = 5;
  source_options.seed = 9;
  const auto d2 = MakeD2(11);
  const auto set = BuildSyntheticSourceSet(*d2, source_options);
  ASSERT_TRUE(set.ok());
  const auto sampler = UniSSampler::Create(
      &*set, MakeRangeQuery("adaptive", AggregateKind::kAverage, 0, 30));
  ASSERT_TRUE(sampler.ok());

  FaultModelOptions fault;
  fault.transient_failure_prob = 0.3;
  fault.seed = 5;
  const auto model = FaultModel::Create(20, fault);
  ASSERT_TRUE(model.ok());
  const auto accessor = SourceAccessor::Create(20, &*model);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();

  AdaptiveSamplingOptions options;
  options.initial_size = 40;
  options.increment = 20;
  options.max_size = 120;
  options.target_ci_length = 1e6;  // satisfied after the first check
  Rng rng(88);
  const auto result =
      AdaptiveUniSSamplingDegraded(*sampler, options, session, 0.5, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->coverages.size(), result->samples.size());
  EXPECT_GE(result->draws_requested,
            static_cast<int>(result->samples.size()) + result->dropped_draws);
  for (const double coverage : result->coverages) {
    EXPECT_GE(coverage, 0.5);
    EXPECT_LE(coverage, 1.0);
  }
}

TEST(AdaptiveDegradedTest, FailsWhenNoUsableDrawsExist) {
  const SourceSet set = MakeFigure1Sources();
  const auto sampler =
      UniSSampler::Create(&set, MakeFigure1Query(AggregateKind::kAverage));
  ASSERT_TRUE(sampler.ok());
  FaultModelOptions fault;
  fault.outage_fraction = 1.0;
  fault.outage_epoch = 0;
  const auto model = FaultModel::Create(4, fault);
  ASSERT_TRUE(model.ok());
  const auto accessor = SourceAccessor::Create(4, &*model);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  AdaptiveSamplingOptions options;
  options.initial_size = 8;
  options.increment = 8;
  options.max_size = 32;
  options.target_ci_length = 1.0;
  Rng rng(88);
  const auto result =
      AdaptiveUniSSamplingDegraded(*sampler, options, session, 0.5, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace vastats
