#include "fusion/fusion.h"

#include <vector>

#include <gtest/gtest.h>

#include "sampling/exhaustive.h"
#include "test_util.h"

namespace vastats {
namespace {

// One component with values {10, 10.2, 30}: two agreeing sources and one
// outlier.
SourceSet MakeOutlierSources() {
  SourceSet set;
  DataSource a("a"), b("b"), c("c");
  a.Bind(1, 10.0);
  b.Bind(1, 10.2);
  c.Bind(1, 30.0);
  // A second component everyone agrees on (keeps trust estimation sane).
  a.Bind(2, 5.0);
  b.Bind(2, 5.0);
  c.Bind(2, 5.1);
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  set.AddSource(std::move(c));
  return set;
}

TEST(FusionOptionsTest, Validation) {
  FusionOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.vote_tolerance = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.truth_finder_iterations = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(FuseComponentsTest, VotePicksAgreeingCluster) {
  const SourceSet sources = MakeOutlierSources();
  FusionOptions options;
  options.rule = FusionRule::kVote;
  options.vote_tolerance = 0.5;
  const std::vector<ComponentId> components = {1};
  const auto fused = FuseComponents(sources, components, options);
  ASSERT_TRUE(fused.ok());
  EXPECT_NEAR(fused->fused_values.at(1), 10.1, 1e-9);  // cluster mean
}

TEST(FuseComponentsTest, MedianAndMean) {
  const SourceSet sources = MakeOutlierSources();
  const std::vector<ComponentId> components = {1};
  FusionOptions median;
  median.rule = FusionRule::kMedian;
  EXPECT_NEAR(
      FuseComponents(sources, components, median)->fused_values.at(1), 10.2,
      1e-12);
  FusionOptions mean;
  mean.rule = FusionRule::kMean;
  EXPECT_NEAR(FuseComponents(sources, components, mean)->fused_values.at(1),
              (10.0 + 10.2 + 30.0) / 3.0, 1e-12);
}

TEST(FuseComponentsTest, VoteTieBreaksTowardsMedian) {
  SourceSet set;
  DataSource a("a"), b("b"), c("c"), d("d");
  // Two clusters of size 2: {1.0, 1.1} and {9.0, 9.1}, median ~5.05; the
  // clusters are symmetric, so either could win — check determinism and
  // that a cluster mean is returned.
  a.Bind(1, 1.0);
  b.Bind(1, 1.1);
  c.Bind(1, 9.0);
  d.Bind(1, 9.1);
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  set.AddSource(std::move(c));
  set.AddSource(std::move(d));
  FusionOptions options;
  options.rule = FusionRule::kVote;
  options.vote_tolerance = 0.5;
  const std::vector<ComponentId> components = {1};
  const auto fused = FuseComponents(set, components, options);
  ASSERT_TRUE(fused.ok());
  const double v = fused->fused_values.at(1);
  EXPECT_TRUE(std::fabs(v - 1.05) < 1e-9 || std::fabs(v - 9.05) < 1e-9);
}

TEST(FuseComponentsTest, TruthFinderDowngradesDeviantSource) {
  // 20 components: sources a and b agree; source c always deviates by +20.
  SourceSet set;
  DataSource a("a"), b("b"), c("c");
  for (ComponentId k = 0; k < 20; ++k) {
    a.Bind(k, static_cast<double>(k));
    b.Bind(k, static_cast<double>(k) + 0.1);
    c.Bind(k, static_cast<double>(k) + 20.0);
  }
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  set.AddSource(std::move(c));
  std::vector<ComponentId> components;
  for (ComponentId k = 0; k < 20; ++k) components.push_back(k);

  FusionOptions options;
  options.rule = FusionRule::kTruthFinder;
  options.vote_tolerance = 0.5;
  const auto fused = FuseComponents(set, components, options);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused->source_trust.size(), 3u);
  EXPECT_GT(fused->source_trust[0], fused->source_trust[2]);
  EXPECT_GT(fused->source_trust[1], fused->source_trust[2]);
  // Resolved values follow the majority, not the deviant.
  for (ComponentId k = 0; k < 20; ++k) {
    EXPECT_NEAR(fused->fused_values.at(k), static_cast<double>(k), 0.2)
        << "component " << k;
  }
}

TEST(FusedAggregateTest, ScalarInsideViableRange) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  const auto range = ViableRange(sources, query);
  ASSERT_TRUE(range.ok());
  for (const FusionRule rule : {FusionRule::kVote, FusionRule::kMedian,
                                FusionRule::kMean, FusionRule::kTruthFinder}) {
    FusionOptions options;
    options.rule = rule;
    options.vote_tolerance = 1.0;
    const auto fused = FusedAggregate(sources, query, options);
    ASSERT_TRUE(fused.ok());
    EXPECT_GE(fused.value(), range->first - 1e-9);
    EXPECT_LE(fused.value(), range->second + 1e-9);
  }
}

TEST(FusedAggregateTest, FusionHidesTheSecondaryMode) {
  // The paper's central contrast: with a unit-error stratum, fusion commits
  // to one value per component — the answer distribution's secondary mode
  // (the information that something is wrong) disappears.
  SourceSet set;
  DataSource a("celsius-a"), b("celsius-b"), f("fahrenheit");
  for (ComponentId k = 0; k < 10; ++k) {
    const double celsius = 15.0 + static_cast<double>(k);
    a.Bind(k, celsius);
    b.Bind(k, celsius + 0.2);
    f.Bind(k, celsius * 9.0 / 5.0 + 32.0);
  }
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  set.AddSource(std::move(f));
  AggregateQuery query = MakeRangeQuery("sum", AggregateKind::kSum, 0, 10);

  FusionOptions options;
  options.rule = FusionRule::kVote;
  options.vote_tolerance = 1.0;
  const auto fused = FusedAggregate(set, query, options);
  ASSERT_TRUE(fused.ok());
  // Fusion lands on the Celsius consensus sum (~195-197)...
  EXPECT_NEAR(fused.value(), 196.0, 2.0);
  // ...while the viable range exposes the Fahrenheit contamination.
  const auto range = ViableRange(set, query);
  ASSERT_TRUE(range.ok());
  EXPECT_GT(range->second, 600.0);
}

TEST(FuseComponentsTest, Validation) {
  const SourceSet sources = MakeOutlierSources();
  FusionOptions options;
  EXPECT_FALSE(FuseComponents(sources, {}, options).ok());
  const std::vector<ComponentId> missing = {99};
  EXPECT_FALSE(FuseComponents(sources, missing, options).ok());
}

}  // namespace
}  // namespace vastats
