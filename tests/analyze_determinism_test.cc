// The analyzer must be bit-identical at any pool width: findings land in
// per-file slots and merge in walk order, so 1, 4, and 16 workers (and the
// shared default pool) all render the same report.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine.h"
#include "rules.h"

namespace vastats {
namespace analyze {
namespace {

std::string RenderedReport(const std::string& root, int threads) {
  AnalyzeOptions options;
  options.root = root;
  options.threads = threads;
  Result<AnalysisReport> report = AnalyzeRepo(options);
  EXPECT_TRUE(report.ok()) << report.status().message();
  if (!report.ok()) return "";
  std::string out;
  for (const Finding& finding : report.value().findings) {
    out += Render(finding) + "\n";
  }
  return out;
}

TEST(AnalyzeDeterminism, FixtureTreeBitIdenticalAcrossThreadCounts) {
  const std::string root =
      std::string(VASTATS_REPO_ROOT) + "/tools/analyze/testdata/repo";
  const std::string baseline = RenderedReport(root, 1);
  ASSERT_FALSE(baseline.empty());  // the fixture tree has planted findings
  EXPECT_EQ(RenderedReport(root, 4), baseline);
  EXPECT_EQ(RenderedReport(root, 16), baseline);
  EXPECT_EQ(RenderedReport(root, 0), baseline);  // shared default pool
}

TEST(AnalyzeDeterminism, RealTreeBitIdenticalAcrossThreadCounts) {
  const std::string root = VASTATS_REPO_ROOT;
  const std::string baseline = RenderedReport(root, 1);
  EXPECT_EQ(RenderedReport(root, 4), baseline);
  EXPECT_EQ(RenderedReport(root, 16), baseline);
  EXPECT_EQ(RenderedReport(root, 0), baseline);
}

TEST(AnalyzeDeterminism, RepeatedRunsAreStable) {
  const std::string root =
      std::string(VASTATS_REPO_ROOT) + "/tools/analyze/testdata/repo";
  const std::string first = RenderedReport(root, 8);
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(RenderedReport(root, 8), first);
  }
}

}  // namespace
}  // namespace analyze
}  // namespace vastats
