#include "stats/confidence.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/jackknife.h"
#include "test_util.h"
#include "util/random.h"

namespace vastats {
namespace {

struct CiFixture {
  std::vector<double> data;
  std::vector<double> replicates;
  std::vector<double> jackknife;
  double point_estimate = 0.0;
};

CiFixture MakeMeanFixture(int n, uint64_t seed, double mean = 10.0,
                          double sigma = 3.0, int num_sets = 400) {
  CiFixture fixture;
  fixture.data = testing::NormalSample(n, seed, mean, sigma);
  fixture.point_estimate = ComputeMoments(fixture.data).mean();
  Rng rng(seed + 1);
  BootstrapOptions options;
  options.num_sets = num_sets;
  fixture.replicates =
      BootstrapReplicates(fixture.data,
                          MomentStatisticFn(MomentStatistic::kMean), options,
                          rng)
          .value();
  fixture.jackknife =
      JackknifeMoment(fixture.data, MomentStatistic::kMean).value();
  return fixture;
}

TEST(ConfidenceIntervalTest, LengthAndContains) {
  const ConfidenceInterval ci{1.0, 3.0, 0.9};
  EXPECT_DOUBLE_EQ(ci.Length(), 2.0);
  EXPECT_TRUE(ci.Contains(2.0));
  EXPECT_TRUE(ci.Contains(1.0));
  EXPECT_FALSE(ci.Contains(3.5));
}

TEST(CiMethodToStringTest, AllNamed) {
  EXPECT_EQ(CiMethodToString(CiMethod::kNormal), "normal");
  EXPECT_EQ(CiMethodToString(CiMethod::kPercentile), "percentile");
  EXPECT_EQ(CiMethodToString(CiMethod::kBasic), "basic");
  EXPECT_EQ(CiMethodToString(CiMethod::kBca), "BCa");
}

class AllCiMethods : public ::testing::TestWithParam<CiMethod> {};

TEST_P(AllCiMethods, CoversTrueMeanOnGaussianData) {
  const CiMethod method = GetParam();
  const CiFixture fixture = MakeMeanFixture(400, 100);
  const auto ci = ComputeBootstrapCi(method, fixture.replicates,
                                     fixture.point_estimate, 0.90,
                                     fixture.jackknife);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci->lo, ci->hi);
  // True mean is 10; with n=400, sigma=3 the CI should cover it comfortably.
  EXPECT_TRUE(ci->Contains(10.0))
      << CiMethodToString(method) << " [" << ci->lo << ", " << ci->hi << "]";
  // Sane width: a 90% CI for the mean is about 2*1.645*3/20 = 0.49.
  EXPECT_GT(ci->Length(), 0.2);
  EXPECT_LT(ci->Length(), 1.2);
}

TEST_P(AllCiMethods, HigherConfidenceWiderInterval) {
  const CiMethod method = GetParam();
  const CiFixture fixture = MakeMeanFixture(300, 200);
  const auto narrow = ComputeBootstrapCi(method, fixture.replicates,
                                         fixture.point_estimate, 0.80,
                                         fixture.jackknife);
  const auto wide = ComputeBootstrapCi(method, fixture.replicates,
                                       fixture.point_estimate, 0.95,
                                       fixture.jackknife);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_LT(narrow->Length(), wide->Length());
}

TEST_P(AllCiMethods, RejectsBadLevel) {
  const CiMethod method = GetParam();
  const CiFixture fixture = MakeMeanFixture(50, 300);
  EXPECT_FALSE(ComputeBootstrapCi(method, fixture.replicates,
                                  fixture.point_estimate, 0.0,
                                  fixture.jackknife)
                   .ok());
  EXPECT_FALSE(ComputeBootstrapCi(method, fixture.replicates,
                                  fixture.point_estimate, 1.0,
                                  fixture.jackknife)
                   .ok());
}

INSTANTIATE_TEST_SUITE_P(Methods, AllCiMethods,
                         ::testing::Values(CiMethod::kNormal,
                                           CiMethod::kPercentile,
                                           CiMethod::kBasic, CiMethod::kBca));

TEST(BcaTest, RequiresJackknife) {
  const CiFixture fixture = MakeMeanFixture(50, 400);
  EXPECT_FALSE(ComputeBootstrapCi(CiMethod::kBca, fixture.replicates,
                                  fixture.point_estimate, 0.9, {})
                   .ok());
}

TEST(BcaTest, MatchesPercentileOnSymmetricData) {
  // With symmetric data and a well-centered estimator, z0 ~ 0 and a ~ 0, so
  // BCa should be close to the percentile interval.
  const CiFixture fixture = MakeMeanFixture(500, 500, 0.0, 1.0, 2000);
  const auto bca =
      BcaCi(fixture.replicates, fixture.point_estimate, 0.9,
            fixture.jackknife);
  const auto pct = PercentileCi(fixture.replicates, 0.9);
  ASSERT_TRUE(bca.ok());
  ASSERT_TRUE(pct.ok());
  EXPECT_NEAR(bca->lo, pct->lo, 0.02);
  EXPECT_NEAR(bca->hi, pct->hi, 0.02);
}

TEST(BcaTest, ShiftsIntervalOnSkewedStatistic) {
  // Variance of lognormal-ish data has a skewed sampling distribution; BCa
  // should differ visibly from the percentile interval.
  Rng rng(600);
  std::vector<double> data(200);
  for (double& v : data) v = std::exp(rng.Normal(0.0, 1.0));
  const double var_hat = ComputeMoments(data).SampleVariance();
  BootstrapOptions options;
  options.num_sets = 1500;
  Rng boot_rng(601);
  const auto replicates = BootstrapReplicates(
      data, MomentStatisticFn(MomentStatistic::kVariance), options, boot_rng);
  const auto jackknife = JackknifeMoment(data, MomentStatistic::kVariance);
  const auto bca = BcaCi(*replicates, var_hat, 0.9, *jackknife);
  const auto pct = PercentileCi(*replicates, 0.9);
  ASSERT_TRUE(bca.ok());
  ASSERT_TRUE(pct.ok());
  // For a right-skewed statistic, BCa shifts both endpoints upward.
  EXPECT_GT(bca->hi, pct->hi);
}

TEST(BcaTest, DegenerateAccelerationFallsBackToBiasCorrectedPercentile) {
  // Regression test for the BCa pole: with heavy skew, 1 - a*(z0 + z) can
  // go negative, which used to flip the adjusted quantile to the wrong tail
  // (alpha1 ~ 1 -> the "lower" endpoint landed at the replicate maximum).
  // Replicates 1..10000 with a point estimate below all of them clamp the
  // below-fraction to 0.5/b, so z0 ~ -3.89; at level 0.9999, z_lo ~ -3.89;
  // the jackknife ensemble below gives a ~ -0.14, making the lower-endpoint
  // denominator 1 - a*(z0 + z_lo) ~ -0.09 < 0.
  std::vector<double> replicates(10000);
  for (size_t i = 0; i < replicates.size(); ++i) {
    replicates[i] = static_cast<double>(i + 1);
  }
  std::vector<double> jackknife(10, 0.0);
  jackknife.back() = 10.0;
  const auto ci = BcaCi(replicates, 0.0, 0.9999, jackknife);
  ASSERT_TRUE(ci.ok());
  EXPECT_LE(ci->lo, ci->hi);
  // Pre-fix both endpoints collapsed onto the extreme upper tail
  // (hi = 10000). The bias-corrected percentile fallback keeps the interval
  // in the far lower tail where z0 points.
  EXPECT_LT(ci->hi, 100.0);
}

TEST(BcaTest, CoverageNearNominalOnSkewedStatistic) {
  // Empirical coverage of the BCa interval for the variance of exponential
  // data should be near 90% — and clearly better than catastrophic.
  const int kTrials = 120;
  const double true_variance = 1.0;  // Exp(1)
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(10'000 + static_cast<uint64_t>(trial));
    std::vector<double> data(150);
    for (double& v : data) v = rng.Exponential(1.0);
    const double var_hat = ComputeMoments(data).SampleVariance();
    BootstrapOptions options;
    options.num_sets = 300;
    const auto replicates =
        BootstrapReplicates(data,
                            MomentStatisticFn(MomentStatistic::kVariance),
                            options, rng);
    const auto jackknife = JackknifeMoment(data, MomentStatistic::kVariance);
    const auto ci = BcaCi(*replicates, var_hat, 0.90, *jackknife);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(true_variance)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GT(coverage, 0.75);
  EXPECT_LE(coverage, 1.0);
}

TEST(NormalCiTest, WidthMatchesReplicateSpread) {
  const CiFixture fixture = MakeMeanFixture(400, 700);
  const auto ci =
      NormalCi(fixture.replicates, fixture.point_estimate, 0.95);
  ASSERT_TRUE(ci.ok());
  const double sd = ComputeMoments(fixture.replicates).SampleStdDev();
  EXPECT_NEAR(ci->Length(), 2.0 * 1.959963984540054 * sd, 1e-9);
  EXPECT_NEAR(0.5 * (ci->lo + ci->hi), fixture.point_estimate, 1e-12);
}

TEST(BasicCiTest, ReflectsPercentileAroundEstimate) {
  const CiFixture fixture = MakeMeanFixture(100, 800);
  const auto pct = PercentileCi(fixture.replicates, 0.9);
  const auto basic =
      BasicCi(fixture.replicates, fixture.point_estimate, 0.9);
  ASSERT_TRUE(pct.ok());
  ASSERT_TRUE(basic.ok());
  EXPECT_NEAR(basic->lo, 2 * fixture.point_estimate - pct->hi, 1e-12);
  EXPECT_NEAR(basic->hi, 2 * fixture.point_estimate - pct->lo, 1e-12);
}

TEST(CiValidationTest, NeedsTwoReplicates) {
  const std::vector<double> one = {1.0};
  EXPECT_FALSE(PercentileCi(one, 0.9).ok());
  EXPECT_FALSE(NormalCi(one, 1.0, 0.9).ok());
}

}  // namespace
}  // namespace vastats
