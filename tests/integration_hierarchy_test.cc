#include "integration/hierarchy.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "sampling/unis.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(HierarchyOptionsTest, Validation) {
  HierarchyOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.fanout = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.edge_latency_ms = -1.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(AggregationHierarchyTest, BuildShapes) {
  HierarchyOptions options;
  options.fanout = 4;
  const auto hierarchy = AggregationHierarchy::Build(16, options);
  ASSERT_TRUE(hierarchy.ok());
  // 16 leaves + 4 relays + 1 root.
  EXPECT_EQ(hierarchy->NumNodes(), 21);
  EXPECT_EQ(hierarchy->Depth(), 2);
  EXPECT_EQ(hierarchy->num_sources(), 16);

  const auto single = AggregationHierarchy::Build(1, options);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->NumNodes(), 1);
  EXPECT_EQ(single->Depth(), 0);
  EXPECT_FALSE(AggregationHierarchy::Build(0, options).ok());
}

TEST(AggregationHierarchyTest, DepthShrinksWithFanout) {
  HierarchyOptions narrow;
  narrow.fanout = 2;
  HierarchyOptions wide;
  wide.fanout = 16;
  EXPECT_GT(AggregationHierarchy::Build(100, narrow)->Depth(),
            AggregationHierarchy::Build(100, wide)->Depth());
}

class HierarchyEvaluationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto mixture = MakeD2(70);
    SyntheticSourceSetOptions options;
    options.num_sources = 20;
    options.num_components = 40;
    options.seed = 71;
    sources_ = BuildSyntheticSourceSet(*mixture, options).value();
  }

  SourceSet sources_;
};

TEST_F(HierarchyEvaluationTest, MatchesFlatEvaluationForEveryKind) {
  // The partial-final push up the tree must agree exactly with the direct
  // (flat) evaluation of the same assignment, for every aggregate kind.
  HierarchyOptions hierarchy_options;
  hierarchy_options.fanout = 3;
  const auto hierarchy =
      AggregationHierarchy::Build(20, hierarchy_options);
  ASSERT_TRUE(hierarchy.ok());
  const QueryProcessor processor;
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kMedian,
        AggregateKind::kVariance, AggregateKind::kMin, AggregateKind::kMax,
        AggregateKind::kQuantile}) {
    AggregateQuery query = MakeRangeQuery("q", kind, 0, 40);
    query.quantile_q = 0.75;
    const auto sampler = UniSSampler::Create(&sources_, query);
    ASSERT_TRUE(sampler.ok());
    Rng rng(72);
    for (int trial = 0; trial < 5; ++trial) {
      const auto assignment = sampler->SampleAssignment(rng);
      ASSERT_TRUE(assignment.ok());
      const auto flat = processor.Evaluate(sources_, query, *assignment);
      const auto tree =
          hierarchy->EvaluateAssignment(sources_, query, *assignment);
      ASSERT_TRUE(flat.ok());
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();
      EXPECT_NEAR(tree->value, flat.value(), 1e-9)
          << AggregateKindToString(kind);
    }
  }
}

TEST_F(HierarchyEvaluationTest, AlgebraicShipsLessStateThanHolistic) {
  HierarchyOptions hierarchy_options;
  hierarchy_options.fanout = 4;
  const auto hierarchy =
      AggregationHierarchy::Build(20, hierarchy_options);
  const AggregateQuery sum_query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 40);
  const AggregateQuery median_query =
      MakeRangeQuery("median", AggregateKind::kMedian, 0, 40);
  const auto sampler = UniSSampler::Create(&sources_, sum_query);
  Rng rng(73);
  const auto assignment = sampler->SampleAssignment(rng);
  ASSERT_TRUE(assignment.ok());

  const auto sum_eval =
      hierarchy->EvaluateAssignment(sources_, sum_query, *assignment);
  const auto median_eval =
      hierarchy->EvaluateAssignment(sources_, median_query, *assignment);
  ASSERT_TRUE(sum_eval.ok());
  ASSERT_TRUE(median_eval.ok());
  // Same routing, different payloads.
  EXPECT_EQ(sum_eval->messages, median_eval->messages);
  EXPECT_LT(sum_eval->state_transferred, median_eval->state_transferred);
  // The holistic plan ships every value at least once per hop past a relay.
  EXPECT_GE(median_eval->state_transferred, median_eval->flat_transferred);
  EXPECT_EQ(sum_eval->flat_transferred, 40);
  EXPECT_GT(sum_eval->critical_path_ms, 0.0);
}

TEST_F(HierarchyEvaluationTest, Validation) {
  const auto hierarchy =
      AggregationHierarchy::Build(20, HierarchyOptions{});
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 40);
  Assignment short_assignment(10, 0);
  EXPECT_FALSE(
      hierarchy->EvaluateAssignment(sources_, query, short_assignment).ok());
  Assignment bad_source(40, 99);
  EXPECT_FALSE(
      hierarchy->EvaluateAssignment(sources_, query, bad_source).ok());
}

TEST(SampleAssignmentTest, AssignmentsAreValidAndUniSDistributed) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  const auto sampler = UniSSampler::Create(&sources, query);
  ASSERT_TRUE(sampler.ok());
  const QueryProcessor processor;
  Rng rng(74);
  std::map<double, int> counts;
  const int kDraws = 3000;
  for (int i = 0; i < kDraws; ++i) {
    const auto assignment = sampler->SampleAssignment(rng);
    ASSERT_TRUE(assignment.ok());
    // Every component assigned to a source that actually binds it.
    for (size_t p = 0; p < assignment->size(); ++p) {
      EXPECT_TRUE(sources.source((*assignment)[p])
                      .Has(query.components[p]));
    }
    const auto value = processor.Evaluate(sources, query, *assignment);
    ASSERT_TRUE(value.ok());
    ++counts[value.value()];
  }
  // The induced answer distribution matches uniS: {89, 93, 96} at ~1/3.
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [answer, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(kDraws), 1.0 / 3.0, 0.04)
        << answer;
  }
}

}  // namespace
}  // namespace vastats
