#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "integration/mediated_schema.h"
#include "integration/record_mapper.h"
#include "query/mediated_query.h"
#include "sampling/exhaustive.h"

namespace vastats {
namespace {

TEST(ParseDateTest, Figure1Formats) {
  // The literal formats visible in the paper's Figure 1.
  const auto a = ParseDate("10-June-06");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), (CivilDay{2006, 6, 10}));
  const auto b = ParseDate("06/10/06");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value(), (CivilDay{2006, 6, 10}));
  // Same calendar day through either format.
  EXPECT_EQ(a->Ordinal(), b->Ordinal());
}

TEST(ParseDateTest, MoreFormats) {
  EXPECT_EQ(ParseDate("2006-06-10").value(), (CivilDay{2006, 6, 10}));
  EXPECT_EQ(ParseDate("06/10/2006").value(), (CivilDay{2006, 6, 10}));
  EXPECT_EQ(ParseDate("11-Jun-06").value(), (CivilDay{2006, 6, 11}));
  EXPECT_EQ(ParseDate("1-january-99").value(), (CivilDay{1999, 1, 1}));
  EXPECT_EQ(ParseDate("29-Feb-2024").value(), (CivilDay{2024, 2, 29}));
}

TEST(ParseDateTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDate("").ok());
  EXPECT_FALSE(ParseDate("June").ok());
  EXPECT_FALSE(ParseDate("32-June-06").ok());
  EXPECT_FALSE(ParseDate("29-Feb-2023").ok());  // not a leap year
  EXPECT_FALSE(ParseDate("13/40/06").ok());
  EXPECT_FALSE(ParseDate("ab-cd-ef").ok());
}

TEST(CivilDayTest, OrdinalIsMonotone) {
  const int64_t a = CivilDay{2006, 6, 10}.Ordinal();
  const int64_t b = CivilDay{2006, 6, 11}.Ordinal();
  const int64_t c = CivilDay{2006, 7, 1}.Ordinal();
  const int64_t d = CivilDay{2007, 1, 1}.Ordinal();
  EXPECT_EQ(b, a + 1);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  // 2006 is not a leap year: 365 days.
  EXPECT_EQ((CivilDay{2007, 6, 10}).Ordinal() - a, 365);
}

TEST(MediatedSchemaTest, SynonymsAndAliasesResolve) {
  MediatedSchema schema;
  schema.AddAttributeSynonym("Avg Temp", "temperature");
  schema.AddAttributeSynonym("Temp", "temperature");
  schema.AddEntityAlias("VANCOUVER CITY", "vancouver");
  EXPECT_EQ(schema.ResolveAttribute("avg temp").value(),
            schema.ResolveAttribute("TEMP").value());
  EXPECT_EQ(schema.ResolveAttribute("temperature").value(),
            schema.ResolveAttribute("Temp").value());
  EXPECT_EQ(schema.ResolveEntity("Vancouver City").value(),
            schema.ResolveEntity("vancouver").value());
  EXPECT_FALSE(schema.ResolveAttribute("humidity").ok());
  EXPECT_FALSE(schema.ResolveEntity("toronto").ok());
}

TEST(MediatedSchemaTest, NormalizationCollapsesWhitespaceAndCase) {
  MediatedSchema schema;
  schema.DeclareEntity("  New   Westminster ");
  EXPECT_TRUE(schema.ResolveEntity("new westminster").ok());
  EXPECT_TRUE(schema.ResolveEntity("NEW  WESTMINSTER").ok());
}

TEST(MediatedSchemaTest, ComponentIdsUniqueAndDescribable) {
  MediatedSchema schema;
  const int temp = schema.DeclareAttribute("temperature");
  const int rain = schema.DeclareAttribute("rainfall");
  const int vancouver = schema.DeclareEntity("vancouver");
  const int burnaby = schema.DeclareEntity("burnaby");
  const CivilDay day{2006, 6, 10};
  const CivilDay next{2006, 6, 11};

  const ComponentId a = schema.ComponentFor(temp, vancouver, day);
  EXPECT_NE(a, schema.ComponentFor(rain, vancouver, day));
  EXPECT_NE(a, schema.ComponentFor(temp, burnaby, day));
  EXPECT_NE(a, schema.ComponentFor(temp, vancouver, next));
  EXPECT_EQ(a, schema.ComponentFor(temp, vancouver, day));  // deterministic

  const auto info = schema.Describe(a);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->attribute, "temperature");
  EXPECT_EQ(info->entity, "vancouver");
  EXPECT_EQ(info->time_key, "2006-06-10");
  EXPECT_FALSE(schema.Describe(424242).ok());
}

// The paper's Figure 1 as raw heterogeneous tables: D1 says "Avg Temp" with
// "10-June-06" dates, D2 says "Temp" with "06/10/06" dates, etc.
std::vector<RawRecord> Figure1Records() {
  return {
      {"D1", "Burnaby", "10-June-06", "Avg Temp", 21.0},
      {"D1", "Vancouver", "11-June-06", "Avg Temp", 19.0},
      {"D2", "Burnaby", "06/10/06", "Temp", 21.0},
      {"D2", "Vancouver", "06/11/06", "Temp", 22.0},
      {"D2", "Richmond", "06/12/06", "Temp", 18.0},
      {"D3", "Burnaby", "10-June-06", "Temp", 19.0},
      {"D3", "Vancouver", "11-June-06", "Temp", 17.0},
      {"D3", "Surrey", "11-June-06", "Temp", 15.0},
      {"D3", "Vancouver", "12-June-06", "Temp", 20.0},
      {"D4", "SURREY", "06/11/06", "Temp", 15.0},
  };
}

MediatedSchema Figure1Schema() {
  MediatedSchema schema;
  schema.AddAttributeSynonym("Avg Temp", "temperature");
  schema.AddAttributeSynonym("Temp", "temperature");
  for (const char* city : {"burnaby", "vancouver", "surrey", "richmond"}) {
    schema.DeclareEntity(city);
  }
  return schema;
}

TEST(RecordMapperTest, MapsFigure1AcrossFormats) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  MapperReport report;
  const auto sources = mapper.MapRecords(Figure1Records(), &report);
  ASSERT_TRUE(sources.ok()) << sources.status().ToString();
  EXPECT_EQ(report.mapped_records, 10);
  EXPECT_TRUE(report.skipped.empty());
  EXPECT_EQ(sources->NumSources(), 4);

  // The Vancouver 06-11 component must be shared by D1, D2, D3 despite the
  // different date formats, with three conflicting values.
  const int temp = schema.ResolveAttribute("temperature").value();
  const int vancouver = schema.ResolveEntity("vancouver").value();
  const ComponentId component =
      schema.ComponentFor(temp, vancouver, CivilDay{2006, 6, 11});
  EXPECT_EQ(sources->CoverageCount(component), 3);
  const auto range = sources->ValueRange(component);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->first, 17.0);
  EXPECT_DOUBLE_EQ(range->second, 22.0);
}

TEST(RecordMapperTest, UnitConversionAtIngestion) {
  MediatedSchema schema = Figure1Schema();
  RecordMapper mapper(&schema);
  ASSERT_TRUE(
      mapper.DeclareSourceUnit("D5", "temperature", FahrenheitToCelsius())
          .ok());
  const std::vector<RawRecord> records = {
      {"D5", "Vancouver", "2006-06-11", "Temp", 62.6},  // = 17 C
  };
  const auto sources = mapper.MapRecords(records);
  ASSERT_TRUE(sources.ok());
  const int temp = schema.ResolveAttribute("temperature").value();
  const int vancouver = schema.ResolveEntity("vancouver").value();
  const ComponentId component =
      schema.ComponentFor(temp, vancouver, CivilDay{2006, 6, 11});
  EXPECT_NEAR(sources->source(0).Value(component).value(), 17.0, 1e-9);
}

TEST(RecordMapperTest, SkipsAndReportsUnmappableRecords) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  const std::vector<RawRecord> records = {
      {"D1", "Burnaby", "10-June-06", "Avg Temp", 21.0},
      {"D1", "Atlantis", "10-June-06", "Avg Temp", 30.0},   // bad entity
      {"D1", "Burnaby", "June-zz", "Avg Temp", 30.0},        // bad date
      {"D1", "Burnaby", "10-June-06", "Wind", 5.0},          // bad attribute
  };
  MapperReport report;
  const auto sources = mapper.MapRecords(records, &report);
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(report.mapped_records, 1);
  EXPECT_EQ(report.skipped.size(), 3u);
  // Strict mode fails the whole call instead.
  EXPECT_FALSE(mapper.MapRecords(records, nullptr, /*strict=*/true).ok());
}

TEST(RecordMapperTest, DuplicateBindingsCountedLastWins) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  const std::vector<RawRecord> records = {
      {"D1", "Burnaby", "10-June-06", "Temp", 20.0},
      {"D1", "Burnaby", "06/10/06", "Avg Temp", 23.0},  // same component!
  };
  MapperReport report;
  const auto sources = mapper.MapRecords(records, &report);
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(report.duplicate_bindings, 1);
  EXPECT_EQ(sources->source(0).NumBindings(), 1u);
}

TEST(PlanMediatedQueryTest, ExpandsEntitiesAndDays) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  const auto sources = mapper.MapRecords(Figure1Records());
  ASSERT_TRUE(sources.ok());

  MediatedQuery spec;
  spec.name = "sum-temp";
  spec.kind = AggregateKind::kSum;
  spec.attribute = "Temp";  // synonym resolution applies here too
  spec.entities = {"vancouver"};
  spec.first_day = CivilDay{2006, 6, 11};
  spec.last_day = CivilDay{2006, 6, 12};
  const auto plan = PlanMediatedQuery(schema, *sources, spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->query.components.size(), 2u);
  EXPECT_TRUE(plan->uncovered.empty());

  // The planned query runs end-to-end: viable range = [17+20, 22+20].
  const auto range = ViableRange(*sources, plan->query);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->first, 37.0);
  EXPECT_DOUBLE_EQ(range->second, 42.0);
}

TEST(PlanMediatedQueryTest, UncoveredComponentsHandledPerPolicy) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  const auto sources = mapper.MapRecords(Figure1Records());
  ASSERT_TRUE(sources.ok());

  MediatedQuery spec;
  spec.name = "sum-temp";
  spec.attribute = "temperature";
  spec.entities = {"vancouver", "richmond"};
  spec.first_day = CivilDay{2006, 6, 10};
  spec.last_day = CivilDay{2006, 6, 12};
  // Vancouver 06-10 exists only via Burnaby... actually: Vancouver has
  // 06-11, 06-12; Richmond only 06-12 -> several uncovered days.
  EXPECT_FALSE(PlanMediatedQuery(schema, *sources, spec).ok());
  const auto relaxed =
      PlanMediatedQuery(schema, *sources, spec, /*require_full_coverage=*/false);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->query.components.size(), 3u);  // V11, V12, R12
  EXPECT_EQ(relaxed->uncovered.size(), 3u);         // V10, R10, R11
}

TEST(PlanMediatedQueryTest, EmptyEntityListMeansAllEntities) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  const auto sources = mapper.MapRecords(Figure1Records());
  MediatedQuery spec;
  spec.name = "all";
  spec.attribute = "temperature";
  spec.first_day = CivilDay{2006, 6, 11};
  spec.last_day = CivilDay{2006, 6, 11};
  const auto plan =
      PlanMediatedQuery(schema, *sources, spec, /*require_full_coverage=*/false);
  ASSERT_TRUE(plan.ok());
  // Covered on 06-11: Vancouver + Surrey.
  EXPECT_EQ(plan->query.components.size(), 2u);
}

TEST(PlanMediatedQueryTest, Validation) {
  const MediatedSchema schema = Figure1Schema();
  const RecordMapper mapper(&schema);
  const auto sources = mapper.MapRecords(Figure1Records());
  MediatedQuery spec;
  spec.attribute = "nonexistent";
  spec.first_day = CivilDay{2006, 6, 11};
  spec.last_day = CivilDay{2006, 6, 11};
  EXPECT_FALSE(PlanMediatedQuery(schema, *sources, spec).ok());
  spec.attribute = "temperature";
  spec.first_day = CivilDay{2006, 6, 12};
  spec.last_day = CivilDay{2006, 6, 11};  // reversed
  EXPECT_FALSE(PlanMediatedQuery(schema, *sources, spec).ok());
}

}  // namespace
}  // namespace vastats
