#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "datagen/fault_model.h"
#include "stats/aggregate_query.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

using ::vastats::testing::MakeFigure1Query;
using ::vastats::testing::MakeFigure1Sources;

// A redundant synthetic universe: with >= 3 copies per component, a partial
// outage leaves every component reachable through a live source.
Result<SourceSet> BuildRedundantSources(uint64_t seed) {
  SyntheticSourceSetOptions options;
  options.num_sources = 30;
  options.num_components = 60;
  options.min_copies = 3;
  options.max_copies = 5;
  options.seed = seed;
  const auto d2 = MakeD2(seed + 1);
  return BuildSyntheticSourceSet(*d2, options);
}

ExtractorOptions FastOptions() {
  ExtractorOptions options;
  options.initial_sample_size = 96;
  options.bootstrap.num_sets = 20;
  options.weight_probes = 5;
  options.seed = 2024;
  return options;
}

TEST(ExtractorChaosTest, DefaultPathReportsNoDegradation) {
  const SourceSet set = MakeFigure1Sources();
  const auto extractor = AnswerStatisticsExtractor::Create(
      &set, MakeFigure1Query(AggregateKind::kAverage), FastOptions());
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok());
  // Zero-overhead default: no fault_tolerance means the seam never ran and
  // the report is the default-constructed "never degraded" value.
  EXPECT_FALSE(stats->degradation.degraded);
  EXPECT_EQ(stats->degradation.draws_requested, 0);
  EXPECT_EQ(stats->degradation.draws_kept, 0);
  EXPECT_DOUBLE_EQ(stats->degradation.min_coverage, 1.0);
  EXPECT_EQ(stats->degradation.access.visits, 0u);
}

TEST(ExtractorChaosTest, PartialOutageDegradesButExtracts) {
  const auto set = BuildRedundantSources(51);
  ASSERT_TRUE(set.ok());
  FaultModelOptions fault_options;
  fault_options.transient_failure_prob = 0.15;
  fault_options.corrupt_value_prob = 0.02;
  fault_options.outage_fraction = 0.2;
  fault_options.outage_epoch = 16;
  fault_options.seed = 31337;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());

  ExtractorOptions options = FastOptions();
  FaultToleranceOptions fault;
  fault.model = &*model;
  fault.min_draw_coverage = 0.4;
  options.fault_tolerance = fault;
  const auto extractor = AnswerStatisticsExtractor::Create(
      &*set, MakeRangeQuery("chaos", AggregateKind::kAverage, 0, 60),
      options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok());

  const DegradationReport& report = stats->degradation;
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.draws_requested, 96);
  EXPECT_EQ(report.draws_kept, static_cast<int>(stats->samples.size()));
  EXPECT_EQ(report.draws_requested, report.draws_kept + report.draws_dropped);
  EXPECT_GE(report.draws_kept, 8);
  EXPECT_GT(report.min_coverage, 0.0);
  EXPECT_LE(report.min_coverage, report.mean_coverage);
  EXPECT_LE(report.mean_coverage, 1.0);
  EXPECT_GT(report.access.visits, 0u);
  EXPECT_GT(report.access.transient_failures, 0u);
  // The point estimates still came out of the usual pipeline.
  EXPECT_TRUE(std::isfinite(stats->mean.value));
  EXPECT_GT(stats->mean.ci.hi, stats->mean.ci.lo);
}

TEST(ExtractorChaosTest, ChaosExtractionIsBitIdenticalAcrossWidths) {
  const auto set = BuildRedundantSources(51);
  ASSERT_TRUE(set.ok());
  FaultModelOptions fault_options;
  fault_options.transient_failure_prob = 0.2;
  fault_options.failure_spread_sigma = 0.5;
  fault_options.corrupt_value_prob = 0.05;
  fault_options.latency_jitter_sigma = 0.3;
  fault_options.outage_fraction = 0.2;
  fault_options.outage_epoch = 32;
  fault_options.seed = 777;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());

  const auto extract_with = [&](int sampling_threads,
                                ThreadPool* pool) -> Result<AnswerStatistics> {
    ExtractorOptions options = FastOptions();
    FaultToleranceOptions fault;
    fault.model = &*model;
    fault.min_draw_coverage = 0.3;
    options.fault_tolerance = fault;
    options.sampling_threads = sampling_threads;
    options.pool = pool;
    VASTATS_ASSIGN_OR_RETURN(
        const AnswerStatisticsExtractor extractor,
        AnswerStatisticsExtractor::Create(
            &*set, MakeRangeQuery("chaos", AggregateKind::kAverage, 0, 60),
            options));
    return extractor.Extract();
  };

  const auto reference = extract_with(1, nullptr);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->degradation.degraded);

  const auto expect_identical = [&](const AnswerStatistics& got) {
    ASSERT_EQ(got.samples.size(), reference->samples.size());
    for (size_t i = 0; i < got.samples.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.samples[i], reference->samples[i]);
    }
    EXPECT_DOUBLE_EQ(got.mean.value, reference->mean.value);
    const DegradationReport& a = got.degradation;
    const DegradationReport& b = reference->degradation;
    EXPECT_EQ(a.draws_requested, b.draws_requested);
    EXPECT_EQ(a.draws_kept, b.draws_kept);
    EXPECT_EQ(a.draws_dropped, b.draws_dropped);
    EXPECT_DOUBLE_EQ(a.min_coverage, b.min_coverage);
    EXPECT_DOUBLE_EQ(a.mean_coverage, b.mean_coverage);
    EXPECT_EQ(a.access.visits, b.access.visits);
    EXPECT_EQ(a.access.attempts, b.access.attempts);
    EXPECT_EQ(a.access.retries, b.access.retries);
    EXPECT_EQ(a.access.failed_visits, b.access.failed_visits);
    EXPECT_EQ(a.access.breaker_open_skips, b.access.breaker_open_skips);
    EXPECT_EQ(a.access.corrupt_values_rejected,
              b.access.corrupt_values_rejected);
    EXPECT_DOUBLE_EQ(a.access.virtual_ms, b.access.virtual_ms);
    EXPECT_EQ(a.access.breaker_severity, b.access.breaker_severity);
  };

  for (const int threads : {4, 16}) {
    const auto got = extract_with(threads, nullptr);
    ASSERT_TRUE(got.ok());
    expect_identical(*got);
  }
  for (const int pool_threads : {1, 4, 16}) {
    ThreadPool pool(ThreadPoolOptions{pool_threads});
    const auto got = extract_with(1, &pool);
    ASSERT_TRUE(got.ok());
    expect_identical(*got);
  }
}

TEST(ExtractorChaosTest, TotalOutageFailsWithClearError) {
  const SourceSet set = MakeFigure1Sources();
  FaultModelOptions fault_options;
  fault_options.outage_fraction = 1.0;
  fault_options.outage_epoch = 0;
  const auto model = FaultModel::Create(4, fault_options);
  ASSERT_TRUE(model.ok());
  ExtractorOptions options = FastOptions();
  FaultToleranceOptions fault;
  fault.model = &*model;
  options.fault_tolerance = fault;
  const auto extractor = AnswerStatisticsExtractor::Create(
      &set, MakeFigure1Query(AggregateKind::kAverage), options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExtractorChaosTest, FaultToleranceOptionsAreValidated) {
  const SourceSet set = MakeFigure1Sources();
  ExtractorOptions options = FastOptions();
  FaultToleranceOptions fault;
  fault.min_draw_coverage = 1.5;
  options.fault_tolerance = fault;
  EXPECT_FALSE(AnswerStatisticsExtractor::Create(
                   &set, MakeFigure1Query(AggregateKind::kAverage), options)
                   .ok());
  options.fault_tolerance->min_draw_coverage = 0.5;
  options.fault_tolerance->retry.max_attempts = 0;
  EXPECT_FALSE(AnswerStatisticsExtractor::Create(
                   &set, MakeFigure1Query(AggregateKind::kAverage), options)
                   .ok());
}

TEST(ExtractorChaosTest, AdaptiveDegradedPathPopulatesReport) {
  const auto set = BuildRedundantSources(77);
  ASSERT_TRUE(set.ok());
  FaultModelOptions fault_options;
  fault_options.transient_failure_prob = 0.2;
  fault_options.seed = 99;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());
  ExtractorOptions options = FastOptions();
  AdaptiveSamplingOptions adaptive;
  adaptive.initial_size = 48;
  adaptive.increment = 24;
  adaptive.max_size = 144;
  adaptive.target_ci_length = 1e6;  // met after the first round
  options.adaptive = adaptive;
  FaultToleranceOptions fault;
  fault.model = &*model;
  options.fault_tolerance = fault;
  const auto extractor = AnswerStatisticsExtractor::Create(
      &*set, MakeRangeQuery("adaptive_chaos", AggregateKind::kAverage, 0, 60),
      options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->degradation.draws_requested,
            static_cast<int>(stats->samples.size()));
  EXPECT_EQ(stats->degradation.draws_kept,
            static_cast<int>(stats->samples.size()));
  EXPECT_GT(stats->degradation.access.visits, 0u);
}

}  // namespace
}  // namespace vastats
