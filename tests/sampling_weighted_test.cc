#include "sampling/weighted.h"

#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

// Two sources disagreeing on one component, with a third corroborating one
// of them — the minimal quality-estimation scenario.
SourceSet MakeDisagreementSources() {
  SourceSet set;
  DataSource good_a("good-a");
  DataSource good_b("good-b");
  DataSource bad("bad");
  for (ComponentId c = 0; c < 20; ++c) {
    good_a.Bind(c, 10.0 + static_cast<double>(c));
    good_b.Bind(c, 10.0 + static_cast<double>(c));
    bad.Bind(c, 10.0 + static_cast<double>(c) + 50.0);  // way off
  }
  set.AddSource(std::move(good_a));
  set.AddSource(std::move(good_b));
  set.AddSource(std::move(bad));
  return set;
}

TEST(EstimateSourceQualityTest, OutlierSourceGetsLowWeight) {
  const SourceSet sources = MakeDisagreementSources();
  std::vector<ComponentId> scope;
  for (ComponentId c = 0; c < 20; ++c) scope.push_back(c);
  const auto weights = EstimateSourceQuality(sources, scope);
  ASSERT_TRUE(weights.ok());
  ASSERT_EQ(weights->size(), 3u);
  EXPECT_GT((*weights)[0], (*weights)[2] * 2.0);
  EXPECT_GT((*weights)[1], (*weights)[2] * 2.0);
  for (const double w : *weights) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(EstimateSourceQualityTest, NoOverlapGivesDefaultWeights) {
  SourceSet set;
  DataSource a("a"), b("b");
  a.Bind(1, 1.0);
  b.Bind(2, 2.0);
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  const std::vector<ComponentId> scope = {1, 2};
  SourceQualityOptions options;
  options.default_weight = 0.7;
  const auto weights = EstimateSourceQuality(set, scope, options);
  ASSERT_TRUE(weights.ok());
  EXPECT_DOUBLE_EQ((*weights)[0], 0.7);
  EXPECT_DOUBLE_EQ((*weights)[1], 0.7);
}

TEST(EstimateSourceQualityTest, PerfectAgreementGivesEqualWeights) {
  SourceSet set;
  DataSource a("a"), b("b");
  for (ComponentId c = 0; c < 10; ++c) {
    a.Bind(c, 5.0);
    b.Bind(c, 5.0);
  }
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  std::vector<ComponentId> scope;
  for (ComponentId c = 0; c < 10; ++c) scope.push_back(c);
  const auto weights = EstimateSourceQuality(set, scope);
  ASSERT_TRUE(weights.ok());
  EXPECT_DOUBLE_EQ((*weights)[0], (*weights)[1]);
  EXPECT_GT((*weights)[0], 0.9);
}

TEST(EstimateSourceQualityTest, Validation) {
  const SourceSet sources = MakeDisagreementSources();
  EXPECT_FALSE(EstimateSourceQuality(sources, {}).ok());
  const std::vector<ComponentId> scope = {0};
  SourceQualityOptions bad;
  bad.softness = 0.0;
  EXPECT_FALSE(EstimateSourceQuality(sources, scope, bad).ok());
}

TEST(BreakerSeverityPriorsTest, Validation) {
  BreakerSeverityPriorOptions bad;
  bad.open_factor = 0.0;
  EXPECT_FALSE(ApplyBreakerSeverityPriors({1.0}, {}, bad).ok());
  bad = {};
  bad.half_open_factor = 1.5;
  EXPECT_FALSE(ApplyBreakerSeverityPriors({1.0}, {}, bad).ok());
  const std::vector<uint8_t> severity = {0, 0};
  EXPECT_FALSE(ApplyBreakerSeverityPriors({1.0}, severity).ok());
}

TEST(BreakerSeverityPriorsTest, OpenBreakerSourcesGetDownWeighted) {
  const std::vector<double> weights = {0.8, 0.8, 0.8, 0.8};
  // Source 1 is probing (half-open), source 2's breaker is open, 3 has no
  // recorded severity (shorter vector = closed).
  const std::vector<uint8_t> severity = {0, 1, 2};
  const auto adjusted = ApplyBreakerSeverityPriors(weights, severity);
  ASSERT_TRUE(adjusted.ok());
  ASSERT_EQ(adjusted->size(), 4u);
  EXPECT_DOUBLE_EQ((*adjusted)[0], 0.8);
  EXPECT_DOUBLE_EQ((*adjusted)[1], 0.8 * 0.5);
  EXPECT_DOUBLE_EQ((*adjusted)[2], 0.8 * 0.1);
  EXPECT_DOUBLE_EQ((*adjusted)[3], 0.8);
  EXPECT_LT((*adjusted)[2], (*adjusted)[1]);  // open hurts more than probing
}

TEST(BreakerSeverityPriorsTest, MinWeightKeepsEverySourceReachable) {
  BreakerSeverityPriorOptions options;
  options.open_factor = 1e-12;
  const std::vector<uint8_t> severity = {2};
  const auto adjusted =
      ApplyBreakerSeverityPriors({1e-3}, severity, options);
  ASSERT_TRUE(adjusted.ok());
  EXPECT_DOUBLE_EQ((*adjusted)[0], options.min_weight);
}

TEST(BreakerSeverityPriorsTest, WeightedRunActivelyAvoidsOpenSource) {
  // Regression for the ROADMAP loop: a source whose breaker opened during
  // the previous extraction must be *avoided* by the next weighted run,
  // not just refreshed first. With Figure 1 weights the D1-dominant answer
  // (93) should all but vanish once D1's severity prior kicks in.
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  const std::vector<uint8_t> severity = {2, 0, 0, 0};  // D1 breaker open
  const auto priors =
      ApplyBreakerSeverityPriors({1.0, 1.0, 1.0, 1.0}, severity);
  ASSERT_TRUE(priors.ok());
  const auto uniform =
      WeightedUniSSampler::Create(&sources, query, {1.0, 1.0, 1.0, 1.0});
  const auto avoiding = WeightedUniSSampler::Create(&sources, query, *priors);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(avoiding.ok());
  Rng rng_u(11), rng_a(11);
  const auto uniform_samples = uniform->Sample(3000, rng_u);
  const auto avoiding_samples = avoiding->Sample(3000, rng_a);
  ASSERT_TRUE(uniform_samples.ok());
  ASSERT_TRUE(avoiding_samples.ok());
  const auto fraction_93 = [](const std::vector<double>& samples) {
    int n = 0;
    for (const double v : samples) {
      if (v == 93.0) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples.size());
  };
  EXPECT_NEAR(fraction_93(*uniform_samples), 1.0 / 3.0, 0.05);
  EXPECT_LT(fraction_93(*avoiding_samples), 0.12);
}

TEST(WeightedUniSSamplerTest, CreateValidatesWeights) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  EXPECT_FALSE(
      WeightedUniSSampler::Create(&sources, query, {1.0, 1.0}).ok());
  EXPECT_FALSE(
      WeightedUniSSampler::Create(&sources, query, {1.0, 1.0, 0.0, 1.0})
          .ok());
  EXPECT_FALSE(
      WeightedUniSSampler::Create(&sources, query, {1.0, -1.0, 1.0, 1.0})
          .ok());
  EXPECT_TRUE(
      WeightedUniSSampler::Create(&sources, query, {1.0, 1.0, 1.0, 1.0})
          .ok());
}

TEST(WeightedUniSSamplerTest, EqualWeightsMatchUniformDistribution) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  const auto weighted =
      WeightedUniSSampler::Create(&sources, query, {1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(weighted.ok());
  Rng rng(5);
  const auto samples = weighted->Sample(8000, rng);
  ASSERT_TRUE(samples.ok());
  // uniS over Figure 1 yields 89/93/96 each with probability 1/3.
  int counts[3] = {0, 0, 0};
  for (const double v : *samples) {
    if (v == 89.0) ++counts[0];
    if (v == 93.0) ++counts[1];
    if (v == 96.0) ++counts[2];
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 8000);
  for (const int c : counts) {
    EXPECT_NEAR(c / 8000.0, 1.0 / 3.0, 0.03);
  }
}

TEST(WeightedUniSSamplerTest, HighWeightSourceDominates) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  // Give D1 overwhelming weight: answers where D1 supplies c1, c2 (i.e.
  // sum 93: 21 + 19 + 15 + 20 + 18) should dominate.
  const auto weighted = WeightedUniSSampler::Create(
      &sources, query, {1000.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(weighted.ok());
  Rng rng(6);
  const auto samples = weighted->Sample(2000, rng);
  ASSERT_TRUE(samples.ok());
  int dominant = 0;
  for (const double v : *samples) {
    if (v == 93.0) ++dominant;
  }
  EXPECT_GT(dominant / 2000.0, 0.95);
}

TEST(WeightedUniSSamplerTest, QualityWeightsSuppressOutlierSource) {
  // End-to-end: estimate quality, sample weighted, and verify the answer
  // distribution tightens around the consensus.
  const SourceSet sources = MakeDisagreementSources();
  AggregateQuery query;
  query.name = "sum";
  query.kind = AggregateKind::kSum;
  for (ComponentId c = 0; c < 20; ++c) query.components.push_back(c);

  const auto weights = EstimateSourceQuality(sources, query.components);
  ASSERT_TRUE(weights.ok());
  const auto uniform = WeightedUniSSampler::Create(
      &sources, query, {1.0, 1.0, 1.0});
  const auto weighted =
      WeightedUniSSampler::Create(&sources, query, *weights);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(weighted.ok());
  Rng rng_u(7), rng_w(7);
  const auto uniform_samples = uniform->Sample(500, rng_u);
  const auto weighted_samples = weighted->Sample(500, rng_w);
  // Consensus sum = sum(10..29) = 390; the bad source pulls answers up.
  const double uniform_mean = ComputeMoments(*uniform_samples).mean();
  const double weighted_mean = ComputeMoments(*weighted_samples).mean();
  EXPECT_LT(weighted_mean, uniform_mean);
  EXPECT_LT(std::fabs(weighted_mean - 390.0),
            std::fabs(uniform_mean - 390.0));
}

}  // namespace
}  // namespace vastats
