#include "datagen/source_accessor.h"

#include <vector>

#include <gtest/gtest.h>

#include "datagen/fault_model.h"
#include "obs/metrics.h"

namespace vastats {
namespace {

Result<FaultModel> AlwaysFailModel(int num_sources) {
  FaultModelOptions options;
  options.transient_failure_prob = 1.0;
  options.latency_base_ms = 1.0;
  options.latency_per_component_ms = 0.0;
  return FaultModel::Create(num_sources, options);
}

Result<FaultModel> NeverFailModel(int num_sources) {
  FaultModelOptions options;
  options.transient_failure_prob = 0.0;
  options.latency_base_ms = 1.0;
  options.latency_per_component_ms = 0.0;
  return FaultModel::Create(num_sources, options);
}

TEST(SourceAccessorTest, CreateValidatesConfiguration) {
  const auto model = NeverFailModel(4);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(SourceAccessor::Create(0, nullptr).ok());
  // The model must cover at least the accessor's sources.
  EXPECT_FALSE(SourceAccessor::Create(8, &*model).ok());
  RetryPolicy bad_retry;
  bad_retry.max_attempts = 0;
  EXPECT_FALSE(SourceAccessor::Create(4, &*model, bad_retry).ok());
  bad_retry = RetryPolicy{};
  bad_retry.backoff_jitter = 1.5;
  EXPECT_FALSE(SourceAccessor::Create(4, &*model, bad_retry).ok());
  CircuitBreakerOptions bad_breaker;
  bad_breaker.window = 65;
  EXPECT_FALSE(SourceAccessor::Create(4, &*model, {}, bad_breaker).ok());
  bad_breaker = CircuitBreakerOptions{};
  bad_breaker.open_failure_rate = 0.0;
  EXPECT_FALSE(SourceAccessor::Create(4, &*model, {}, bad_breaker).ok());
  EXPECT_TRUE(SourceAccessor::Create(4, &*model).ok());
  EXPECT_TRUE(SourceAccessor::Create(8, nullptr).ok());
}

TEST(SourceAccessorTest, NullModelVisitsSucceedInstantly) {
  const auto accessor = SourceAccessor::Create(4, nullptr);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  session.BeginNextDraw();
  for (int s = 0; s < 4; ++s) {
    const auto outcome = session.Visit(s, 5);
    EXPECT_TRUE(outcome.ok);
    EXPECT_FALSE(outcome.skipped_breaker_open);
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_FALSE(session.ValueCorrupted(s, 0));
  }
  EXPECT_DOUBLE_EQ(session.clock().NowMs(), 0.0);
  const AccessStats stats = session.Finish();
  EXPECT_EQ(stats.visits, 4u);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failed_visits, 0u);
  EXPECT_DOUBLE_EQ(stats.virtual_ms, 0.0);
  EXPECT_EQ(stats.SourcesOpen(), 0);
}

TEST(SourceAccessorTest, RetriesExhaustAgainstAlwaysFailingSource) {
  const auto model = AlwaysFailModel(2);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.backoff_base_ms = 10.0;
  const auto accessor = SourceAccessor::Create(2, &*model, retry);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  session.BeginNextDraw();
  const auto outcome = session.Visit(0, 3);
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.skipped_breaker_open);
  EXPECT_EQ(outcome.attempts, 3);
  // Two backoffs happened (before retries 1 and 2) plus three 1 ms attempt
  // latencies — the virtual clock must have moved past both.
  EXPECT_GT(session.clock().NowMs(), 3.0);
  const AccessStats stats = session.Finish();
  EXPECT_EQ(stats.visits, 1u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.transient_failures, 3u);
  EXPECT_EQ(stats.failed_visits, 1u);
  EXPECT_GT(stats.backoff_ms, 0.0);
  EXPECT_GE(stats.virtual_ms, stats.backoff_ms + 3.0);
}

TEST(SourceAccessorTest, BreakerOpensAndSkipsFurtherVisits) {
  const auto model = AlwaysFailModel(2);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 1;
  CircuitBreakerOptions breaker;
  breaker.window = 8;
  breaker.min_samples = 4;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_ms = 1e9;  // effectively never half-opens in this test
  const auto accessor = SourceAccessor::Create(2, &*model, retry, breaker);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  for (int64_t draw = 0; draw < 4; ++draw) {
    session.BeginDraw(draw);
    EXPECT_FALSE(session.Visit(0, 1).ok);
  }
  EXPECT_EQ(session.breaker_state(0), BreakerState::kOpen);
  EXPECT_EQ(session.breaker_state(1), BreakerState::kClosed);
  session.BeginDraw(4);
  const auto skipped = session.Visit(0, 1);
  EXPECT_FALSE(skipped.ok);
  EXPECT_TRUE(skipped.skipped_breaker_open);
  EXPECT_EQ(skipped.attempts, 0);
  const AccessStats stats = session.Finish();
  EXPECT_EQ(stats.breaker_open_skips, 1u);
  EXPECT_GE(stats.breaker_transitions, 1u);
  EXPECT_EQ(stats.SourcesOpen(), 1);
  ASSERT_EQ(stats.breaker_severity.size(), 2u);
  EXPECT_EQ(stats.breaker_severity[0], 2);
  EXPECT_EQ(stats.breaker_severity[1], 0);
}

// Opens source 0's breaker with failing epochs, burns the cooldown on
// another source's visits, then probes half-open with a deterministically
// failing or succeeding epoch (chosen by introspecting the pure model).
class BreakerProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultModelOptions options;
    options.transient_failure_prob = 0.6;
    options.latency_base_ms = 1.0;
    options.latency_per_component_ms = 0.0;
    options.seed = 7;
    auto model = FaultModel::Create(8, options);
    ASSERT_TRUE(model.ok());
    model_.emplace(std::move(model).value());
    for (int64_t e = 0; e < 4096; ++e) {
      if (model_->AttemptFails(0, e, 0)) {
        failing_epochs_.push_back(e);
      } else {
        succeeding_epochs_.push_back(e);
      }
    }
    ASSERT_GE(failing_epochs_.size(), 8u);
    ASSERT_GE(succeeding_epochs_.size(), 2u);
  }

  AccessSession OpenBreakerThenCoolDown(const SourceAccessor& accessor) {
    AccessSession session = accessor.StartSession();
    for (size_t i = 0; i < 4; ++i) {
      session.BeginDraw(failing_epochs_[i]);
      session.Visit(0, 1);
    }
    EXPECT_EQ(session.breaker_state(0), BreakerState::kOpen);
    // Burn the cooldown on the other sources: every executed visit costs at
    // least 1 ms of simulated latency, and with only two visits per helper
    // source no helper breaker can gather the min_samples outcomes it would
    // need to open (which would stall the clock on skips).
    for (int round = 0; round < 2; ++round) {
      for (int helper = 1; helper < 8; ++helper) {
        session.BeginDraw(static_cast<int64_t>(10000 + round * 8 + helper));
        session.Visit(helper, 1);
      }
    }
    return session;
  }

  std::optional<FaultModel> model_;
  std::vector<int64_t> failing_epochs_;
  std::vector<int64_t> succeeding_epochs_;
};

TEST_F(BreakerProbeTest, HalfOpenProbeSuccessClosesBreaker) {
  RetryPolicy retry;
  retry.max_attempts = 1;
  CircuitBreakerOptions breaker;
  breaker.window = 8;
  breaker.min_samples = 4;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_ms = 5.0;
  breaker.half_open_successes = 1;
  const auto accessor = SourceAccessor::Create(8, &*model_, retry, breaker);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = OpenBreakerThenCoolDown(*accessor);
  session.BeginDraw(succeeding_epochs_[0]);
  const auto probe = session.Visit(0, 1);
  EXPECT_TRUE(probe.ok);
  EXPECT_FALSE(probe.skipped_breaker_open);
  EXPECT_EQ(session.breaker_state(0), BreakerState::kClosed);
  // The window was reset on close: the next single failure cannot re-trip.
  session.BeginDraw(failing_epochs_[7]);
  session.Visit(0, 1);
  EXPECT_EQ(session.breaker_state(0), BreakerState::kClosed);
}

TEST_F(BreakerProbeTest, HalfOpenProbeFailureReopensBreaker) {
  RetryPolicy retry;
  retry.max_attempts = 1;
  CircuitBreakerOptions breaker;
  breaker.window = 8;
  breaker.min_samples = 4;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_ms = 5.0;
  const auto accessor = SourceAccessor::Create(8, &*model_, retry, breaker);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = OpenBreakerThenCoolDown(*accessor);
  session.BeginDraw(failing_epochs_[6]);
  const auto probe = session.Visit(0, 1);
  EXPECT_FALSE(probe.ok);
  EXPECT_FALSE(probe.skipped_breaker_open);  // the probe itself ran
  EXPECT_EQ(session.breaker_state(0), BreakerState::kOpen);
  // Immediately after reopening, the cooldown restarts: next visit skips.
  session.BeginDraw(failing_epochs_[7]);
  EXPECT_TRUE(session.Visit(0, 1).skipped_breaker_open);
}

TEST(SourceAccessorTest, DrawDeadlineTruncatesDraw) {
  const auto model = NeverFailModel(8);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 1;
  retry.draw_deadline_ms = 2.5;  // each visit costs 1 ms of latency
  const auto accessor = SourceAccessor::Create(8, &*model, retry);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  session.BeginNextDraw();
  int visited = 0;
  for (int s = 0; s < 8; ++s) {
    if (session.DrawDeadlineExhausted()) break;
    EXPECT_TRUE(session.Visit(s, 1).ok);
    ++visited;
  }
  EXPECT_EQ(visited, 3);
  session.RecordDeadlineTruncation();
  // A fresh draw gets a fresh deadline budget.
  session.BeginNextDraw();
  EXPECT_FALSE(session.DrawDeadlineExhausted());
  const AccessStats stats = session.Finish();
  EXPECT_EQ(stats.deadline_truncated_draws, 1u);
}

TEST(SourceAccessorTest, SessionBudgetStopsFurtherDraws) {
  const auto model = NeverFailModel(4);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 1;
  retry.session_deadline_ms = 2.5;
  const auto accessor = SourceAccessor::Create(4, &*model, retry);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  int draws = 0;
  while (!session.SessionBudgetExhausted() && draws < 100) {
    session.BeginNextDraw();
    session.Visit(0, 1);
    ++draws;
  }
  EXPECT_EQ(draws, 3);  // 1 ms per draw against a 2.5 ms budget
}

TEST(SourceAccessorTest, CorruptValuesAreFlaggedAndCounted) {
  FaultModelOptions options;
  options.corrupt_value_prob = 1.0;
  options.latency_base_ms = 0.0;
  const auto model = FaultModel::Create(2, options);
  ASSERT_TRUE(model.ok());
  const auto accessor = SourceAccessor::Create(2, &*model);
  ASSERT_TRUE(accessor.ok());
  AccessSession session = accessor->StartSession();
  session.BeginNextDraw();
  ASSERT_TRUE(session.Visit(0, 3).ok);
  for (int pos = 0; pos < 3; ++pos) {
    EXPECT_TRUE(session.ValueCorrupted(0, pos));
  }
  const AccessStats stats = session.Finish();
  EXPECT_EQ(stats.corrupt_values_rejected, 3u);
}

TEST(AccessStatsTest, MergeSumsCountersAndMaxesSeverity) {
  AccessStats a;
  a.visits = 3;
  a.attempts = 5;
  a.retries = 2;
  a.transient_failures = 4;
  a.failed_visits = 1;
  a.breaker_open_skips = 1;
  a.corrupt_values_rejected = 2;
  a.breaker_transitions = 3;
  a.deadline_truncated_draws = 1;
  a.virtual_ms = 10.0;
  a.backoff_ms = 4.0;
  a.breaker_severity = {2, 0, 1};
  AccessStats b;
  b.visits = 7;
  b.attempts = 9;
  b.virtual_ms = 2.5;
  b.breaker_severity = {1, 1, 0};
  a.Merge(b);
  EXPECT_EQ(a.visits, 10u);
  EXPECT_EQ(a.attempts, 14u);
  EXPECT_EQ(a.retries, 2u);
  EXPECT_DOUBLE_EQ(a.virtual_ms, 12.5);
  EXPECT_DOUBLE_EQ(a.backoff_ms, 4.0);
  ASSERT_EQ(a.breaker_severity.size(), 3u);
  EXPECT_EQ(a.breaker_severity[0], 2);
  EXPECT_EQ(a.breaker_severity[1], 1);
  EXPECT_EQ(a.breaker_severity[2], 1);
  EXPECT_EQ(a.SourcesOpen(), 1);
  EXPECT_EQ(a.SourcesHalfOpen(), 2);

  AccessStats empty;
  empty.Merge(b);
  ASSERT_EQ(empty.breaker_severity.size(), 3u);
  EXPECT_EQ(empty.breaker_severity[1], 1);
}

TEST(SourceAccessorTest, FinishFlushesCountersToMetrics) {
  const auto model = AlwaysFailModel(2);
  ASSERT_TRUE(model.ok());
  RetryPolicy retry;
  retry.max_attempts = 2;
  const auto accessor = SourceAccessor::Create(2, &*model, retry);
  ASSERT_TRUE(accessor.ok());
  MetricsRegistry metrics;
  AccessSession session = accessor->StartSession(&metrics);
  session.BeginNextDraw();
  session.Visit(0, 1);
  session.Visit(1, 1);
  const AccessStats stats = session.Finish();
  const MetricsSnapshot snapshot = metrics.Snapshot();
  const auto* visits = snapshot.FindCounter("source_access_visits_total");
  ASSERT_NE(visits, nullptr);
  EXPECT_EQ(visits->value, stats.visits);
  const auto* attempts = snapshot.FindCounter("source_access_attempts_total");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->value, 4u);
  const auto* failed =
      snapshot.FindCounter("source_access_failed_visits_total");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->value, 2u);
  const auto* backoff = snapshot.FindHistogram("source_access_backoff_ms");
  ASSERT_NE(backoff, nullptr);
  EXPECT_GT(backoff->count, 0u);
}

}  // namespace
}  // namespace vastats
