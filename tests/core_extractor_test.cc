#include "core/extractor.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "sampling/exhaustive.h"
#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(ExtractorOptionsTest, DefaultsMatchTable2) {
  const ExtractorOptions options;
  EXPECT_EQ(options.initial_sample_size, 400);
  EXPECT_EQ(options.bootstrap.num_sets, 50);
  EXPECT_EQ(options.bootstrap.set_size, 0);  // = |S_uniS|
  EXPECT_DOUBLE_EQ(options.confidence_level, 0.90);
  EXPECT_DOUBLE_EQ(options.cio.theta, 0.9);
  EXPECT_EQ(options.kde.grid_size, 4096u);
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ExtractorOptionsTest, Validation) {
  ExtractorOptions options;
  options.initial_sample_size = 2;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.confidence_level = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.stability_r = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.weight_probes = 0;
  EXPECT_FALSE(options.Validate().ok());
}

class ExtractorFigure1Test : public ::testing::Test {
 protected:
  void SetUp() override { sources_ = testing::MakeFigure1Sources(); }

  AnswerStatistics RunExtractor(ExtractorOptions options = {}) {
    options.initial_sample_size =
        options.initial_sample_size == 400 ? 200 : options.initial_sample_size;
    options.weight_probes = 10;
    const auto extractor = AnswerStatisticsExtractor::Create(
        &sources_, testing::MakeFigure1Query(AggregateKind::kSum), options);
    EXPECT_TRUE(extractor.ok()) << extractor.status().ToString();
    auto stats = extractor->Extract();
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return std::move(stats).value();
  }

  SourceSet sources_;
};

TEST_F(ExtractorFigure1Test, EndToEndProducesSaneStatistics) {
  const AnswerStatistics stats = RunExtractor();
  // Viable answers for Figure 1 sums lie in [89, 96].
  EXPECT_GT(stats.mean.value, 89.0);
  EXPECT_LT(stats.mean.value, 96.0);
  EXPECT_TRUE(stats.mean.ci.Contains(stats.mean.value));
  EXPECT_GE(stats.variance.value, 0.0);
  EXPECT_NEAR(stats.std_dev.value, std::sqrt(stats.variance.value),
              0.5);
  EXPECT_EQ(stats.samples.size(), 200u);

  // Density and coverage intervals live within (a padding of) the range.
  EXPECT_NEAR(stats.density.TotalMass(), 1.0, 1e-9);
  EXPECT_GT(stats.coverage.total_coverage, 0.3);
  EXPECT_LE(stats.coverage.total_length_fraction, 1.0);
  for (const CoverageInterval& interval : stats.coverage.intervals) {
    EXPECT_GE(interval.lo, stats.density.x_min() - 1e-9);
    EXPECT_LE(interval.hi, stats.density.x_max() + 1e-9);
  }

  // Stability is finite and positive for this tiny scenario.
  EXPECT_TRUE(std::isfinite(stats.stability.stab_l2));
  EXPECT_GT(stats.stability.change_ratio, 0.0);
  EXPECT_LT(stats.stability.change_ratio, 1.0);
  EXPECT_GE(stats.answer_weight_y, 2.0);
  EXPECT_LE(stats.answer_weight_y, 4.0);
}

TEST_F(ExtractorFigure1Test, DeterministicUnderSeed) {
  ExtractorOptions options;
  options.seed = 1234;
  const AnswerStatistics a = RunExtractor(options);
  const AnswerStatistics b = RunExtractor(options);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_DOUBLE_EQ(a.mean.value, b.mean.value);
  EXPECT_DOUBLE_EQ(a.mean.ci.lo, b.mean.ci.lo);
  EXPECT_DOUBLE_EQ(a.stability.stab_l2, b.stability.stab_l2);
  EXPECT_DOUBLE_EQ(a.coverage.total_coverage, b.coverage.total_coverage);
}

TEST_F(ExtractorFigure1Test, DifferentSeedsDifferentSamples) {
  ExtractorOptions options_a;
  options_a.seed = 1;
  ExtractorOptions options_b;
  options_b.seed = 2;
  const AnswerStatistics a = RunExtractor(options_a);
  const AnswerStatistics b = RunExtractor(options_b);
  EXPECT_NE(a.samples, b.samples);
}

TEST_F(ExtractorFigure1Test, MeanCiContainsTrueMeanOfOrderAnswers) {
  // The mean of the uniS answer distribution equals the mean over all
  // source permutations; the 90% CI should usually contain it.
  const auto all = EnumerateOrderAnswers(
      sources_, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(all.ok());
  const double true_mean = ComputeMoments(*all).mean();
  ExtractorOptions options;
  options.initial_sample_size = 400;
  const AnswerStatistics stats = RunExtractor(options);
  EXPECT_TRUE(stats.mean.ci.Contains(true_mean))
      << "CI [" << stats.mean.ci.lo << ", " << stats.mean.ci.hi
      << "] vs true mean " << true_mean;
}

TEST_F(ExtractorFigure1Test, TimingsPopulated) {
  const AnswerStatistics stats = RunExtractor();
  EXPECT_GT(stats.timings.sampling_seconds, 0.0);
  EXPECT_GT(stats.timings.kde_seconds, 0.0);
  EXPECT_GE(stats.timings.TotalSeconds(),
            stats.timings.sampling_seconds + stats.timings.kde_seconds);
}

TEST(ExtractorTest, AdaptiveSamplingPath) {
  const auto mixture = MakeD2(31);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 40;
  source_options.seed = 32;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  ExtractorOptions options;
  AdaptiveSamplingOptions adaptive;
  adaptive.initial_size = 50;
  adaptive.increment = 50;
  adaptive.max_size = 400;
  adaptive.target_relative_length = 0.002;
  options.adaptive = adaptive;
  options.weight_probes = 10;
  const auto extractor = AnswerStatisticsExtractor::Create(
      &sources, MakeRangeQuery("sum", AggregateKind::kSum, 0, 40), options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->samples.size(), 50u);
  EXPECT_LE(stats->samples.size(), 400u);
}

TEST(ExtractorTest, MultiModalWorkloadYieldsMultipleIntervals) {
  // Independent redraws from a well-separated mixture make the per-answer
  // distribution multi-modal for small component counts.
  const auto mixture = MakeD2(41);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 40;
  source_options.num_components = 3;
  source_options.min_copies = 4;
  source_options.max_copies = 8;
  source_options.conflict_model = ConflictModel::kIndependentRedraw;
  source_options.seed = 42;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  ExtractorOptions options;
  options.initial_sample_size = 400;
  options.weight_probes = 10;
  const auto extractor = AnswerStatisticsExtractor::Create(
      &sources, MakeRangeQuery("sum", AggregateKind::kSum, 0, 3), options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->coverage.intervals.size(), 2u);
  EXPECT_LT(stats->coverage.total_length_fraction, 0.9);
}

TEST(ExtractorTest, ParallelSamplingPathProducesSaneStatistics) {
  const auto mixture = MakeD2(51);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 40;
  source_options.seed = 52;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 40);

  ExtractorOptions serial_options;
  serial_options.initial_sample_size = 200;
  serial_options.weight_probes = 10;
  ExtractorOptions parallel_options = serial_options;
  parallel_options.sampling_threads = 4;

  const auto serial = AnswerStatisticsExtractor::Create(&sources, query,
                                                        serial_options)
                          ->Extract();
  const auto parallel = AnswerStatisticsExtractor::Create(&sources, query,
                                                          parallel_options)
                            ->Extract();
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->samples.size(), 200u);
  // Different seed stream than the serial sampler, same distribution: means
  // agree within a few standard errors.
  const double se = std::sqrt(serial->variance.value / 200.0);
  EXPECT_NEAR(parallel->mean.value, serial->mean.value, 6.0 * se);
  // Invalid thread counts are rejected.
  ExtractorOptions bad = serial_options;
  bad.sampling_threads = -2;
  EXPECT_FALSE(
      AnswerStatisticsExtractor::Create(&sources, query, bad).ok());
}

TEST(ExtractorTest, ResolveSamplingThreads) {
  EXPECT_EQ(ResolveSamplingThreads(1, 8), 1);
  EXPECT_EQ(ResolveSamplingThreads(3, 1), 3);
  EXPECT_EQ(ResolveSamplingThreads(0, 8), 8);
  EXPECT_EQ(ResolveSamplingThreads(0, 1), 1);
  // hardware_concurrency() may legitimately report 0 ("unknown").
  EXPECT_EQ(ResolveSamplingThreads(0, 0), 1);
}

TEST(ExtractorTest, ParallelSamplingIsThreadCountInvariant) {
  // The chunk-indexed parallel sampler must hand Extract() the same bits
  // for every thread count > 1, with or without a pool attached.
  const auto mixture = MakeD2(53);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 40;
  source_options.seed = 54;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 40);

  ExtractorOptions base;
  base.initial_sample_size = 200;
  base.weight_probes = 10;
  base.sampling_threads = 2;
  const auto reference =
      AnswerStatisticsExtractor::Create(&sources, query, base)->Extract();
  ASSERT_TRUE(reference.ok());

  ExtractorOptions four = base;
  four.sampling_threads = 4;
  const auto with_four =
      AnswerStatisticsExtractor::Create(&sources, query, four)->Extract();
  ASSERT_TRUE(with_four.ok());
  EXPECT_EQ(with_four->samples, reference->samples);
  EXPECT_EQ(with_four->mean.value, reference->mean.value);

  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  ExtractorOptions pooled = four;
  pooled.pool = &pool;
  const auto with_pool =
      AnswerStatisticsExtractor::Create(&sources, query, pooled)->Extract();
  ASSERT_TRUE(with_pool.ok());
  EXPECT_EQ(with_pool->samples, reference->samples);
  // The whole pipeline — not just sampling — is pool-invariant.
  EXPECT_EQ(with_pool->mean.value, reference->mean.value);
  EXPECT_EQ(with_pool->variance.value, reference->variance.value);
  EXPECT_EQ(with_pool->skewness.value, reference->skewness.value);
  const auto reference_density = reference->density.values();
  const auto pooled_density = with_pool->density.values();
  ASSERT_EQ(pooled_density.size(), reference_density.size());
  for (size_t i = 0; i < reference_density.size(); ++i) {
    EXPECT_EQ(pooled_density[i], reference_density[i]);
  }
}

TEST(ExtractorTest, ResolvedSingleWorkerUsesTheSerialSampler) {
  // sampling_threads = 0 on a 1-core host resolves to one worker; Extract()
  // must then take the serial path and reproduce sampling_threads = 1
  // exactly. On multi-core hosts 0 resolves to > 1 workers, where the two
  // modes legitimately differ (chunked vs serial seed stream), so the
  // assertion is gated on the resolved width.
  const auto mixture = MakeD2(55);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 40;
  source_options.seed = 56;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 40);

  ExtractorOptions serial;
  serial.initial_sample_size = 150;
  serial.weight_probes = 10;
  serial.sampling_threads = 1;
  ExtractorOptions zero = serial;
  zero.sampling_threads = 0;
  const auto one =
      AnswerStatisticsExtractor::Create(&sources, query, serial)->Extract();
  const auto resolved =
      AnswerStatisticsExtractor::Create(&sources, query, zero)->Extract();
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(resolved.ok());
  if (ResolveSamplingThreads(0, std::thread::hardware_concurrency()) == 1) {
    EXPECT_EQ(resolved->samples, one->samples);
    EXPECT_EQ(resolved->mean.value, one->mean.value);
  } else {
    EXPECT_EQ(resolved->samples.size(), one->samples.size());
  }
}

TEST(ExtractorTest, QuantileAggregateEndToEnd) {
  SourceSet sources = testing::MakeFigure1Sources();
  AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kQuantile);
  query.quantile_q = 0.8;
  ExtractorOptions options;
  options.initial_sample_size = 150;
  options.weight_probes = 5;
  options.kde.rule = BandwidthRule::kSilverman;
  const auto extractor =
      AnswerStatisticsExtractor::Create(&sources, query, options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok());
  // 0.8-quantiles of the Figure 1 values lie within the value range.
  EXPECT_GT(stats->mean.value, 15.0);
  EXPECT_LT(stats->mean.value, 22.0);
}

class ExtractorCiMethodSweep : public ::testing::TestWithParam<CiMethod> {};

TEST_P(ExtractorCiMethodSweep, AllMethodsProduceOrderedFiniteIntervals) {
  SourceSet sources = testing::MakeFigure1Sources();
  ExtractorOptions options;
  options.initial_sample_size = 150;
  options.weight_probes = 5;
  options.ci_method = GetParam();
  options.kde.rule = BandwidthRule::kSilverman;
  const auto extractor = AnswerStatisticsExtractor::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum), options);
  ASSERT_TRUE(extractor.ok());
  const auto stats = extractor->Extract();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const PointEstimate* estimate :
       {&stats->mean, &stats->variance, &stats->std_dev, &stats->skewness}) {
    EXPECT_LE(estimate->ci.lo, estimate->ci.hi);
    EXPECT_TRUE(std::isfinite(estimate->ci.lo));
    EXPECT_TRUE(std::isfinite(estimate->ci.hi));
    EXPECT_DOUBLE_EQ(estimate->ci.level, 0.90);
  }
  // Viable sums live in [89, 96]; any sane mean CI does too.
  EXPECT_GT(stats->mean.ci.lo, 85.0);
  EXPECT_LT(stats->mean.ci.hi, 99.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, ExtractorCiMethodSweep,
                         ::testing::Values(CiMethod::kNormal,
                                           CiMethod::kPercentile,
                                           CiMethod::kBasic, CiMethod::kBca));

TEST(ExtractorTest, ExtractFromSamplesSkipsSampling) {
  SourceSet sources = testing::MakeFigure1Sources();
  const auto extractor = AnswerStatisticsExtractor::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum),
      ExtractorOptions{});
  ASSERT_TRUE(extractor.ok());
  Rng rng(7);
  std::vector<double> fake_samples = testing::NormalSample(100, 7, 92.0, 1.0);
  const auto stats = extractor->ExtractFromSamples(fake_samples, rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->timings.sampling_seconds, 0.0);
  EXPECT_NEAR(stats->mean.value, 92.0, 0.5);
  // Too few samples is rejected.
  std::vector<double> tiny = {1, 2, 3};
  EXPECT_FALSE(extractor->ExtractFromSamples(tiny, rng).ok());
}

}  // namespace
}  // namespace vastats
