// Fault-injection parity matrix: the real async transport must reproduce
// the simulated fault seam bit-exactly. For each fault scenario (transient
// failures, slow sources against deadline budgets, a permanent partial
// outage, a total outage) the transported run's kept samples, coverages,
// dropped-draw count, and merged AccessStats are compared field-for-field
// against the simulated reference — across both endpoint backends, several
// execution widths, and with hedging racing duplicates on the wire.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "datagen/distributions.h"
#include "datagen/fault_model.h"
#include "datagen/source_accessor.h"
#include "datagen/source_builder.h"
#include "sampling/parallel.h"
#include "sampling/unis.h"
#include "stats/aggregate_query.h"
#include "test_util.h"
#include "transport/async_transport.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

Result<SourceSet> BuildRedundantSources(uint64_t seed) {
  SyntheticSourceSetOptions options;
  options.num_sources = 30;
  options.num_components = 60;
  options.min_copies = 3;
  options.max_copies = 5;
  options.seed = seed;
  const auto d2 = MakeD2(seed + 1);
  return BuildSyntheticSourceSet(*d2, options);
}

void ExpectAccessStatsEq(const AccessStats& got, const AccessStats& want) {
  EXPECT_EQ(got.visits, want.visits);
  EXPECT_EQ(got.attempts, want.attempts);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.transient_failures, want.transient_failures);
  EXPECT_EQ(got.failed_visits, want.failed_visits);
  EXPECT_EQ(got.breaker_open_skips, want.breaker_open_skips);
  EXPECT_EQ(got.corrupt_values_rejected, want.corrupt_values_rejected);
  EXPECT_EQ(got.breaker_transitions, want.breaker_transitions);
  EXPECT_EQ(got.deadline_truncated_draws, want.deadline_truncated_draws);
  EXPECT_DOUBLE_EQ(got.virtual_ms, want.virtual_ms);
  EXPECT_DOUBLE_EQ(got.backoff_ms, want.backoff_ms);
  EXPECT_EQ(got.breaker_severity, want.breaker_severity);
}

void ExpectResultsEq(const FaultAwareSampleResult& got,
                     const FaultAwareSampleResult& want) {
  ASSERT_EQ(got.values.size(), want.values.size());
  for (size_t i = 0; i < got.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.values[i], want.values[i]);
    EXPECT_DOUBLE_EQ(got.coverages[i], want.coverages[i]);
  }
  EXPECT_EQ(got.dropped_draws, want.dropped_draws);
  ExpectAccessStatsEq(got.access, want.access);
}

struct ParityScenario {
  const char* name;
  FaultModelOptions fault;
  RetryPolicy retry;
  double min_coverage = 0.3;
};

std::vector<ParityScenario> ParityMatrix() {
  std::vector<ParityScenario> scenarios;

  ParityScenario transient;
  transient.name = "transient_failures";
  transient.fault.transient_failure_prob = 0.25;
  transient.fault.failure_spread_sigma = 0.5;
  transient.fault.corrupt_value_prob = 0.05;
  transient.fault.seed = 8001;
  scenarios.push_back(transient);

  ParityScenario slow;
  slow.name = "slow_sources_vs_deadlines";
  slow.fault.latency_base_ms = 30.0;
  slow.fault.latency_per_component_ms = 1.0;
  slow.fault.latency_jitter_sigma = 0.4;
  slow.fault.transient_failure_prob = 0.1;
  slow.fault.seed = 8002;
  slow.retry.draw_deadline_ms = 120.0;
  slow.retry.session_deadline_ms = 30000.0;
  slow.min_coverage = 0.1;
  scenarios.push_back(slow);

  ParityScenario outage;
  outage.name = "permanent_partial_outage";
  outage.fault.transient_failure_prob = 0.1;
  outage.fault.outage_fraction = 0.25;
  outage.fault.outage_epoch = 24;
  outage.fault.seed = 8003;
  scenarios.push_back(outage);

  ParityScenario dark;
  dark.name = "total_outage";
  dark.fault.outage_fraction = 1.0;
  dark.fault.outage_epoch = 0;
  dark.fault.seed = 8004;
  scenarios.push_back(dark);

  return scenarios;
}

class TransportParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto set = BuildRedundantSources(51);
    ASSERT_TRUE(set.ok());
    sources_ = std::move(set).value();
    auto sampler = UniSSampler::Create(
        &sources_, MakeRangeQuery("parity", AggregateKind::kAverage, 0, 60));
    ASSERT_TRUE(sampler.ok());
    sampler_ = std::make_unique<UniSSampler>(std::move(sampler).value());
  }

  // One chaos run over the chunk-indexed driver; `transport` nullable.
  Result<FaultAwareSampleResult> Run(const ParityScenario& scenario,
                                     const FaultModel& model,
                                     transport::AsyncSourceTransport* transport,
                                     int num_threads,
                                     ThreadPool* pool = nullptr) {
    VASTATS_ASSIGN_OR_RETURN(
        const SourceAccessor accessor,
        SourceAccessor::Create(sources_.NumSources(), &model,
                               scenario.retry));
    ParallelSampleOptions options;
    options.seed = 0xc0ffee;
    options.chunk_draws = 32;
    options.num_threads = num_threads;
    options.pool = pool;
    if (transport != nullptr) {
      options.transport_factory =
          [transport]() -> std::unique_ptr<VisitTransport> {
        auto channel = transport->OpenChannel();
        return channel.ok() ? std::move(channel).value() : nullptr;
      };
    }
    return ParallelUniSSampleWithFaults(*sampler_, 128, accessor,
                                        scenario.min_coverage, options);
  }

  SourceSet sources_;
  std::unique_ptr<UniSSampler> sampler_;
};

TEST_F(TransportParityTest, MatrixMatchesSimulatedSeamAcrossBackends) {
  for (const ParityScenario& scenario : ParityMatrix()) {
    SCOPED_TRACE(scenario.name);
    const auto model =
        FaultModel::Create(sources_.NumSources(), scenario.fault);
    ASSERT_TRUE(model.ok());
    const auto reference = Run(scenario, *model, nullptr, 1);
    ASSERT_TRUE(reference.ok());

    for (const transport::EndpointBackend backend :
         {transport::EndpointBackend::kInProcess,
          transport::EndpointBackend::kSocketPair}) {
      SCOPED_TRACE(backend == transport::EndpointBackend::kInProcess
                       ? "in_process"
                       : "socket_pair");
      transport::TransportOptions options;
      options.endpoint.backend = backend;
      options.max_in_flight = 4;
      auto async =
          transport::AsyncSourceTransport::Create(sources_, &*model, options);
      ASSERT_TRUE(async.ok());
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(threads);
        const auto transported =
            Run(scenario, *model, async->get(), threads);
        ASSERT_TRUE(transported.ok());
        ExpectResultsEq(*transported, *reference);
      }
    }
  }
}

TEST_F(TransportParityTest, ScenariosActuallyExerciseTheirFaultClass) {
  // Guard against a parity matrix that trivially passes because nothing
  // went wrong: each scenario must visibly bite in the reference run.
  const std::vector<ParityScenario> scenarios = ParityMatrix();
  const auto reference = [&](const ParityScenario& scenario) {
    const auto model =
        FaultModel::Create(sources_.NumSources(), scenario.fault);
    EXPECT_TRUE(model.ok());
    auto result = Run(scenario, *model, nullptr, 1);
    EXPECT_TRUE(result.ok());
    return std::move(result).value();
  };

  const FaultAwareSampleResult transient = reference(scenarios[0]);
  EXPECT_GT(transient.access.transient_failures, 0u);
  EXPECT_GT(transient.access.retries, 0u);
  EXPECT_FALSE(transient.values.empty());

  const FaultAwareSampleResult slow = reference(scenarios[1]);
  EXPECT_GT(slow.access.deadline_truncated_draws, 0u);

  const FaultAwareSampleResult outage = reference(scenarios[2]);
  EXPECT_GT(outage.access.SourcesOpen(), 0);
  EXPECT_GT(outage.access.breaker_open_skips, 0u);

  const FaultAwareSampleResult dark = reference(scenarios[3]);
  EXPECT_TRUE(dark.values.empty());
  EXPECT_EQ(dark.dropped_draws, 128);
}

TEST_F(TransportParityTest, PooledTransportedRunMatchesToo) {
  const ParityScenario scenario = ParityMatrix()[0];
  const auto model = FaultModel::Create(sources_.NumSources(), scenario.fault);
  ASSERT_TRUE(model.ok());
  const auto reference = Run(scenario, *model, nullptr, 1);
  ASSERT_TRUE(reference.ok());

  transport::TransportOptions options;
  auto async =
      transport::AsyncSourceTransport::Create(sources_, &*model, options);
  ASSERT_TRUE(async.ok());
  ThreadPool pool(ThreadPoolOptions{4});
  const auto transported = Run(scenario, *model, async->get(), 0, &pool);
  ASSERT_TRUE(transported.ok());
  ExpectResultsEq(*transported, *reference);
}

TEST_F(TransportParityTest, HedgedWallRealizedRunStaysBitIdentical) {
  // Hedging + wall-realized latency + keyed stragglers: the wire timing is
  // maximally nondeterministic, but in kModelVirtual mode the samplers'
  // view must not move by a single bit.
  const ParityScenario scenario = ParityMatrix()[0];
  const auto model = FaultModel::Create(sources_.NumSources(), scenario.fault);
  ASSERT_TRUE(model.ok());
  const auto reference = Run(scenario, *model, nullptr, 1);
  ASSERT_TRUE(reference.ok());

  transport::TransportOptions options;
  options.endpoint.service_threads = 4;
  options.endpoint.wall_ms_per_virtual_ms = 0.02;
  options.endpoint.straggler_fraction = 0.2;
  options.endpoint.straggler_multiplier = 20.0;
  options.hedge.enabled = true;
  options.hedge.percentile = 0.5;
  options.hedge.multiplier = 2.0;
  options.hedge.min_samples = 8;
  options.hedge.min_cutoff_ms = 0.2;
  options.poll_quantum_ms = 0.05;
  auto async =
      transport::AsyncSourceTransport::Create(sources_, &*model, options);
  ASSERT_TRUE(async.ok());
  const auto transported = Run(scenario, *model, async->get(), 4);
  ASSERT_TRUE(transported.ok());
  ExpectResultsEq(*transported, *reference);
}

TEST(TransportExtractorParityTest, FullExtractionMatchesSimulatedRun) {
  const auto set = BuildRedundantSources(77);
  ASSERT_TRUE(set.ok());
  FaultModelOptions fault_options;
  fault_options.transient_failure_prob = 0.15;
  fault_options.corrupt_value_prob = 0.02;
  fault_options.outage_fraction = 0.2;
  fault_options.outage_epoch = 16;
  fault_options.seed = 31337;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());

  ExtractorOptions options;
  options.initial_sample_size = 96;
  options.bootstrap.num_sets = 20;
  options.weight_probes = 5;
  options.seed = 2024;
  FaultToleranceOptions fault;
  fault.model = &*model;
  fault.min_draw_coverage = 0.4;
  options.fault_tolerance = fault;
  options.sampling_threads = 4;

  const auto query = MakeRangeQuery("chaos", AggregateKind::kAverage, 0, 60);
  const auto simulated_extractor =
      AnswerStatisticsExtractor::Create(&*set, query, options);
  ASSERT_TRUE(simulated_extractor.ok());
  const auto simulated = simulated_extractor->Extract();
  ASSERT_TRUE(simulated.ok());
  ASSERT_TRUE(simulated->degradation.degraded);

  transport::TransportOptions transport_options;
  auto async =
      transport::AsyncSourceTransport::Create(*set, &*model, transport_options);
  ASSERT_TRUE(async.ok());
  options.fault_tolerance->transport = async->get();
  const auto transported_extractor =
      AnswerStatisticsExtractor::Create(&*set, query, options);
  ASSERT_TRUE(transported_extractor.ok());
  const auto transported = transported_extractor->Extract();
  ASSERT_TRUE(transported.ok());

  ASSERT_EQ(transported->samples.size(), simulated->samples.size());
  for (size_t i = 0; i < transported->samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(transported->samples[i], simulated->samples[i]);
  }
  EXPECT_EQ(transported->degradation.degraded,
            simulated->degradation.degraded);
  EXPECT_EQ(transported->degradation.draws_requested,
            simulated->degradation.draws_requested);
  EXPECT_EQ(transported->degradation.draws_kept,
            simulated->degradation.draws_kept);
  EXPECT_EQ(transported->degradation.draws_dropped,
            simulated->degradation.draws_dropped);
  EXPECT_DOUBLE_EQ(transported->degradation.min_coverage,
                   simulated->degradation.min_coverage);
  EXPECT_DOUBLE_EQ(transported->degradation.mean_coverage,
                   simulated->degradation.mean_coverage);
  ExpectAccessStatsEq(transported->degradation.access,
                      simulated->degradation.access);
  EXPECT_DOUBLE_EQ(transported->mean.value, simulated->mean.value);
  EXPECT_DOUBLE_EQ(transported->variance.value, simulated->variance.value);
  EXPECT_DOUBLE_EQ(transported->stability.stab_l2,
                   simulated->stability.stab_l2);
}

TEST(TransportExtractorParityTest, AdaptiveSingleChannelPathMatches) {
  const auto set = BuildRedundantSources(91);
  ASSERT_TRUE(set.ok());
  FaultModelOptions fault_options;
  fault_options.transient_failure_prob = 0.2;
  fault_options.seed = 606;
  const auto model = FaultModel::Create(30, fault_options);
  ASSERT_TRUE(model.ok());

  ExtractorOptions options;
  options.bootstrap.num_sets = 20;
  options.weight_probes = 5;
  options.seed = 515;
  AdaptiveSamplingOptions adaptive;
  adaptive.initial_size = 64;
  adaptive.increment = 32;
  adaptive.max_size = 160;
  adaptive.target_ci_length = 1e-9;  // never satisfied: fixed growth path
  adaptive.bootstrap.num_sets = 20;
  options.adaptive = adaptive;
  FaultToleranceOptions fault;
  fault.model = &*model;
  options.fault_tolerance = fault;

  const auto query = MakeRangeQuery("adaptive", AggregateKind::kSum, 0, 60);
  const auto simulated_extractor =
      AnswerStatisticsExtractor::Create(&*set, query, options);
  ASSERT_TRUE(simulated_extractor.ok());
  const auto simulated = simulated_extractor->Extract();
  ASSERT_TRUE(simulated.ok());

  transport::TransportOptions transport_options;
  transport_options.endpoint.backend =
      transport::EndpointBackend::kSocketPair;
  auto async = transport::AsyncSourceTransport::Create(*set, &*model,
                                                       transport_options);
  ASSERT_TRUE(async.ok());
  options.fault_tolerance->transport = async->get();
  const auto transported_extractor =
      AnswerStatisticsExtractor::Create(&*set, query, options);
  ASSERT_TRUE(transported_extractor.ok());
  const auto transported = transported_extractor->Extract();
  ASSERT_TRUE(transported.ok());

  ASSERT_EQ(transported->samples.size(), simulated->samples.size());
  for (size_t i = 0; i < transported->samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(transported->samples[i], simulated->samples[i]);
  }
  ExpectAccessStatsEq(transported->degradation.access,
                      simulated->degradation.access);
}

}  // namespace
}  // namespace vastats
