#include "density/grid_density.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/math.h"

namespace vastats {
namespace {

GridDensity MakeTriangle() {
  // Triangle over [0, 2] peaking at x=1: f(x) = x on [0,1], 2-x on [1,2].
  return testing::MakeAnalyticDensity(0.0, 2.0, 2001, [](double x) {
    return x <= 1.0 ? x : 2.0 - x;
  });
}

TEST(GridDensityTest, CreateValidatesInput) {
  EXPECT_FALSE(GridDensity::Create(1.0, 1.0, {0.1, 0.2}).ok());
  EXPECT_FALSE(GridDensity::Create(0.0, 1.0, {0.1}).ok());
  EXPECT_FALSE(GridDensity::Create(0.0, 1.0, {0.1, -0.2}).ok());
  EXPECT_TRUE(GridDensity::Create(0.0, 1.0, {0.1, 0.2}).ok());
}

TEST(GridDensityTest, GeometryAccessors) {
  const GridDensity density =
      GridDensity::Create(0.0, 10.0, std::vector<double>(11, 0.1)).value();
  EXPECT_DOUBLE_EQ(density.x_min(), 0.0);
  EXPECT_DOUBLE_EQ(density.x_max(), 10.0);
  EXPECT_DOUBLE_EQ(density.step(), 1.0);
  EXPECT_DOUBLE_EQ(density.range(), 10.0);
  EXPECT_EQ(density.size(), 11u);
  EXPECT_DOUBLE_EQ(density.XAt(3), 3.0);
}

TEST(GridDensityTest, ValueAtInterpolatesLinearly) {
  const GridDensity density =
      GridDensity::Create(0.0, 1.0, {0.0, 1.0}).value();
  EXPECT_DOUBLE_EQ(density.ValueAt(0.25), 0.25);
  EXPECT_DOUBLE_EQ(density.ValueAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(density.ValueAt(1.0), 1.0);
  EXPECT_DOUBLE_EQ(density.ValueAt(-0.1), 0.0);  // outside -> 0
  EXPECT_DOUBLE_EQ(density.ValueAt(1.1), 0.0);
}

TEST(GridDensityTest, TotalMassOfTriangleIsOne) {
  const GridDensity density = MakeTriangle();
  EXPECT_NEAR(density.TotalMass(), 1.0, 1e-9);
}

TEST(GridDensityTest, IntegrateRangeSubIntervals) {
  const GridDensity density = MakeTriangle();
  // CDF of the triangle: x^2/2 on [0,1].
  EXPECT_NEAR(density.IntegrateRange(0.0, 0.5), 0.125, 1e-6);
  EXPECT_NEAR(density.IntegrateRange(0.0, 1.0), 0.5, 1e-6);
  EXPECT_NEAR(density.IntegrateRange(0.5, 1.5), 0.75, 1e-6);
  // Clipping and degenerate ranges.
  EXPECT_NEAR(density.IntegrateRange(-5.0, 5.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(density.IntegrateRange(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(density.IntegrateRange(2.0, 1.0), 0.0);
}

TEST(GridDensityTest, IntegrateRangeSubCellPrecision) {
  const GridDensity density =
      GridDensity::Create(0.0, 1.0, {1.0, 1.0}).value();  // uniform
  EXPECT_NEAR(density.IntegrateRange(0.3, 0.31), 0.01, 1e-12);
}

TEST(GridDensityTest, NormalizeScalesToUnitMass) {
  GridDensity density =
      GridDensity::Create(0.0, 1.0, {2.0, 2.0, 2.0}).value();
  ASSERT_TRUE(density.Normalize().ok());
  EXPECT_NEAR(density.TotalMass(), 1.0, 1e-12);
  GridDensity zero = GridDensity::Create(0.0, 1.0, {0.0, 0.0}).value();
  EXPECT_FALSE(zero.Normalize().ok());
}

TEST(GridDensityTest, CdfMonotoneAndBounded) {
  const GridDensity density = MakeTriangle();
  double prev = -1.0;
  for (double x = -0.5; x <= 2.5; x += 0.1) {
    const double c = density.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(density.Cdf(-1.0), 0.0);
  EXPECT_NEAR(density.Cdf(3.0), 1.0, 1e-9);
}

TEST(GridDensityTest, QuantileInvertsCdf) {
  const GridDensity density = MakeTriangle();
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const auto x = density.QuantileOf(q);
    ASSERT_TRUE(x.ok());
    EXPECT_NEAR(density.Cdf(x.value()), q, 1e-4) << "q=" << q;
  }
  EXPECT_FALSE(density.QuantileOf(-0.1).ok());
  EXPECT_FALSE(density.QuantileOf(1.1).ok());
}

TEST(GridDensityTest, FindModesSingle) {
  const GridDensity density = MakeTriangle();
  const std::vector<Mode> modes = density.FindModes();
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_NEAR(modes[0].x, 1.0, 1e-3);
  EXPECT_NEAR(modes[0].height, 1.0, 1e-3);
}

TEST(GridDensityTest, FindModesMultipleSortedByHeight) {
  const GridDensity density = testing::MakeBumpDensity(
      0.0, 30.0, 3001,
      {{0.2, 5.0, 1.0}, {0.5, 15.0, 1.0}, {0.3, 25.0, 1.0}});
  const std::vector<Mode> modes = density.FindModes(0.05);
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_NEAR(modes[0].x, 15.0, 0.1);  // tallest first
  EXPECT_NEAR(modes[1].x, 25.0, 0.1);
  EXPECT_NEAR(modes[2].x, 5.0, 0.1);
  EXPECT_GE(modes[0].height, modes[1].height);
  EXPECT_GE(modes[1].height, modes[2].height);
}

TEST(GridDensityTest, FindModesRelativeHeightFilter) {
  const GridDensity density = testing::MakeBumpDensity(
      0.0, 30.0, 3001, {{0.95, 10.0, 1.0}, {0.05, 25.0, 1.0}});
  EXPECT_EQ(density.FindModes(0.0).size(), 2u);
  EXPECT_EQ(density.FindModes(0.2).size(), 1u);
}

TEST(GridDensityTest, FindModesPlateauReportsMidpoint) {
  const GridDensity density =
      GridDensity::Create(0.0, 4.0, {0.0, 1.0, 1.0, 1.0, 0.0}).value();
  const std::vector<Mode> modes = density.FindModes();
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_DOUBLE_EQ(modes[0].x, 2.0);
}

TEST(GridDensityTest, FindModesBoundaryMaximum) {
  const GridDensity density =
      GridDensity::Create(0.0, 2.0, {2.0, 1.0, 0.0}).value();
  const std::vector<Mode> modes = density.FindModes();
  ASSERT_EQ(modes.size(), 1u);
  EXPECT_DOUBLE_EQ(modes[0].x, 0.0);
}

TEST(GridDensityTest, FindModesConstantDensityHasNone) {
  const GridDensity density =
      GridDensity::Create(0.0, 1.0, {1.0, 1.0, 1.0}).value();
  EXPECT_TRUE(density.FindModes().empty());
}

TEST(GridDensityTest, ModeProminenceOfIsolatedPeaks) {
  // Two well-separated Gaussians dropping to ~0 between them: each mode's
  // prominence is essentially its height.
  const GridDensity density = testing::MakeBumpDensity(
      0.0, 40.0, 4001, {{0.6, 10.0, 1.0}, {0.4, 30.0, 1.0}});
  const std::vector<Mode> modes = density.FindModes(0.1);
  ASSERT_EQ(modes.size(), 2u);
  EXPECT_NEAR(density.ModeProminence(modes[0].index), modes[0].height,
              0.01 * modes[0].height);
  EXPECT_NEAR(density.ModeProminence(modes[1].index), modes[1].height,
              0.01 * modes[1].height);
}

TEST(GridDensityTest, ModeProminenceOfRippleIsSmall) {
  // A small ripple riding on the flank of a big hump: high height, tiny
  // prominence.
  const GridDensity density = testing::MakeAnalyticDensity(
      -5.0, 5.0, 4001, [](double x) {
        return NormalPdf(x) + 0.005 * NormalPdf((x - 1.0) / 0.05) / 0.05;
      });
  const std::vector<Mode> modes = density.FindModes(0.0);
  ASSERT_GE(modes.size(), 2u);
  // The ripple is the non-tallest mode nearest x = 1.
  const Mode* ripple = nullptr;
  for (const Mode& mode : modes) {
    if (std::fabs(mode.x - 1.0) < 0.2) ripple = &mode;
  }
  ASSERT_NE(ripple, nullptr);
  EXPECT_GT(ripple->height, 0.5 * modes[0].height);  // tall in height...
  EXPECT_LT(density.ModeProminence(ripple->index),
            0.2 * modes[0].height);  // ...but barely prominent
  // FindProminentModes keeps only the main hump at a 30% threshold.
  const std::vector<Mode> prominent = density.FindProminentModes(0.3);
  ASSERT_EQ(prominent.size(), 1u);
  EXPECT_NEAR(prominent[0].x, 0.0, 0.1);
}

TEST(GridDensityTest, FindProminentModesKeepsRealStructure) {
  const GridDensity density = testing::MakeBumpDensity(
      0.0, 60.0, 4001,
      {{0.4, 10.0, 1.0}, {0.35, 30.0, 1.0}, {0.25, 50.0, 1.0}});
  EXPECT_EQ(density.FindProminentModes(0.1).size(), 3u);
  EXPECT_TRUE(
      GridDensity::Create(0.0, 1.0, {1.0, 1.0}).value()
          .FindProminentModes(0.1)
          .empty());
}

TEST(GridDensityTest, AccumulateScaledAveragesDensities) {
  GridDensity a = GridDensity::Create(0.0, 1.0, {1.0, 1.0, 1.0}).value();
  const GridDensity b =
      GridDensity::Create(0.0, 1.0, {3.0, 3.0, 3.0}).value();
  a.AccumulateScaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a.ValueAt(0.5), 2.5);
}

TEST(GridDensityTest, ResampleOntoWiderGrid) {
  const GridDensity density = MakeTriangle();
  const auto wide = density.Resample(-1.0, 3.0, 801);
  ASSERT_TRUE(wide.ok());
  EXPECT_DOUBLE_EQ(wide->ValueAt(-0.5), 0.0);
  EXPECT_NEAR(wide->ValueAt(1.0), 1.0, 1e-3);
  EXPECT_NEAR(wide->TotalMass(), 1.0, 1e-2);
  EXPECT_FALSE(density.Resample(1.0, 0.0, 100).ok());
}

}  // namespace
}  // namespace vastats
