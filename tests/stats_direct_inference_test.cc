#include "stats/direct_inference.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/math.h"

namespace vastats {
namespace {

Moments GaussianMoments(int n, uint64_t seed, double mean, double sigma) {
  return ComputeMoments(testing::NormalSample(n, seed, mean, sigma));
}

TEST(DirectMeanCiTest, CltWidthMatchesFormula) {
  const Moments moments = GaussianMoments(400, 1, 10.0, 2.0);
  const auto ci = DirectMeanCi(moments, 0.90, DirectMethod::kClt);
  ASSERT_TRUE(ci.ok());
  const double z = NormalQuantile(0.95).value();
  const double expected = 2.0 * z * moments.SampleStdDev() / 20.0;
  EXPECT_NEAR(ci->Length(), expected, 1e-12);
  EXPECT_TRUE(ci->Contains(moments.mean()));
}

TEST(DirectMeanCiTest, ChebyshevWiderThanClt) {
  const Moments moments = GaussianMoments(400, 2, 0.0, 1.0);
  const auto cheb = DirectMeanCi(moments, 0.90, DirectMethod::kChebyshev);
  const auto clt = DirectMeanCi(moments, 0.90, DirectMethod::kClt);
  ASSERT_TRUE(cheb.ok());
  ASSERT_TRUE(clt.ok());
  // 1/sqrt(0.1) = 3.162 vs z_{0.95} = 1.645: ~1.9x wider.
  EXPECT_NEAR(cheb->Length() / clt->Length(),
              (1.0 / std::sqrt(0.1)) / NormalQuantile(0.95).value(), 1e-9);
}

TEST(DirectMeanCiTest, ChebyshevGuaranteesCoverage) {
  // Chebyshev is distribution-free: coverage across trials must exceed the
  // nominal level even on skewed data.
  int covered = 0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(3000 + static_cast<uint64_t>(t));
    std::vector<double> data(100);
    for (double& v : data) v = rng.Exponential(0.5);  // mean 2
    const auto ci = DirectMeanCi(ComputeMoments(data), 0.90,
                                 DirectMethod::kChebyshev);
    ASSERT_TRUE(ci.ok());
    if (ci->Contains(2.0)) ++covered;
  }
  EXPECT_GT(static_cast<double>(covered) / kTrials, 0.95);
}

TEST(DirectMeanCiTest, RejectsDegenerateInput) {
  Moments one;
  one.Add(1.0);
  EXPECT_FALSE(DirectMeanCi(one, 0.9, DirectMethod::kClt).ok());
  const Moments two = ComputeMoments(std::vector<double>{1.0, 2.0});
  EXPECT_FALSE(DirectMeanCi(two, 1.5, DirectMethod::kClt).ok());
}

TEST(DirectVarianceCiTest, CoversTrueVarianceOnGaussianData) {
  int covered = 0;
  const int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    const Moments moments =
        GaussianMoments(200, 4000 + static_cast<uint64_t>(t), 0.0, 3.0);
    const auto ci = DirectVarianceCi(moments, 0.90);
    ASSERT_TRUE(ci.ok());
    EXPECT_LT(ci->lo, ci->hi);
    if (ci->Contains(9.0)) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / kTrials, 0.90, 0.08);
}

TEST(DirectVarianceCiTest, IntervalBracketsSampleVariance) {
  const Moments moments = GaussianMoments(100, 5, 1.0, 2.0);
  const auto ci = DirectVarianceCi(moments, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci->lo, moments.SampleVariance());
  EXPECT_GT(ci->hi, moments.SampleVariance());
}

TEST(DirectSkewnessCiTest, CentersOnSampleSkewness) {
  const Moments moments = GaussianMoments(500, 6, 0.0, 1.0);
  const auto ci = DirectSkewnessCi(moments, 0.90);
  ASSERT_TRUE(ci.ok());
  EXPECT_NEAR(0.5 * (ci->lo + ci->hi), moments.Skewness(), 1e-12);
  // SE of skewness at n=500 is ~0.109; the 90% interval ~0.36 wide.
  EXPECT_NEAR(ci->Length(), 2.0 * 1.645 * 0.109, 0.02);
}

TEST(DirectSkewnessCiTest, RejectsTinySamples) {
  const Moments three = ComputeMoments(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_FALSE(DirectSkewnessCi(three, 0.9).ok());
}

TEST(RequiredSampleSizeTest, SolvesTheWidthEquation) {
  // n such that 2 * k * s / sqrt(n) = L.
  const double n =
      DirectMeanRequiredSampleSize(2.0, 0.90, 0.5, DirectMethod::kChebyshev)
          .value();
  const double k = 1.0 / std::sqrt(0.1);
  const double width = 2.0 * k * 2.0 / std::sqrt(n);
  EXPECT_NEAR(width, 0.5, 1e-9);
}

TEST(RequiredSampleSizeTest, ScalesInverselyWithSquaredLength) {
  const double n1 =
      DirectMeanRequiredSampleSize(1.0, 0.90, 0.2, DirectMethod::kClt)
          .value();
  const double n2 =
      DirectMeanRequiredSampleSize(1.0, 0.90, 0.1, DirectMethod::kClt)
          .value();
  EXPECT_NEAR(n2 / n1, 4.0, 1e-9);
}

TEST(RequiredSampleSizeTest, RejectsBadInput) {
  EXPECT_FALSE(
      DirectMeanRequiredSampleSize(-1.0, 0.9, 0.5, DirectMethod::kClt).ok());
  EXPECT_FALSE(
      DirectMeanRequiredSampleSize(1.0, 0.9, 0.0, DirectMethod::kClt).ok());
  EXPECT_FALSE(
      DirectMeanRequiredSampleSize(1.0, 1.5, 0.5, DirectMethod::kClt).ok());
}

}  // namespace
}  // namespace vastats
