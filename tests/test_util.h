// Shared fixtures and builders for the vastats test suite.

#ifndef VASTATS_TESTS_TEST_UTIL_H_
#define VASTATS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <vector>

#include "density/grid_density.h"
#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/math.h"
#include "util/random.h"

namespace vastats::testing {

// The four-source climate scenario of the paper's Figure 1, reduced to the
// temperature components that matter:
//   component 1: Burnaby   2006-06-10  (D1: 21, D2: 21, D3: 19)
//   component 2: Vancouver 2006-06-11  (D1: 19, D2: 22, D3: 17)
//   component 3: Surrey    2006-06-11  (D3: 15, D4: 15)
//   component 4: Vancouver 2006-06-12  (D3: 20)
//   component 5: Richmond  2006-06-12  (D2: 18)
inline SourceSet MakeFigure1Sources() {
  SourceSet set;
  DataSource d1("D1");
  d1.Bind(1, 21.0);
  d1.Bind(2, 19.0);
  DataSource d2("D2");
  d2.Bind(1, 21.0);
  d2.Bind(2, 22.0);
  d2.Bind(5, 18.0);
  DataSource d3("D3");
  d3.Bind(1, 19.0);
  d3.Bind(2, 17.0);
  d3.Bind(3, 15.0);
  d3.Bind(4, 20.0);
  DataSource d4("D4");
  d4.Bind(3, 15.0);
  set.AddSource(std::move(d1));
  set.AddSource(std::move(d2));
  set.AddSource(std::move(d3));
  set.AddSource(std::move(d4));
  return set;
}

inline AggregateQuery MakeFigure1Query(AggregateKind kind) {
  AggregateQuery query;
  query.name = "figure1";
  query.kind = kind;
  query.components = {1, 2, 3, 4, 5};
  return query;
}

// n standard-normal draws.
inline std::vector<double> NormalSample(int n, uint64_t seed,
                                        double mean = 0.0,
                                        double sigma = 1.0) {
  Rng rng(seed);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) v = rng.Normal(mean, sigma);
  return values;
}

// Equal mixture of N(0,1) and N(gap,1).
inline std::vector<double> BimodalSample(int n, uint64_t seed,
                                         double gap = 10.0) {
  Rng rng(seed);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) {
    v = rng.Bernoulli(0.5) ? rng.Normal(0.0, 1.0) : rng.Normal(gap, 1.0);
  }
  return values;
}

// ---- Shape fixtures shared by the binned-vs-direct KDE agreement matrix
// (density_kde_test.cc) and the binned-vs-exact stability Psi agreement
// matrix (core_stability_test.cc): one smooth unimodal shape, one bimodal,
// one heavy tail (stresses padding / reflective boundaries), and one
// near-discrete multiset (collapses the plug-in bandwidth to the grid
// resolution clamp).

inline std::vector<double> UnimodalSample(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(600);
  for (double& v : values) v = rng.Normal(3.0, 1.2);
  return values;
}

inline std::vector<double> BimodalAgreementSample(uint64_t seed) {
  return BimodalSample(600, seed, 8.0);
}

inline std::vector<double> HeavyTailSample(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(600);
  // Exponential with a slow rate: long right tail stresses the padding and
  // the reflective boundary handling.
  for (double& v : values) v = rng.Exponential(0.25);
  return values;
}

inline std::vector<double> NearDiscreteSample(uint64_t seed) {
  // Three atoms (Figure 1 style answer multiset) plus light jitter: the
  // plug-in bandwidth collapses and the binned paths must fall back to (or
  // clamp at) their grid-resolution limits.
  Rng rng(seed);
  std::vector<double> values(400);
  for (size_t i = 0; i < values.size(); ++i) {
    const double atom = (i % 3 == 0) ? 89.0 : (i % 3 == 1 ? 93.0 : 96.0);
    values[i] = atom + rng.Uniform(-1e-3, 1e-3);
  }
  return values;
}

// A GridDensity tabulating an analytic pdf over [lo, hi].
template <typename Fn>
GridDensity MakeAnalyticDensity(double lo, double hi, size_t points, Fn&& pdf) {
  std::vector<double> values(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) {
    values[i] = pdf(lo + static_cast<double>(i) * step);
  }
  GridDensity density = GridDensity::Create(lo, hi, std::move(values)).value();
  const Status normalized = density.Normalize();
  // Analytic tabulations always carry positive mass; a failure here is a
  // broken test, not a recoverable condition.
  if (!normalized.ok()) std::abort();
  return density;
}

// Normalized mixture of Gaussian bumps, handy for CIO tests.
struct Bump {
  double weight;
  double mean;
  double sigma;
};

inline GridDensity MakeBumpDensity(double lo, double hi, size_t points,
                                   const std::vector<Bump>& bumps) {
  return MakeAnalyticDensity(lo, hi, points, [&](double x) {
    double f = 0.0;
    for (const Bump& bump : bumps) {
      f += bump.weight * NormalPdf((x - bump.mean) / bump.sigma) / bump.sigma;
    }
    return f;
  });
}

}  // namespace vastats::testing

#endif  // VASTATS_TESTS_TEST_UTIL_H_
