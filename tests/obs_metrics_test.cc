#include "obs/metrics.h"

#include <array>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  Counter draws = registry.GetCounter("unis_draws_total");
  EXPECT_TRUE(draws.attached());
  draws.Increment();
  draws.Increment(41);
  // Re-fetching the same name binds the same slot.
  registry.GetCounter("unis_draws_total").Increment(8);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const CounterSample* sample = snapshot.FindCounter("unis_draws_total");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 50u);
  EXPECT_EQ(snapshot.FindCounter("missing_total"), nullptr);
}

TEST(MetricsRegistryTest, DetachedHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  EXPECT_FALSE(counter.attached());
  EXPECT_FALSE(gauge.attached());
  EXPECT_FALSE(histogram.attached());
  // Must not crash; there is nowhere to record to.
  counter.Increment();
  gauge.Set(1.0);
  histogram.Observe(1.0);
}

TEST(MetricsRegistryTest, GaugesAreLastWriteWins) {
  MetricsRegistry registry;
  registry.GetGauge("queue_depth").Set(3.0);
  registry.GetGauge("queue_depth").Set(7.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const GaugeSample* sample = snapshot.FindGauge("queue_depth");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 7.0);
}

TEST(MetricsRegistryTest, HistogramBucketsByUpperBound) {
  MetricsRegistry registry;
  constexpr std::array<double, 3> kBounds = {1.0, 2.0, 4.0};
  Histogram histogram = registry.GetHistogram("latency", kBounds);
  histogram.Observe(0.5);  // bucket 0 (<= 1)
  histogram.Observe(1.0);  // bucket 0 (boundary values land low)
  histogram.Observe(1.5);  // bucket 1
  histogram.Observe(4.0);  // bucket 2
  histogram.Observe(9.0);  // overflow bucket

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("latency");
  ASSERT_NE(sample, nullptr);
  ASSERT_EQ(sample->upper_bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  ASSERT_EQ(sample->bucket_counts.size(), 4u);
  EXPECT_EQ(sample->bucket_counts[0], 2u);
  EXPECT_EQ(sample->bucket_counts[1], 1u);
  EXPECT_EQ(sample->bucket_counts[2], 1u);
  EXPECT_EQ(sample->bucket_counts[3], 1u);
  EXPECT_EQ(sample->count, 5u);
  EXPECT_DOUBLE_EQ(sample->sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(MetricsRegistryTest, HistogramBoundsAreFixedAtFirstRegistration) {
  MetricsRegistry registry;
  constexpr std::array<double, 2> kFirst = {1.0, 2.0};
  constexpr std::array<double, 1> kLater = {100.0};
  registry.GetHistogram("latency", kFirst).Observe(1.5);
  // Later registrations with different bounds reuse the original ladder.
  registry.GetHistogram("latency", kLater).Observe(50.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("latency");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->upper_bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sample->count, 2u);
}

TEST(MetricsRegistryTest, HistogramUnsortedBoundsAreNormalized) {
  MetricsRegistry registry;
  constexpr std::array<double, 4> kBounds = {4.0, 1.0, 2.0, 2.0};
  registry.GetHistogram("unsorted", kBounds).Observe(3.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("unsorted");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->upper_bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(sample->bucket_counts[2], 1u);
}

TEST(MetricsRegistryTest, EmptyBoundsSelectDefaultLatencyLadder) {
  MetricsRegistry registry;
  registry.GetHistogram("phase_seconds").Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("phase_seconds");
  ASSERT_NE(sample, nullptr);
  const auto defaults = MetricsRegistry::DefaultLatencyBucketsSeconds();
  ASSERT_EQ(sample->upper_bounds.size(), defaults.size());
  EXPECT_EQ(sample->upper_bounds.front(), defaults.front());
  EXPECT_EQ(sample->upper_bounds.back(), defaults.back());
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zeta_total").Increment();
  registry.GetCounter("alpha_total").Increment();
  registry.GetCounter("mid_total").Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha_total");
  EXPECT_EQ(snapshot.counters[1].name, "mid_total");
  EXPECT_EQ(snapshot.counters[2].name, "zeta_total");
}

TEST(MetricsRegistryTest, RegisteredButUntouchedMetricsAppearAsZero) {
  MetricsRegistry registry;
  registry.GetCounter("never_hit_total");
  registry.GetGauge("never_set");
  registry.GetHistogram("never_observed");
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_NE(snapshot.FindCounter("never_hit_total"), nullptr);
  EXPECT_EQ(snapshot.FindCounter("never_hit_total")->value, 0u);
  ASSERT_NE(snapshot.FindGauge("never_set"), nullptr);
  ASSERT_NE(snapshot.FindHistogram("never_observed"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("never_observed")->count, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency — these tests are part of the TSan CI job (name-matched by the
// `Metrics` regex); a data race in the sharding shows up there.
// ---------------------------------------------------------------------------

TEST(MetricsConcurrencyTest, ParallelCounterIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter counter = registry.GetCounter("shared_total");
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  const CounterSample* sample = snapshot.FindCounter("shared_total");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value,
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsConcurrencyTest, ParallelHistogramObservationsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kObservations = 4000;
  static constexpr std::array<double, 3> kBounds = {1.0, 2.0, 3.0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Histogram histogram = registry.GetHistogram("parallel_hist", kBounds);
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(static_cast<double>(t % 4) + 0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("parallel_hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count,
            static_cast<uint64_t>(kThreads) * kObservations);
  uint64_t bucket_total = 0;
  for (const uint64_t count : sample->bucket_counts) bucket_total += count;
  EXPECT_EQ(bucket_total, sample->count);
}

TEST(MetricsConcurrencyTest, SnapshotWhileWritingIsConsistent) {
  MetricsRegistry registry;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry] {
      Counter counter = registry.GetCounter("busy_total");
      for (int i = 0; i < 5000; ++i) counter.Increment();
    });
  }
  // Concurrent snapshots must see a prefix of the writes, never garbage.
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    const CounterSample* sample = snapshot.FindCounter("busy_total");
    if (sample != nullptr) {
      EXPECT_GE(sample->value, last);
      EXPECT_LE(sample->value, 20000u);
      last = sample->value;
    }
  }
  for (std::thread& thread : writers) thread.join();
  EXPECT_EQ(registry.Snapshot().FindCounter("busy_total")->value, 20000u);
}

TEST(MetricsConcurrencyTest, TwoRegistriesOnOneThreadStayIsolated) {
  // The thread-local shard cache keys on the registry uid; a second registry
  // used from the same thread must not inherit the first one's shard.
  MetricsRegistry first;
  first.GetCounter("events_total").Increment(5);
  {
    MetricsRegistry second;
    second.GetCounter("events_total").Increment(7);
    EXPECT_EQ(second.Snapshot().FindCounter("events_total")->value, 7u);
  }
  // And a third registry after the second died (uid never reused).
  MetricsRegistry third;
  third.GetCounter("events_total").Increment(11);
  EXPECT_EQ(first.Snapshot().FindCounter("events_total")->value, 5u);
  EXPECT_EQ(third.Snapshot().FindCounter("events_total")->value, 11u);
}

TEST(MetricsConcurrencyTest, WriterThreadMayOutliveNothingButRegistryOwnsShards) {
  // A thread writes, exits, and the registry must still see its shard.
  MetricsRegistry registry;
  std::thread writer([&registry] {
    registry.GetCounter("ephemeral_total").Increment(3);
  });
  writer.join();
  EXPECT_EQ(registry.Snapshot().FindCounter("ephemeral_total")->value, 3u);
}

}  // namespace
}  // namespace vastats
