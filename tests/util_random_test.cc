#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace vastats {
namespace {

TEST(RngTest, DeterministicStreams) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    const int64_t v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 6, kDraws / 60);  // within 10% of expected
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, StandardNormalMoments) {
  Rng rng(17);
  Moments moments;
  for (int i = 0; i < 200000; ++i) moments.Add(rng.StandardNormal());
  EXPECT_NEAR(moments.mean(), 0.0, 0.02);
  EXPECT_NEAR(moments.SampleVariance(), 1.0, 0.03);
  EXPECT_NEAR(moments.Skewness(), 0.0, 0.05);
  EXPECT_NEAR(moments.ExcessKurtosis(), 0.0, 0.1);
}

TEST(RngTest, NormalScalesAndShifts) {
  Rng rng(19);
  Moments moments;
  for (int i = 0; i < 100000; ++i) moments.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(moments.mean(), 5.0, 0.05);
  EXPECT_NEAR(moments.SampleStdDev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  Moments moments;
  for (int i = 0; i < 100000; ++i) moments.Add(rng.Exponential(2.0));
  EXPECT_NEAR(moments.mean(), 0.5, 0.02);
  EXPECT_GE(moments.min(), 0.0);
}

TEST(RngTest, GammaMomentsMatchShapeScale) {
  Rng rng(29);
  // Gamma(k=3, theta=2): mean 6, var 12.
  Moments moments;
  for (int i = 0; i < 100000; ++i) moments.Add(rng.Gamma(3.0, 2.0));
  EXPECT_NEAR(moments.mean(), 6.0, 0.1);
  EXPECT_NEAR(moments.SampleVariance(), 12.0, 0.5);
}

TEST(RngTest, GammaShapeBelowOne) {
  Rng rng(31);
  // Gamma(k=0.5, theta=1): mean 0.5, var 0.5.
  Moments moments;
  for (int i = 0; i < 200000; ++i) moments.Add(rng.Gamma(0.5, 1.0));
  EXPECT_NEAR(moments.mean(), 0.5, 0.02);
  EXPECT_NEAR(moments.SampleVariance(), 0.5, 0.05);
  EXPECT_GT(moments.min(), 0.0);
}

TEST(RngTest, CauchyMedianAtLocation) {
  Rng rng(37);
  std::vector<double> draws(100001);
  for (double& d : draws) d = rng.Cauchy(10.0, 1.0);
  std::nth_element(draws.begin(), draws.begin() + 50000, draws.end());
  EXPECT_NEAR(draws[50000], 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(43);
  std::vector<int> perm = rng.Permutation(50);
  std::sort(perm.begin(), perm.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(perm[static_cast<size_t>(i)], i);
}

TEST(RngTest, PermutationIsUniformOverPositions) {
  // Element 0 should land in each of the 4 positions ~equally often.
  Rng rng(47);
  std::vector<int> position_counts(4, 0);
  const int kTrials = 40000;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<int> perm = rng.Permutation(4);
    for (int p = 0; p < 4; ++p) {
      if (perm[static_cast<size_t>(p)] == 0) {
        ++position_counts[static_cast<size_t>(p)];
      }
    }
  }
  for (const int c : position_counts) {
    EXPECT_NEAR(c, kTrials / 4, kTrials / 40);
  }
}

TEST(RngTest, ResampleIndicesInRange) {
  Rng rng(53);
  const std::vector<int> indices = rng.ResampleIndices(10, 1000);
  ASSERT_EQ(indices.size(), 1000u);
  for (const int i : indices) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 10);
  }
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(59);
  std::vector<int> values = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> original = values;
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(values, original);
}

}  // namespace
}  // namespace vastats
