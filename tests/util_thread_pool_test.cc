#include "util/thread_pool.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace vastats {
namespace {

TEST(ThreadPoolTest, RunsAllTasksExactlyOnce) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 4});
  std::vector<std::atomic<int>> runs(100);
  const Status status = pool.ParallelFor(100, [&](int i) {
    runs[static_cast<size_t>(i)].fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  for (const std::atomic<int>& count : runs) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOpAndNegativeIsAnError) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  EXPECT_TRUE(pool.ParallelFor(0, [](int) { return Status::Ok(); }).ok());
  // No submit happened, so the workers were never needed.
  EXPECT_FALSE(pool.started());
  const Status status = pool.ParallelFor(-1, [](int) { return Status::Ok(); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, WorkersStartLazily) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  EXPECT_FALSE(pool.started());
  ASSERT_TRUE(pool.ParallelFor(4, [](int) { return Status::Ok(); }).ok());
  EXPECT_TRUE(pool.started());
  EXPECT_EQ(pool.num_threads(), 2);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  ASSERT_TRUE(pool.ParallelFor(4, [](int) { return Status::Ok(); }).ok());
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  const Status status = pool.ParallelFor(4, [](int) { return Status::Ok(); });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, ReportsTheLowestFailingTaskIndex) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 4});
  // Tasks 3 and 7 fail; scheduling must not change which error wins.
  for (int repeat = 0; repeat < 50; ++repeat) {
    const Status status = pool.ParallelFor(16, [](int i) {
      if (i == 3 || i == 7) {
        return Status::Internal("task " + std::to_string(i));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "task 3");
  }
}

TEST(ThreadPoolTest, FailureCancelsUnclaimedTasks) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 1});
  std::atomic<int> ran{0};
  const Status status = pool.ParallelFor(1000, [&](int i) {
    ran.fetch_add(1);
    if (i == 0) return Status::Internal("first task failed");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  // Task 0 ran; everything not yet claimed when it failed was skipped. With
  // one worker plus the caller at most a handful of tasks can slip through.
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsShareThePool) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  constexpr int kCallers = 4;
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> totals(kCallers);
  std::vector<Status> statuses(kCallers);
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        statuses[static_cast<size_t>(c)] = pool.ParallelFor(kTasks, [&](int) {
          totals[static_cast<size_t>(c)].fetch_add(1);
          return Status::Ok();
        });
      });
    }
    for (std::thread& caller : callers) caller.join();
  }
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(statuses[static_cast<size_t>(c)].ok());
    EXPECT_EQ(totals[static_cast<size_t>(c)].load(), kTasks);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A size-1 pool whose single worker submits a nested batch: the batches
  // only complete because callers drain their own submissions.
  ThreadPool pool(ThreadPoolOptions{.num_threads = 1});
  std::atomic<int> inner_runs{0};
  const Status status = pool.ParallelFor(4, [&](int) {
    return pool.ParallelFor(4, [&](int) {
      inner_runs.fetch_add(1);
      return Status::Ok();
    });
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(inner_runs.load(), 16);
}

TEST(ThreadPoolTest, RecordsTaskTelemetry) {
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  MetricsRegistry metrics;
  PoolMetricsObserver observer(&metrics);
  ASSERT_TRUE(
      pool.ParallelFor(8, [](int) { return Status::Ok(); }, &observer).ok());
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.FindCounter("thread_pool_tasks_total")->value, 8u);
  const HistogramSample* latency =
      snapshot.FindHistogram("thread_pool_task_latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 8u);
  ASSERT_NE(snapshot.FindGauge("thread_pool_queue_depth"), nullptr);
}

TEST(ThreadPoolTest, DefaultPoolIsAProcessWideSingleton) {
  ThreadPool* pool = DefaultThreadPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool, DefaultThreadPool());
  EXPECT_GE(pool->num_threads(), 1);
  EXPECT_TRUE(pool->ParallelFor(4, [](int) { return Status::Ok(); }).ok());
}

TEST(ThreadPerCallParallelForTest, RunsAllTasks) {
  std::vector<std::atomic<int>> runs(40);
  const Status status = ThreadPerCallParallelFor(40, 4, [&](int i) {
    runs[static_cast<size_t>(i)].fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  for (const std::atomic<int>& count : runs) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPerCallParallelForTest, InlineModeStopsAtTheFirstError) {
  std::atomic<int> ran{0};
  const Status status = ThreadPerCallParallelFor(10, 1, [&](int i) {
    ran.fetch_add(1);
    if (i == 2) return Status::Internal("task 2");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "task 2");
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPerCallParallelForTest, ReportsTheLowestFailingTaskIndex) {
  for (int repeat = 0; repeat < 50; ++repeat) {
    const Status status = ThreadPerCallParallelFor(16, 4, [](int i) {
      if (i == 5 || i == 11) {
        return Status::Internal("task " + std::to_string(i));
      }
      return Status::Ok();
    });
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.message(), "task 5");
  }
}

}  // namespace
}  // namespace vastats
