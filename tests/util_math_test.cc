#include "util/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(NormalPdfTest, KnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-12);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(NormalCdf(-1.96), 0.024997895148220435, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96) + NormalCdf(-1.96), 1.0, 1e-12);
}

TEST(NormalQuantileTest, InvertsCdf) {
  for (const double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999}) {
    const auto z = NormalQuantile(p);
    ASSERT_TRUE(z.ok());
    EXPECT_NEAR(NormalCdf(z.value()), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.975).value(), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.95).value(), 1.6448536269514722, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.5).value(), 0.0, 1e-12);
}

TEST(NormalQuantileTest, RejectsOutOfRange) {
  EXPECT_FALSE(NormalQuantile(0.0).ok());
  EXPECT_FALSE(NormalQuantile(1.0).ok());
  EXPECT_FALSE(NormalQuantile(-0.5).ok());
}

TEST(RegularizedGammaPTest, MatchesKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x).value(), 1.0 - std::exp(-x), 1e-12);
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (const double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x).value(), std::erf(std::sqrt(x)),
                1e-10);
  }
}

TEST(RegularizedGammaPTest, BoundaryAndErrors) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0).value(), 0.0);
  EXPECT_FALSE(RegularizedGammaP(0.0, 1.0).ok());
  EXPECT_FALSE(RegularizedGammaP(1.0, -1.0).ok());
}

TEST(ChiSquareCdfTest, KnownValues) {
  // Chi-square with 2 dof is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquareCdf(2.0, 2.0).value(), 1.0 - std::exp(-1.0), 1e-10);
  // Median of chi-square(1) is ~0.4549.
  EXPECT_NEAR(ChiSquareCdf(0.454936, 1.0).value(), 0.5, 1e-4);
}

TEST(ChiSquareQuantileTest, InvertsCdf) {
  for (const double dof : {1.0, 2.0, 5.0, 50.0, 399.0}) {
    for (const double p : {0.05, 0.5, 0.95, 0.975}) {
      const auto x = ChiSquareQuantile(p, dof);
      ASSERT_TRUE(x.ok()) << "dof=" << dof << " p=" << p;
      EXPECT_NEAR(ChiSquareCdf(x.value(), dof).value(), p, 1e-8)
          << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(ChiSquareQuantileTest, KnownCriticalValues) {
  // chi2_{0.95, 10} = 18.307.
  EXPECT_NEAR(ChiSquareQuantile(0.95, 10.0).value(), 18.307, 1e-3);
  // chi2_{0.05, 10} = 3.940.
  EXPECT_NEAR(ChiSquareQuantile(0.05, 10.0).value(), 3.940, 1e-3);
}

TEST(LogBinomialTest, SmallCases) {
  EXPECT_NEAR(LogBinomial(5, 2).value(), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 0).value(), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(10, 10).value(), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(100, 3).value(), std::log(161700.0), 1e-9);
}

TEST(LogBinomialTest, RejectsInvalid) {
  EXPECT_FALSE(LogBinomial(3, 5).ok());
  EXPECT_FALSE(LogBinomial(-1, 0).ok());
  EXPECT_FALSE(LogBinomial(3, -1).ok());
}

TEST(IsFiniteTest, Basics) {
  EXPECT_TRUE(IsFinite(0.0));
  EXPECT_TRUE(IsFinite(-1e300));
  EXPECT_FALSE(IsFinite(std::nan("")));
  EXPECT_FALSE(IsFinite(INFINITY));
}

}  // namespace
}  // namespace vastats
