#include "util/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows.value()[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvTest, ParsesQuotedFields) {
  const auto rows = ParseCsv("\"hello, world\",\"with \"\"quotes\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0], "hello, world");
  EXPECT_EQ(rows.value()[0][1], "with \"quotes\"");
}

TEST(CsvTest, ParsesCrLf) {
  const auto rows = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1], (CsvRow{"c", "d"}));
}

TEST(CsvTest, MissingTrailingNewlineOk) {
  const auto rows = ParseCsv("a,b");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "b"}));
}

TEST(CsvTest, EmptyFieldsPreserved) {
  const auto rows = ParseCsv("a,,c\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0], (CsvRow{"a", "", "c"}));
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  EXPECT_FALSE(ParseCsv("\"oops\n").ok());
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  const std::string text =
      FormatCsv({{"plain", "with,comma", "with\"quote", "with\nnewline"}});
  EXPECT_EQ(text,
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvTest, RoundTripThroughFormatAndParse) {
  const std::vector<CsvRow> rows = {
      {"x", "y"}, {"1.5", "hello, there"}, {"", "\"q\""}};
  const auto parsed = ParseCsv(FormatCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vastats_csv_test.csv";
  const std::vector<CsvRow> rows = {{"header"}, {"value,with,commas"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  const auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReturnsNotFound) {
  const auto read = ReadCsvFile("/nonexistent/path/to/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace vastats
