#include "core/stability.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(ChangeRatioTest, GeometricFormula) {
  // c_r = 1 - (1 - y/D)^r.
  EXPECT_NEAR(ChangeRatio(10.0, 100, 1, ChangeRatioEstimator::kGeometric)
                  .value(),
              0.1, 1e-12);
  EXPECT_NEAR(ChangeRatio(10.0, 100, 2, ChangeRatioEstimator::kGeometric)
                  .value(),
              1.0 - 0.81, 1e-12);
}

TEST(ChangeRatioTest, CombinatorialFormula) {
  // For r=1: c_r = 1 - C(D-y,1)/C(D,1) = y/D.
  EXPECT_NEAR(ChangeRatio(10.0, 100, 1, ChangeRatioEstimator::kCombinatorial)
                  .value(),
              0.1, 1e-12);
  // For r=2, D=10, y=3: 1 - C(7,2)/C(10,2) = 1 - 21/45.
  EXPECT_NEAR(ChangeRatio(3.0, 10, 2, ChangeRatioEstimator::kCombinatorial)
                  .value(),
              1.0 - 21.0 / 45.0, 1e-12);
}

TEST(ChangeRatioTest, EstimatorsAgreeForSmallR) {
  // Both estimators should be close when r << |D|.
  for (const double y : {2.0, 5.0, 20.0}) {
    const double geometric =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kGeometric).value();
    const double combinatorial =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kCombinatorial).value();
    EXPECT_NEAR(geometric, combinatorial, 0.01) << "y=" << y;
  }
}

TEST(ChangeRatioTest, MonotoneInRAndY) {
  double prev = 0.0;
  for (int r = 1; r <= 5; ++r) {
    const double c =
        ChangeRatio(8.0, 100, r, ChangeRatioEstimator::kGeometric).value();
    EXPECT_GT(c, prev);
    prev = c;
  }
  prev = 0.0;
  for (const double y : {1.0, 4.0, 16.0, 64.0}) {
    const double c =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kGeometric).value();
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(ChangeRatioTest, Validation) {
  EXPECT_FALSE(ChangeRatio(5.0, 1, 1, ChangeRatioEstimator::kGeometric).ok());
  EXPECT_FALSE(
      ChangeRatio(5.0, 100, 0, ChangeRatioEstimator::kGeometric).ok());
  EXPECT_FALSE(
      ChangeRatio(5.0, 100, 100, ChangeRatioEstimator::kGeometric).ok());
  // y is clamped rather than rejected.
  EXPECT_NEAR(ChangeRatio(1000.0, 100, 1, ChangeRatioEstimator::kGeometric)
                  .value(),
              1.0, 1e-12);
}

TEST(MutualImpactPsiTest, TruncatedMatchesExact) {
  const std::vector<double> samples = testing::NormalSample(300, 1, 50.0, 10.0);
  for (const double h : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(MutualImpactPsi(samples, h),
                MutualImpactPsiExact(samples, h),
                MutualImpactPsiExact(samples, h) * 1e-9 + 1e-9)
        << "h=" << h;
  }
}

TEST(MutualImpactPsiTest, CoincidentPointsGiveMaximalPsi) {
  const std::vector<double> samples(20, 3.0);
  // All pairs contribute exactly 1: C(20,2) = 190.
  EXPECT_NEAR(MutualImpactPsi(samples, 1.0), 190.0, 1e-9);
}

TEST(MutualImpactPsiTest, FarApartPointsGiveZero) {
  const std::vector<double> samples = {0.0, 1000.0, 2000.0};
  EXPECT_NEAR(MutualImpactPsi(samples, 1.0), 0.0, 1e-12);
}

TEST(StabilityL2Test, CoincidentSamplesInfinitelyStable) {
  const std::vector<double> samples(50, 7.0);
  const auto score = StabilityL2(samples, 1.0, 0.1);
  ASSERT_TRUE(score.ok());
  EXPECT_TRUE(std::isinf(score.value()));
}

TEST(StabilityL2Test, TighterDistributionMoreStable) {
  const std::vector<double> tight = testing::NormalSample(400, 2, 100.0, 1.0);
  const std::vector<double> loose = testing::NormalSample(400, 3, 100.0, 30.0);
  // Same bandwidth and change ratio isolates the spread effect.
  const double tight_score = StabilityL2(tight, 1.0, 0.1).value();
  const double loose_score = StabilityL2(loose, 1.0, 0.1).value();
  EXPECT_GT(tight_score, loose_score);
}

TEST(StabilityL2Test, SmallerChangeRatioMoreStable) {
  const std::vector<double> samples = testing::NormalSample(400, 4, 0.0, 5.0);
  const double low = StabilityL2(samples, 1.0, 0.01).value();
  const double high = StabilityL2(samples, 1.0, 0.5).value();
  EXPECT_GT(low, high);
}

TEST(StabilityL2Test, Validation) {
  const std::vector<double> samples = testing::NormalSample(50, 5);
  EXPECT_FALSE(StabilityL2(samples, 0.0, 0.1).ok());
  EXPECT_FALSE(StabilityL2(samples, 1.0, 0.0).ok());
  EXPECT_FALSE(StabilityL2(samples, 1.0, 1.0).ok());
  EXPECT_FALSE(StabilityL2(std::vector<double>{1.0}, 1.0, 0.1).ok());
}

TEST(StabilityBhTest, FormulaMatchesHandComputation) {
  const std::vector<double> samples = {0.0, 2.0};
  const double h = 1.0;
  const double n = 2.0;
  const double psi = std::exp(-4.0 / 4.0);
  const double expected =
      -std::log(1.0 / (2.0 * n * h * std::sqrt(M_PI)) +
                psi / (n * n * h * std::sqrt(M_PI)));
  EXPECT_NEAR(StabilityBhattacharyya(samples, h).value(), expected, 1e-12);
}

TEST(ComputeStabilityTest, ReportFieldsConsistent) {
  const std::vector<double> samples = testing::NormalSample(200, 6, 10.0, 2.0);
  const auto report = ComputeStability(samples, 0.5, 8.0, 100, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->bandwidth, 0.5);
  EXPECT_DOUBLE_EQ(report->y, 8.0);
  EXPECT_EQ(report->r, 1);
  EXPECT_NEAR(report->change_ratio, 0.08, 1e-12);
  EXPECT_NEAR(report->psi, MutualImpactPsiExact(samples, 0.5), 1e-6);
  EXPECT_DOUBLE_EQ(report->stab_l2,
                   StabilityL2(samples, 0.5, report->change_ratio).value());
  EXPECT_DOUBLE_EQ(report->stab_bh,
                   StabilityBhattacharyya(samples, 0.5).value());
}

// End-to-end agreement: the analytic L2 score should rank workloads the same
// way the simulation baseline does.
struct StabilityWorkload {
  SourceSet sources;
  AggregateQuery query;
};

StabilityWorkload MakeWorkload(double conflict_sigma, uint64_t seed) {
  const auto mixture = MakeD2(seed);
  SyntheticSourceSetOptions options;
  options.num_sources = 40;
  options.num_components = 60;
  options.min_copies = 3;
  options.max_copies = 6;
  options.conflict_sigma = conflict_sigma;
  options.seed = seed + 1;
  StabilityWorkload workload{
      BuildSyntheticSourceSet(*mixture, options).value(),
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 60)};
  return workload;
}

TEST(StabilityAgreementTest, AnalyticMatchesSimulationRanking) {
  // The analytic Theorem-4.2 score must rank workloads the same way the
  // brute-force removal simulation does. (Note the direction: the L2
  // distance is scale-sensitive, so a *tighter* answer distribution — with
  // larger point-wise density values and a smaller KDE bandwidth — shows a
  // larger absolute L2 change on source removal and thus a *lower* score.)
  double analytic[2], simulated[2];
  const double sigmas[2] = {0.05, 5.0};
  for (int w = 0; w < 2; ++w) {
    StabilityWorkload workload = MakeWorkload(sigmas[w], 77 + w);
    const UniSSampler sampler =
        UniSSampler::Create(&workload.sources, workload.query).value();
    Rng rng(99);
    const std::vector<double> samples = sampler.Sample(300, rng).value();

    KdeOptions kde_options;
    kde_options.rule = BandwidthRule::kSilverman;
    const Kde kde = EstimateKde(samples, kde_options).value();
    const double y = sampler.EstimateSourcesPerAnswer(30, rng).value();
    analytic[w] = StabilityL2(samples, kde.bandwidth,
                              ChangeRatio(y, 40, 1,
                                          ChangeRatioEstimator::kGeometric)
                                  .value())
                      .value();

    SimulatedStabilityOptions sim_options;
    sim_options.trials = 12;
    sim_options.samples_per_trial = 150;
    sim_options.kde = kde_options;
    simulated[w] =
        SimulateStability(sampler, kde.density, sim_options, rng).value();
  }
  ASSERT_NE(analytic[0], analytic[1]);
  ASSERT_NE(simulated[0], simulated[1]);
  EXPECT_EQ(analytic[0] < analytic[1], simulated[0] < simulated[1])
      << "analytic: " << analytic[0] << " vs " << analytic[1]
      << ", simulated: " << simulated[0] << " vs " << simulated[1];
  // The analytic score should also be in the same ballpark as the
  // simulation, not just ordered consistently.
  for (int w = 0; w < 2; ++w) {
    EXPECT_NEAR(analytic[w], simulated[w], 2.0) << "workload " << w;
  }
}

TEST(DeviationMapTest, LowConflictWorkloadHasSmallDeviations) {
  StabilityWorkload workload = MakeWorkload(0.05, 123);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(5);
  const std::vector<double> base = sampler.Sample(300, rng).value();
  const double base_mean = ComputeMoments(base).mean();
  const auto map = DeviationMap(sampler, base_mean, 100, rng);
  ASSERT_TRUE(map.ok());
  EXPECT_GT(map->size(), 30u);  // most single removals keep coverage
  for (const DeviationPoint& point : *map) {
    EXPECT_GE(point.relative_deviation, 0.0);
    EXPECT_LT(point.relative_deviation, 0.05);
  }
}

TEST(DeviationMapTest, Validation) {
  StabilityWorkload workload = MakeWorkload(1.0, 5);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(6);
  EXPECT_FALSE(DeviationMap(sampler, 10.0, 0, rng).ok());
  EXPECT_FALSE(DeviationMap(sampler, 0.0, 10, rng).ok());
}

TEST(SimulateStabilityTest, Validation) {
  StabilityWorkload workload = MakeWorkload(1.0, 7);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(8);
  KdeOptions kde_options;
  const Kde kde =
      EstimateKde(sampler.Sample(100, rng).value(), kde_options).value();
  SimulatedStabilityOptions options;
  options.trials = 0;
  EXPECT_FALSE(SimulateStability(sampler, kde.density, options, rng).ok());
  options = {};
  options.r = 40;  // == num_sources
  EXPECT_FALSE(SimulateStability(sampler, kde.density, options, rng).ok());
}

}  // namespace
}  // namespace vastats
