#include "core/stability.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "stats/descriptive.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

TEST(ChangeRatioTest, GeometricFormula) {
  // c_r = 1 - (1 - y/D)^r.
  EXPECT_NEAR(ChangeRatio(10.0, 100, 1, ChangeRatioEstimator::kGeometric)
                  .value(),
              0.1, 1e-12);
  EXPECT_NEAR(ChangeRatio(10.0, 100, 2, ChangeRatioEstimator::kGeometric)
                  .value(),
              1.0 - 0.81, 1e-12);
}

TEST(ChangeRatioTest, CombinatorialFormula) {
  // For r=1: c_r = 1 - C(D-y,1)/C(D,1) = y/D.
  EXPECT_NEAR(ChangeRatio(10.0, 100, 1, ChangeRatioEstimator::kCombinatorial)
                  .value(),
              0.1, 1e-12);
  // For r=2, D=10, y=3: 1 - C(7,2)/C(10,2) = 1 - 21/45.
  EXPECT_NEAR(ChangeRatio(3.0, 10, 2, ChangeRatioEstimator::kCombinatorial)
                  .value(),
              1.0 - 21.0 / 45.0, 1e-12);
}

TEST(ChangeRatioTest, CombinatorialFractionalYInterpolates) {
  // Regression: fractional y used to round to the nearest integer, so any
  // y < 0.5 collapsed to c_r = 0 exactly — which StabilityL2's (0,1)
  // change-ratio domain then rejected for perfectly valid light-weight
  // workloads. Fractional y now interpolates between floor(y) and ceil(y).
  for (const double y : {0.1, 0.49}) {
    const auto c =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kCombinatorial);
    ASSERT_TRUE(c.ok()) << "y=" << y;
    // For r=1 the combinatorial ratio is exactly linear: c_r = y/D, so the
    // interpolation must reproduce y/100 to machine precision.
    EXPECT_NEAR(c.value(), y / 100.0, 1e-12) << "y=" << y;
    EXPECT_GT(c.value(), 0.0) << "y=" << y;
    // And the L2 score must accept the resulting change ratio.
    const std::vector<double> samples = testing::NormalSample(100, 11);
    EXPECT_TRUE(StabilityL2(samples, 1.0, c.value()).ok()) << "y=" << y;
  }
  // r > 1: the interpolated value sits strictly between the two integer
  // anchors.
  const double at_3 =
      ChangeRatio(3.0, 10, 2, ChangeRatioEstimator::kCombinatorial).value();
  const double at_4 =
      ChangeRatio(4.0, 10, 2, ChangeRatioEstimator::kCombinatorial).value();
  const double at_3_5 =
      ChangeRatio(3.5, 10, 2, ChangeRatioEstimator::kCombinatorial).value();
  EXPECT_NEAR(at_3_5, 0.5 * (at_3 + at_4), 1e-12);
  EXPECT_GT(at_3_5, at_3);
  EXPECT_LT(at_3_5, at_4);
}

TEST(ChangeRatioTest, EstimatorsAgreeForSmallR) {
  // Both estimators should be close when r << |D|.
  for (const double y : {2.0, 5.0, 20.0}) {
    const double geometric =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kGeometric).value();
    const double combinatorial =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kCombinatorial).value();
    EXPECT_NEAR(geometric, combinatorial, 0.01) << "y=" << y;
  }
}

TEST(ChangeRatioTest, MonotoneInRAndY) {
  double prev = 0.0;
  for (int r = 1; r <= 5; ++r) {
    const double c =
        ChangeRatio(8.0, 100, r, ChangeRatioEstimator::kGeometric).value();
    EXPECT_GT(c, prev);
    prev = c;
  }
  prev = 0.0;
  for (const double y : {1.0, 4.0, 16.0, 64.0}) {
    const double c =
        ChangeRatio(y, 100, 1, ChangeRatioEstimator::kGeometric).value();
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(ChangeRatioTest, Validation) {
  EXPECT_FALSE(ChangeRatio(5.0, 1, 1, ChangeRatioEstimator::kGeometric).ok());
  EXPECT_FALSE(
      ChangeRatio(5.0, 100, 0, ChangeRatioEstimator::kGeometric).ok());
  EXPECT_FALSE(
      ChangeRatio(5.0, 100, 100, ChangeRatioEstimator::kGeometric).ok());
  // y is clamped rather than rejected.
  EXPECT_NEAR(ChangeRatio(1000.0, 100, 1, ChangeRatioEstimator::kGeometric)
                  .value(),
              1.0, 1e-12);
}

TEST(StabilityOptionsTest, Validation) {
  StabilityOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.grid_size = 1000;  // not a power of two
  EXPECT_FALSE(options.Validate().ok());
  options.mode = StabilityPsiMode::kExact;  // exact path never bins
  EXPECT_TRUE(options.Validate().ok());
  options = {};
  options.grid_size = 8;  // below the floor
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.padding_fraction = -0.1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(MutualImpactPsiTest, TruncatedMatchesExact) {
  const std::vector<double> samples = testing::NormalSample(300, 1, 50.0, 10.0);
  for (const double h : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(MutualImpactPsiSorted(samples, h),
                MutualImpactPsiExact(samples, h),
                MutualImpactPsiExact(samples, h) * 1e-9 + 1e-9)
        << "h=" << h;
  }
}

TEST(MutualImpactPsiTest, CoincidentPointsGiveMaximalPsi) {
  const std::vector<double> samples(20, 3.0);
  // All pairs contribute exactly 1: C(20,2) = 190 — in both modes (the
  // binned dispatcher short-circuits the degenerate grid to closed form).
  EXPECT_NEAR(MutualImpactPsiSorted(samples, 1.0), 190.0, 1e-9);
  const auto binned = EvaluateMutualImpactPsi(samples, 1.0, {});
  ASSERT_TRUE(binned.ok());
  EXPECT_NEAR(binned->psi, 190.0, 1e-9);
  EXPECT_EQ(binned->mode, StabilityPsiMode::kExact);
}

TEST(MutualImpactPsiTest, FarApartPointsGiveZero) {
  const std::vector<double> samples = {0.0, 1000.0, 2000.0};
  EXPECT_NEAR(MutualImpactPsi(samples, 1.0).value(), 0.0, 1e-12);
}

TEST(MutualImpactPsiTest, NonFiniteSamplesRejectedByBinnedPath) {
  // A NaN would reach LinearBinning's double->size_t cast (UB), mirroring
  // the EstimateKde guard.
  const double nan = std::nan("");
  const auto result = MutualImpactPsi(std::vector<double>{1.0, nan, 2.0}, 1.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- Binned-vs-exact agreement matrix over the shared shape fixtures.
// Error regimes, mirroring the KDE agreement matrix:
//  * kernels spanning many grid cells (the smooth shapes at h >= their
//    Silverman scale): the only error is linear binning, and the forced
//    binned path tracks the exact sum within 0.1% relative;
//  * kernels near the 1.5-cell resolution limit (the near-discrete atoms):
//    binning error is no longer negligible and the documented bound
//    loosens to 5% relative — which is exactly why the production
//    dispatcher falls back to the exact sum below 1.5 cells.
struct PsiAgreementCase {
  const char* name;
  std::vector<double> (*make)(uint64_t seed);
  double bandwidth;
  double rel_tolerance;
};

class PsiBinnedExactAgreement
    : public ::testing::TestWithParam<PsiAgreementCase> {};

TEST_P(PsiBinnedExactAgreement, ForcedBinnedTracksExactSum) {
  const std::vector<double> samples = GetParam().make(4321);
  const double h = GetParam().bandwidth;
  const double exact = MutualImpactPsiExact(samples, h);
  const auto binned = MutualImpactPsiBinned(samples, h);
  ASSERT_TRUE(binned.ok()) << GetParam().name;
  ASSERT_GT(exact, 0.0) << GetParam().name;
  EXPECT_NEAR(binned.value(), exact, GetParam().rel_tolerance * exact)
      << GetParam().name << " h=" << h;
}

TEST_P(PsiBinnedExactAgreement, DispatcherStaysWithinForcedBounds) {
  // The production dispatcher may take either path (resolution fallback);
  // whichever it picks, the result must satisfy the same documented bound.
  const std::vector<double> samples = GetParam().make(4321);
  const double h = GetParam().bandwidth;
  const double exact = MutualImpactPsiExact(samples, h);
  const auto eval = EvaluateMutualImpactPsi(samples, h, {});
  ASSERT_TRUE(eval.ok()) << GetParam().name;
  EXPECT_NEAR(eval->psi, exact, GetParam().rel_tolerance * exact)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PsiBinnedExactAgreement,
    ::testing::Values(
        // Bandwidths ~ each shape's Silverman scale; all >> the ~0.004
        // grid step the 4096-point padded grid gives these spans.
        PsiAgreementCase{"unimodal", testing::UnimodalSample, 0.4, 1e-3},
        PsiAgreementCase{"bimodal", testing::BimodalAgreementSample, 0.5,
                         1e-3},
        PsiAgreementCase{"heavy_tailed", testing::HeavyTailSample, 1.0, 1e-3},
        // Atoms at {89, 93, 96} with 1e-3 jitter; h = 0.05 spans ~7 cells
        // of the padded grid, but the jitter itself sits below one cell, so
        // binning error dominates: documented 5% bound.
        PsiAgreementCase{"near_discrete", testing::NearDiscreteSample, 0.05,
                         0.05}),
    [](const ::testing::TestParamInfo<PsiAgreementCase>& info) {
      return info.param.name;
    });

TEST(MutualImpactPsiTest, NarrowKernelFallsBackToExact) {
  // h far below 1.5 grid cells: the binned transform cannot resolve the
  // kernel, so the dispatcher must report an exact-path evaluation that
  // matches the pairwise sum to full precision.
  const std::vector<double> samples = testing::NearDiscreteSample(99);
  const double h = 1e-4;
  const auto eval = EvaluateMutualImpactPsi(samples, h, {});
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->mode, StabilityPsiMode::kExact);
  EXPECT_NEAR(eval->psi, MutualImpactPsiExact(samples, h),
              1e-9 * MutualImpactPsiExact(samples, h) + 1e-9);
}

TEST(MutualImpactPsiTest, WideKernelTakesBinnedPath) {
  const std::vector<double> samples = testing::UnimodalSample(7);
  const auto eval = EvaluateMutualImpactPsi(samples, 0.4, {});
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->mode, StabilityPsiMode::kBinned);
}

TEST(MutualImpactPsiTest, ExplicitModeExactSkipsBinning) {
  const std::vector<double> samples = testing::UnimodalSample(8);
  StabilityOptions options;
  options.mode = StabilityPsiMode::kExact;
  const auto eval = EvaluateMutualImpactPsi(samples, 0.4, options);
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(eval->mode, StabilityPsiMode::kExact);
  EXPECT_DOUBLE_EQ(eval->psi, MutualImpactPsiSorted(samples, 0.4));
}

TEST(MutualImpactPsiTest, PlanReuseIsBitIdentical) {
  // A caller-held DctPlan must not change a single bit of the result
  // (same invariant the binned KDE maintains).
  const std::vector<double> samples = testing::BimodalAgreementSample(17);
  const double no_plan = MutualImpactPsiBinned(samples, 0.5).value();
  DctPlan plan;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(MutualImpactPsiBinned(samples, 0.5, {}, {}, &plan).value(),
              no_plan);
  }
}

TEST(StabilityL2Test, CoincidentSamplesInfinitelyStable) {
  const std::vector<double> samples(50, 7.0);
  const auto score = StabilityL2(samples, 1.0, 0.1);
  ASSERT_TRUE(score.ok());
  EXPECT_TRUE(std::isinf(score.value()));
}

TEST(StabilityL2Test, TighterDistributionMoreStable) {
  const std::vector<double> tight = testing::NormalSample(400, 2, 100.0, 1.0);
  const std::vector<double> loose = testing::NormalSample(400, 3, 100.0, 30.0);
  // Same bandwidth and change ratio isolates the spread effect.
  const double tight_score = StabilityL2(tight, 1.0, 0.1).value();
  const double loose_score = StabilityL2(loose, 1.0, 0.1).value();
  EXPECT_GT(tight_score, loose_score);
}

TEST(StabilityL2Test, SmallerChangeRatioMoreStable) {
  const std::vector<double> samples = testing::NormalSample(400, 4, 0.0, 5.0);
  const double low = StabilityL2(samples, 1.0, 0.01).value();
  const double high = StabilityL2(samples, 1.0, 0.5).value();
  EXPECT_GT(low, high);
}

TEST(StabilityL2Test, BinnedAndExactModesAgree) {
  const std::vector<double> samples = testing::BimodalAgreementSample(21);
  StabilityOptions exact;
  exact.mode = StabilityPsiMode::kExact;
  const double binned_score = StabilityL2(samples, 0.5, 0.1).value();
  const double exact_score = StabilityL2(samples, 0.5, 0.1, exact).value();
  // The scores are logs of an O(1) quantity; binning error of <= 0.1% in
  // Psi moves the score by far less than this.
  EXPECT_NEAR(binned_score, exact_score, 1e-2);
}

TEST(StabilityL2Test, Validation) {
  const std::vector<double> samples = testing::NormalSample(50, 5);
  EXPECT_FALSE(StabilityL2(samples, 0.0, 0.1).ok());
  EXPECT_FALSE(StabilityL2(samples, 1.0, 0.0).ok());
  EXPECT_FALSE(StabilityL2(samples, 1.0, 1.0).ok());
  EXPECT_FALSE(StabilityL2(std::vector<double>{1.0}, 1.0, 0.1).ok());
  StabilityOptions bad;
  bad.grid_size = 1000;
  EXPECT_FALSE(StabilityL2(samples, 1.0, 0.1, bad).ok());
}

TEST(StabilityBhTest, FormulaMatchesHandComputation) {
  const std::vector<double> samples = {0.0, 2.0};
  const double h = 1.0;
  const double n = 2.0;
  const double psi = std::exp(-4.0 / 4.0);
  const double expected =
      -std::log(1.0 / (2.0 * n * h * std::sqrt(M_PI)) +
                psi / (n * n * h * std::sqrt(M_PI)));
  // Two samples on a 4096-point grid: h = 1.0 spans hundreds of grid
  // cells, so the binned default reproduces the hand computation to within
  // binning error (relatively larger here: Psi is a single e^-1 pair).
  EXPECT_NEAR(StabilityBhattacharyya(samples, h).value(), expected, 5e-4);
  StabilityOptions exact;
  exact.mode = StabilityPsiMode::kExact;
  EXPECT_NEAR(StabilityBhattacharyya(samples, h, exact).value(), expected,
              1e-12);
}

TEST(ComputeStabilityTest, ReportFieldsConsistent) {
  const std::vector<double> samples = testing::NormalSample(200, 6, 10.0, 2.0);
  const auto report = ComputeStability(samples, 0.5, 8.0, 100, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->bandwidth, 0.5);
  EXPECT_DOUBLE_EQ(report->y, 8.0);
  EXPECT_EQ(report->r, 1);
  EXPECT_NEAR(report->change_ratio, 0.08, 1e-12);
  // The default mode is binned; the reported Psi tracks the exact sum
  // within the documented binning error and the report records the path.
  EXPECT_EQ(report->psi_mode, StabilityPsiMode::kBinned);
  const double exact_psi = MutualImpactPsiExact(samples, 0.5);
  EXPECT_NEAR(report->psi, exact_psi, 1e-3 * exact_psi);
  // The scores must be *bit-identical* to the standalone entry points under
  // the same options — one shared Psi evaluation feeds both.
  EXPECT_DOUBLE_EQ(report->stab_l2,
                   StabilityL2(samples, 0.5, report->change_ratio).value());
  EXPECT_DOUBLE_EQ(report->stab_bh,
                   StabilityBhattacharyya(samples, 0.5).value());
}

TEST(ComputeStabilityTest, ExactModeReproducesOldPipeline) {
  const std::vector<double> samples = testing::NormalSample(200, 6, 10.0, 2.0);
  StabilityOptions exact;
  exact.mode = StabilityPsiMode::kExact;
  const auto report = ComputeStability(samples, 0.5, 8.0, 100, 1,
                                       ChangeRatioEstimator::kGeometric,
                                       exact);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->psi_mode, StabilityPsiMode::kExact);
  EXPECT_NEAR(report->psi, MutualImpactPsiExact(samples, 0.5), 1e-6);
}

// End-to-end agreement: the analytic L2 score should rank workloads the same
// way the simulation baseline does.
struct StabilityWorkload {
  SourceSet sources;
  AggregateQuery query;
};

StabilityWorkload MakeWorkload(double conflict_sigma, uint64_t seed) {
  const auto mixture = MakeD2(seed);
  SyntheticSourceSetOptions options;
  options.num_sources = 40;
  options.num_components = 60;
  options.min_copies = 3;
  options.max_copies = 6;
  options.conflict_sigma = conflict_sigma;
  options.seed = seed + 1;
  StabilityWorkload workload{
      BuildSyntheticSourceSet(*mixture, options).value(),
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 60)};
  return workload;
}

TEST(StabilityAgreementTest, AnalyticMatchesSimulationRanking) {
  // The analytic Theorem-4.2 score — evaluated through the production
  // binned-Psi default — must rank workloads the same way the brute-force
  // removal simulation does. (Note the direction: the L2 distance is
  // scale-sensitive, so a *tighter* answer distribution — with larger
  // point-wise density values and a smaller KDE bandwidth — shows a larger
  // absolute L2 change on source removal and thus a *lower* score.)
  double analytic[2], analytic_exact[2], simulated[2];
  const double sigmas[2] = {0.05, 5.0};
  for (int w = 0; w < 2; ++w) {
    StabilityWorkload workload = MakeWorkload(sigmas[w], 77 + w);
    const UniSSampler sampler =
        UniSSampler::Create(&workload.sources, workload.query).value();
    Rng rng(99);
    const std::vector<double> samples = sampler.Sample(300, rng).value();

    KdeOptions kde_options;
    kde_options.rule = BandwidthRule::kSilverman;
    const Kde kde = EstimateKde(samples, kde_options).value();
    const double y = sampler.EstimateSourcesPerAnswer(30, rng).value();
    const double change_ratio =
        ChangeRatio(y, 40, 1, ChangeRatioEstimator::kGeometric).value();
    analytic[w] = StabilityL2(samples, kde.bandwidth, change_ratio).value();
    StabilityOptions exact;
    exact.mode = StabilityPsiMode::kExact;
    analytic_exact[w] =
        StabilityL2(samples, kde.bandwidth, change_ratio, exact).value();

    SimulatedStabilityOptions sim_options;
    sim_options.trials = 12;
    sim_options.samples_per_trial = 150;
    sim_options.kde = kde_options;
    simulated[w] =
        SimulateStability(sampler, kde.density, sim_options, rng).value();
  }
  ASSERT_NE(analytic[0], analytic[1]);
  ASSERT_NE(simulated[0], simulated[1]);
  EXPECT_EQ(analytic[0] < analytic[1], simulated[0] < simulated[1])
      << "analytic: " << analytic[0] << " vs " << analytic[1]
      << ", simulated: " << simulated[0] << " vs " << simulated[1];
  // Binned and exact Psi produce the same ranking and nearly the same
  // scores.
  EXPECT_EQ(analytic[0] < analytic[1],
            analytic_exact[0] < analytic_exact[1]);
  for (int w = 0; w < 2; ++w) {
    EXPECT_NEAR(analytic[w], analytic_exact[w], 1e-2) << "workload " << w;
    // The analytic score should also be in the same ballpark as the
    // simulation, not just ordered consistently.
    EXPECT_NEAR(analytic[w], simulated[w], 2.0) << "workload " << w;
  }
}

TEST(StabilityAgreementTest, BinnedPsiIsThreadCountInvariant) {
  // The binned Psi runs inside the extraction pipeline with a per-thread
  // DctPlan; the report (like every other pipeline product) must be
  // bit-identical across sampling widths and pool attachment.
  const auto mixture = MakeD2(61);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 40;
  source_options.seed = 62;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 40);

  ExtractorOptions base;
  base.initial_sample_size = 200;
  base.weight_probes = 10;
  base.sampling_threads = 2;
  const auto reference =
      AnswerStatisticsExtractor::Create(&sources, query, base)->Extract();
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->stability.psi_mode, StabilityPsiMode::kBinned);

  // Serial cross-check: a standalone forced-binned evaluation of the same
  // samples and bandwidth, with a fresh (not thread_local) plan, must
  // reproduce the in-pipeline Psi bit for bit.
  EXPECT_EQ(MutualImpactPsiBinned(reference->samples,
                                  reference->stability.bandwidth)
                .value(),
            reference->stability.psi);

  // Parallel widths (the chunk-indexed sampler is invariant for counts
  // >= 2) and pooled extraction must match exactly.
  for (const int threads : {4, 16}) {
    ExtractorOptions wide = base;
    wide.sampling_threads = threads;
    ThreadPool pool(ThreadPoolOptions{.num_threads = 4});
    if (threads == 16) wide.pool = &pool;
    const auto result =
        AnswerStatisticsExtractor::Create(&sources, query, wide)->Extract();
    ASSERT_TRUE(result.ok()) << threads;
    ASSERT_EQ(result->samples, reference->samples) << threads;
    EXPECT_EQ(result->stability.psi, reference->stability.psi) << threads;
    EXPECT_EQ(result->stability.stab_l2, reference->stability.stab_l2)
        << threads;
    EXPECT_EQ(result->stability.stab_bh, reference->stability.stab_bh)
        << threads;
    EXPECT_EQ(result->stability.psi_mode, reference->stability.psi_mode)
        << threads;
  }
}

TEST(DeviationMapTest, LowConflictWorkloadHasSmallDeviations) {
  StabilityWorkload workload = MakeWorkload(0.05, 123);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(5);
  const std::vector<double> base = sampler.Sample(300, rng).value();
  const double base_mean = ComputeMoments(base).mean();
  const auto map = DeviationMap(sampler, base_mean, 100, rng);
  ASSERT_TRUE(map.ok());
  EXPECT_FALSE(map->spread_fallback);
  EXPECT_DOUBLE_EQ(map->denominator, std::fabs(base_mean));
  EXPECT_GT(map->points.size(), 30u);  // most single removals keep coverage
  for (const DeviationPoint& point : map->points) {
    EXPECT_GE(point.relative_deviation, 0.0);
    EXPECT_LT(point.relative_deviation, 0.05);
  }
}

TEST(DeviationMapTest, ZeroBaseMeanFallsBackToSpread) {
  // Regression: a base mean of exactly zero used to be rejected outright,
  // even though a mean-zero answer distribution is perfectly legitimate
  // (any symmetric query). The map now normalizes by the pooled sample
  // spread and says so.
  StabilityWorkload workload = MakeWorkload(1.0, 31);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(32);
  const auto map = DeviationMap(sampler, 0.0, 50, rng);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map->spread_fallback);
  EXPECT_GT(map->denominator, 0.0);
  for (const DeviationPoint& point : map->points) {
    EXPECT_TRUE(std::isfinite(point.relative_deviation));
    EXPECT_GE(point.relative_deviation, 0.0);
  }
}

TEST(DeviationMapTest, DenormalBaseMeanFallsBackToSpread) {
  // 1e-300 is nonzero but negligible against any real sample spread;
  // dividing by it would report astronomically inflated deviations. The
  // magnitude check (relative to the spread) must catch it like zero.
  StabilityWorkload workload = MakeWorkload(1.0, 41);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(42);
  const auto map = DeviationMap(sampler, 1e-300, 50, rng);
  ASSERT_TRUE(map.ok());
  EXPECT_TRUE(map->spread_fallback);
  for (const DeviationPoint& point : map->points) {
    EXPECT_LT(point.relative_deviation, 1e6);
  }
}

TEST(DeviationMapTest, NormalBaseMeanUsesItAsDenominator) {
  StabilityWorkload workload = MakeWorkload(1.0, 51);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(52);
  const std::vector<double> base = sampler.Sample(200, rng).value();
  const double base_mean = ComputeMoments(base).mean();
  ASSERT_NE(base_mean, 0.0);
  const auto map = DeviationMap(sampler, base_mean, 50, rng);
  ASSERT_TRUE(map.ok());
  EXPECT_FALSE(map->spread_fallback);
  EXPECT_DOUBLE_EQ(map->denominator, std::fabs(base_mean));
}

TEST(DeviationMapTest, Validation) {
  StabilityWorkload workload = MakeWorkload(1.0, 5);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(6);
  EXPECT_FALSE(DeviationMap(sampler, 10.0, 0, rng).ok());
  EXPECT_FALSE(DeviationMap(sampler, std::nan(""), 10, rng).ok());
}

TEST(SimulateStabilityTest, Validation) {
  StabilityWorkload workload = MakeWorkload(1.0, 7);
  const UniSSampler sampler =
      UniSSampler::Create(&workload.sources, workload.query).value();
  Rng rng(8);
  KdeOptions kde_options;
  const Kde kde =
      EstimateKde(sampler.Sample(100, rng).value(), kde_options).value();
  SimulatedStabilityOptions options;
  options.trials = 0;
  EXPECT_FALSE(SimulateStability(sampler, kde.density, options, rng).ok());
  options = {};
  options.r = 40;  // == num_sources
  EXPECT_FALSE(SimulateStability(sampler, kde.density, options, rng).ok());
}

}  // namespace
}  // namespace vastats
