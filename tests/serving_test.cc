// Serving-layer tests: fingerprints, shared caches + closure-exact drift
// invalidation, scheduler admission control, and the ExtractionServer's
// bit-identity contract across concurrency and cache states.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.h"
#include "core/monitor.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "serving/caches.h"
#include "serving/fingerprint.h"
#include "serving/scheduler.h"
#include "serving/server.h"
#include "test_util.h"

namespace vastats {
namespace {

using serving::DctPlanCache;
using serving::ExtractionCaches;
using serving::ExtractionCacheStats;
using serving::ExtractionServer;
using serving::QueryRequest;
using serving::QueryScheduler;
using serving::SchedulerOptions;
using serving::ServingOptions;

// Fast pipeline options for serving tests: small sample/bootstrap/grid so a
// full extraction runs in milliseconds while exercising every phase.
ExtractorOptions FastOptions() {
  ExtractorOptions options;
  options.initial_sample_size = 60;
  options.bootstrap.num_sets = 12;
  options.kde.grid_size = 256;
  options.weight_probes = 8;
  options.seed = 0x5e471ce;
  return options;
}

AggregateQuery MakeQuery(std::string name, AggregateKind kind,
                         std::vector<ComponentId> components,
                         double quantile_q = 0.5) {
  AggregateQuery query;
  query.name = std::move(name);
  query.kind = kind;
  query.components = std::move(components);
  query.quantile_q = quantile_q;
  return query;
}

uint64_t CounterValue(const MetricsSnapshot& snapshot, std::string_view name) {
  const CounterSample* sample = snapshot.FindCounter(name);
  return sample == nullptr ? 0 : sample->value;
}

// Bitwise equality over every result field the determinism contract covers
// (timings are wall-clock metadata and excluded).
void ExpectBitIdentical(const AnswerStatistics& a, const AnswerStatistics& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.mean.value, b.mean.value);
  EXPECT_EQ(a.mean.ci.lo, b.mean.ci.lo);
  EXPECT_EQ(a.mean.ci.hi, b.mean.ci.hi);
  EXPECT_EQ(a.variance.value, b.variance.value);
  EXPECT_EQ(a.std_dev.value, b.std_dev.value);
  EXPECT_EQ(a.skewness.value, b.skewness.value);
  ASSERT_EQ(a.density.size(), b.density.size());
  EXPECT_EQ(a.density.x_min(), b.density.x_min());
  EXPECT_EQ(a.density.x_max(), b.density.x_max());
  for (size_t i = 0; i < a.density.size(); ++i) {
    EXPECT_EQ(a.density.values()[i], b.density.values()[i]) << "grid " << i;
  }
  ASSERT_EQ(a.coverage.intervals.size(), b.coverage.intervals.size());
  EXPECT_EQ(a.coverage.total_coverage, b.coverage.total_coverage);
  EXPECT_EQ(a.coverage.total_length_fraction, b.coverage.total_length_fraction);
  EXPECT_EQ(a.stability.stab_l2, b.stability.stab_l2);
  EXPECT_EQ(a.stability.stab_bh, b.stability.stab_bh);
  EXPECT_EQ(a.stability.psi, b.stability.psi);
  EXPECT_EQ(a.answer_weight_y, b.answer_weight_y);
}

// Isolated ground truth: a standalone extractor run with the server's own
// derived options (no server, no caches, no scheduler).
AnswerStatistics IsolatedRun(const ExtractionServer& server,
                             const SourceSet& sources,
                             const QueryRequest& request) {
  Result<ExtractorOptions> derived = server.DerivedOptions(request);
  EXPECT_TRUE(derived.ok()) << derived.status().message();
  Result<AnswerStatisticsExtractor> extractor =
      AnswerStatisticsExtractor::Create(&sources, request.query, *derived);
  EXPECT_TRUE(extractor.ok()) << extractor.status().message();
  Result<AnswerStatistics> statistics = extractor->Extract();
  EXPECT_TRUE(statistics.ok()) << statistics.status().message();
  return *statistics;
}

// --- fingerprints ----------------------------------------------------------

TEST(ServingFingerprintTest, DistinguishesWhatMattersIgnoresNames) {
  const AggregateQuery sum = MakeQuery("a", AggregateKind::kSum, {1, 2, 3});
  AggregateQuery renamed = sum;
  renamed.name = "completely different label";
  EXPECT_EQ(serving::QueryFingerprint(sum), serving::QueryFingerprint(renamed));

  AggregateQuery avg = sum;
  avg.kind = AggregateKind::kAverage;
  EXPECT_NE(serving::QueryFingerprint(sum), serving::QueryFingerprint(avg));

  AggregateQuery fewer = sum;
  fewer.components = {1, 2};
  EXPECT_NE(serving::QueryFingerprint(sum), serving::QueryFingerprint(fewer));
}

TEST(ServingFingerprintTest, ComponentSequenceIsOrderSensitive) {
  // Take positions index the component order, so a permuted sequence is a
  // different sampling stream — and must be a different fingerprint.
  EXPECT_NE(serving::ComponentSequenceFingerprint({{1, 2, 3}}),
            serving::ComponentSequenceFingerprint({{3, 2, 1}}));
  EXPECT_EQ(serving::ComponentSequenceFingerprint({{1, 2, 3}}),
            serving::ComponentSequenceFingerprint({{1, 2, 3}}));
}

TEST(ServingFingerprintTest, DeadlineFoldsOnlyWhenSet) {
  const uint64_t base = 0x1234abcdULL;
  EXPECT_EQ(serving::FoldDeadline(base, 0.0), base);
  EXPECT_EQ(serving::FoldDeadline(base, -5.0), base);
  EXPECT_NE(serving::FoldDeadline(base, 10.0), base);
  EXPECT_NE(serving::FoldDeadline(base, 10.0),
            serving::FoldDeadline(base, 20.0));
}

// --- caches ----------------------------------------------------------------

TEST(ServingCachesTest, DriftInvalidatesExactlyTheTouchedClosures) {
  ExtractionCaches caches(/*num_sources=*/4);
  const std::vector<int> closure_a = {2, 3};
  const std::vector<int> closure_b = {1};
  caches.StoreBandwidth(/*fingerprint=*/11, closure_a, 0.5);
  caches.StoreBandwidth(/*fingerprint=*/22, closure_b, 0.7);

  // Drift on source 3: closure {2,3} contains it, closure {1} does not.
  caches.OnSourceDrift(3);
  EXPECT_FALSE(caches.LookupBandwidth(11, closure_a).has_value());
  const std::optional<double> survivor = caches.LookupBandwidth(22, closure_b);
  ASSERT_TRUE(survivor.has_value());
  EXPECT_EQ(*survivor, 0.7);

  const ExtractionCacheStats stats = caches.Stats();
  EXPECT_EQ(stats.bandwidth_invalidations, 1u);
  EXPECT_EQ(stats.bandwidth_entries, 1u);
  EXPECT_EQ(caches.SourceEpoch(3), 1u);
  EXPECT_EQ(caches.SourceEpoch(1), 0u);
}

TEST(ServingCachesTest, StaleStampNeverServesAPreDriftValue) {
  // Even if an entry somehow survived active eviction, a lookup whose
  // closure stamp moved must miss. Store, bump an epoch, then look up: the
  // belt-and-braces path drops the entry.
  ExtractionCaches caches(/*num_sources=*/2);
  const std::vector<int> closure = {0, 1};
  caches.StoreBandwidth(7, closure, 1.25);
  ASSERT_TRUE(caches.LookupBandwidth(7, closure).has_value());
  caches.OnSourceDrift(0);
  EXPECT_FALSE(caches.LookupBandwidth(7, closure).has_value());
}

TEST(ServingCachesTest, LruEvictsBeyondCapacity) {
  serving::ExtractionCachesOptions options;
  options.bandwidth_capacity = 2;
  ExtractionCaches caches(/*num_sources=*/1, options);
  const std::vector<int> closure = {0};
  caches.StoreBandwidth(1, closure, 0.1);
  caches.StoreBandwidth(2, closure, 0.2);
  // Touch 1 so 2 is the LRU victim.
  ASSERT_TRUE(caches.LookupBandwidth(1, closure).has_value());
  caches.StoreBandwidth(3, closure, 0.3);
  EXPECT_TRUE(caches.LookupBandwidth(1, closure).has_value());
  EXPECT_FALSE(caches.LookupBandwidth(2, closure).has_value());
  EXPECT_TRUE(caches.LookupBandwidth(3, closure).has_value());
  EXPECT_EQ(caches.Stats().bandwidth_evictions, 1u);
}

TEST(ServingCachesTest, PlanCacheHandsOneThreadOnePlan) {
  DctPlanCache cache(/*tables_per_thread=*/4);
  DctPlan* plan = cache.ThreadLocalPlan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan, cache.ThreadLocalPlan());  // stable per thread
  EXPECT_EQ(plan->max_tables(), 4u);
  EXPECT_EQ(cache.NumPlans(), 1u);

  DctPlan* other_thread_plan = nullptr;
  std::thread worker(
      [&] { other_thread_plan = cache.ThreadLocalPlan(); });
  worker.join();
  EXPECT_NE(other_thread_plan, nullptr);
  EXPECT_NE(other_thread_plan, plan);
  EXPECT_EQ(cache.NumPlans(), 2u);

  // A second registry never aliases the first thread's plan.
  DctPlanCache second;
  EXPECT_NE(second.ThreadLocalPlan(), plan);
}

// --- scheduler -------------------------------------------------------------

TEST(ServingSchedulerTest, RejectsBeyondQueueDepth) {
  SchedulerOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 0;
  MetricsRegistry metrics;
  ObsOptions obs;
  obs.metrics = &metrics;
  QueryScheduler scheduler(options, obs);

  ASSERT_TRUE(scheduler.Admit(0x1).ok());
  EXPECT_EQ(scheduler.InFlight(), 1);
  const Status rejected = scheduler.Admit(0x2);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);

  scheduler.Release();
  EXPECT_EQ(scheduler.InFlight(), 0);
  EXPECT_TRUE(scheduler.Admit(0x3).ok());
  scheduler.Release();

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "serving_admitted_total"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "serving_rejected_total"), 1u);
}

TEST(ServingSchedulerTest, QueuedWaiterAdmitsWhenSlotFrees) {
  SchedulerOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 1;
  QueryScheduler scheduler(options);
  ASSERT_TRUE(scheduler.Admit(0x1).ok());

  Status waiter_status = Status::Internal("not run");
  std::thread waiter([&] { waiter_status = scheduler.Admit(0x2); });
  // Wait until the waiter is queued, then free the slot.
  while (scheduler.Waiting() == 0) std::this_thread::yield();
  scheduler.Release();
  waiter.join();
  EXPECT_TRUE(waiter_status.ok());
  EXPECT_EQ(scheduler.InFlight(), 1);
  scheduler.Release();
}

TEST(ServingSchedulerTest, ValidatesOptions) {
  SchedulerOptions bad;
  bad.max_in_flight = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad.max_in_flight = 2;
  bad.max_queue_depth = -1;
  EXPECT_FALSE(bad.Validate().ok());
}

// --- server ----------------------------------------------------------------

class ServingServerTest : public ::testing::Test {
 protected:
  ServingServerTest() : sources_(testing::MakeFigure1Sources()) {}

  std::unique_ptr<ExtractionServer> MakeServer(ServingOptions options = {}) {
    if (options.base.initial_sample_size ==
        ExtractorOptions().initial_sample_size) {
      options.base = FastOptions();
    }
    Result<std::unique_ptr<ExtractionServer>> server =
        ExtractionServer::Create(&sources_, std::move(options));
    EXPECT_TRUE(server.ok()) << server.status().message();
    return std::move(server.value());
  }

  SourceSet sources_;
};

TEST_F(ServingServerTest, ColdWarmAndPostInvalidationAreBitIdentical) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest request;
  request.query = MakeQuery("q", AggregateKind::kSum, {1, 2, 3});

  const AnswerStatistics isolated = IsolatedRun(*server, sources_, request);

  Result<AnswerStatistics> cold = server->Extract(request);
  ASSERT_TRUE(cold.ok()) << cold.status().message();
  ExpectBitIdentical(*cold, isolated);
  EXPECT_EQ(server->CacheStats().answer_misses, 1u);

  Result<AnswerStatistics> warm = server->Extract(request);
  ASSERT_TRUE(warm.ok());
  ExpectBitIdentical(*warm, isolated);
  EXPECT_EQ(server->CacheStats().answer_hits, 1u);

  // Invalidate a source in the query's closure; the re-extraction is a cold
  // run again and must reproduce the isolated result bit for bit.
  const std::vector<int> closure = server->SourceClosure(request.query);
  ASSERT_FALSE(closure.empty());
  server->OnSourceDrift(closure.front());
  Result<AnswerStatistics> recomputed = server->Extract(request);
  ASSERT_TRUE(recomputed.ok());
  ExpectBitIdentical(*recomputed, isolated);
  EXPECT_GE(server->CacheStats().answer_invalidations, 1u);
  EXPECT_EQ(server->CacheStats().answer_misses, 2u);
}

TEST_F(ServingServerTest, DriftOnDisjointClosureKeepsAnswersCached) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest narrow;
  narrow.query = MakeQuery("narrow", AggregateKind::kSum, {5});  // D2 only
  ASSERT_TRUE(server->Extract(narrow).ok());

  // Component 3 is served by D3/D4; source index 3 (D4) is outside the
  // narrow query's closure.
  const std::vector<int> narrow_closure = server->SourceClosure(narrow.query);
  ASSERT_EQ(narrow_closure, std::vector<int>{1});
  server->OnSourceDrift(3);

  ASSERT_TRUE(server->Extract(narrow).ok());
  EXPECT_EQ(server->CacheStats().answer_hits, 1u);
  EXPECT_EQ(server->CacheStats().answer_invalidations, 0u);
}

TEST_F(ServingServerTest, ConcurrentMixedTrafficStaysBitIdentical) {
  // 16 concurrent submissions over 4 distinct queries at max_in_flight 4:
  // every result must equal the isolated single-query run regardless of
  // admission interleaving or who warmed the cache.
  ServingOptions options;
  options.scheduler.max_in_flight = 4;
  options.scheduler.max_queue_depth = 16;
  std::unique_ptr<ExtractionServer> server = MakeServer(std::move(options));

  std::vector<QueryRequest> distinct;
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kMax,
        AggregateKind::kCount}) {
    QueryRequest request;
    request.query = MakeQuery("q", kind, {1, 2, 3});
    distinct.push_back(std::move(request));
  }
  std::vector<AnswerStatistics> expected;
  for (const QueryRequest& request : distinct) {
    expected.push_back(IsolatedRun(*server, sources_, request));
  }

  constexpr int kThreads = 16;
  std::vector<Result<AnswerStatistics>> got(
      kThreads, Result<AnswerStatistics>(Status::Internal("not run")));
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        got[static_cast<size_t>(t)] =
            server->Extract(distinct[static_cast<size_t>(t) % distinct.size()]);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(got[static_cast<size_t>(t)].ok())
        << got[static_cast<size_t>(t)].status().message();
    ExpectBitIdentical(*got[static_cast<size_t>(t)],
                       expected[static_cast<size_t>(t) % expected.size()]);
  }
  // Every request either hit or missed; at least one miss per distinct
  // query. The exact split is racy — duplicates admitted before their twin
  // completes miss too — so no upper bound on misses is asserted.
  const ExtractionCacheStats stats = server->CacheStats();
  EXPECT_EQ(stats.answer_hits + stats.answer_misses,
            static_cast<uint64_t>(kThreads));
  EXPECT_GE(stats.answer_misses, static_cast<uint64_t>(distinct.size()));

  // A second pass over fully-warm caches is all hits, deterministically.
  for (int t = 0; t < kThreads; ++t) {
    const Result<AnswerStatistics> warm =
        server->Extract(distinct[static_cast<size_t>(t) % distinct.size()]);
    ASSERT_TRUE(warm.ok()) << warm.status().message();
    ExpectBitIdentical(*warm, expected[static_cast<size_t>(t) % expected.size()]);
  }
  EXPECT_EQ(server->CacheStats().answer_hits,
            stats.answer_hits + static_cast<uint64_t>(kThreads));
}

TEST_F(ServingServerTest, BatchSharesOneSamplingPassBitIdentically) {
  std::unique_ptr<ExtractionServer> server = MakeServer();

  // Same component sequence, different kinds: one group, one sampling pass.
  std::vector<QueryRequest> batch;
  for (const AggregateKind kind : {AggregateKind::kSum, AggregateKind::kAverage,
                                   AggregateKind::kMax}) {
    QueryRequest request;
    request.query = MakeQuery("grouped", kind, {1, 2, 3});
    batch.push_back(std::move(request));
  }
  // Plus a singleton group over a different sequence.
  QueryRequest lone;
  lone.query = MakeQuery("lone", AggregateKind::kSum, {3, 4});
  batch.push_back(lone);

  std::vector<AnswerStatistics> expected;
  for (const QueryRequest& request : batch) {
    expected.push_back(IsolatedRun(*server, sources_, request));
  }

  const std::vector<Result<AnswerStatistics>> got =
      server->ExtractBatch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << got[i].status().message();
    ExpectBitIdentical(*got[i], expected[i]);
  }
}

TEST_F(ServingServerTest, BatchDeduplicatesIdenticalRequests) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest request;
  request.query = MakeQuery("dup", AggregateKind::kAverage, {1, 2});
  const std::vector<QueryRequest> batch = {request, request, request};
  const AnswerStatistics expected = IsolatedRun(*server, sources_, request);

  const std::vector<Result<AnswerStatistics>> got =
      server->ExtractBatch(batch);
  ASSERT_EQ(got.size(), 3u);
  for (const Result<AnswerStatistics>& result : got) {
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(*result, expected);
  }
  // One miss computed, the duplicates rode along without extra pipeline
  // runs (no extra misses, no hits needed either).
  EXPECT_EQ(server->CacheStats().answer_misses, 1u);
}

TEST_F(ServingServerTest, BatchAfterWarmAndAfterDriftMatchesIsolated) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest request;
  request.query = MakeQuery("warm", AggregateKind::kSum, {1, 2, 3});
  const AnswerStatistics expected = IsolatedRun(*server, sources_, request);

  // Warm through the single-query path, then batch: pure cache hits.
  ASSERT_TRUE(server->Extract(request).ok());
  std::vector<Result<AnswerStatistics>> got =
      server->ExtractBatch(std::vector<QueryRequest>{request, request});
  for (const Result<AnswerStatistics>& result : got) {
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(*result, expected);
  }

  // Invalidate and batch again: recomputed, still bit-identical.
  server->OnSourceDrift(server->SourceClosure(request.query).front());
  got = server->ExtractBatch(std::vector<QueryRequest>{request, request});
  for (const Result<AnswerStatistics>& result : got) {
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(*result, expected);
  }
}

TEST_F(ServingServerTest, BatchSurfacesPerRequestFailures) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest good;
  good.query = MakeQuery("good", AggregateKind::kSum, {1, 2});
  QueryRequest bad;
  bad.query = MakeQuery("bad", AggregateKind::kSum, {});  // no components

  const std::vector<Result<AnswerStatistics>> got =
      server->ExtractBatch(std::vector<QueryRequest>{good, bad});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_TRUE(got[0].ok());
  ASSERT_FALSE(got[1].ok());
  EXPECT_EQ(got[1].status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServingServerTest, DeadlineRequiresFaultToleranceSeam) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest request;
  request.query = MakeQuery("deadline", AggregateKind::kSum, {1, 2});
  request.deadline_virtual_ms = 5.0;
  const Result<AnswerStatistics> result = server->Extract(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServingServerTest, DeadlineMapsOntoVirtualBudgetDeterministically) {
  ServingOptions options;
  options.base = FastOptions();
  options.base.fault_tolerance.emplace();  // fault-free seam, virtual clock
  std::unique_ptr<ExtractionServer> server = MakeServer(std::move(options));

  QueryRequest request;
  request.query = MakeQuery("deadline", AggregateKind::kSum, {1, 2, 3});
  request.deadline_virtual_ms = 1e-7;  // truncates almost immediately

  Result<ExtractorOptions> derived = server->DerivedOptions(request);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(derived->fault_tolerance->retry.session_deadline_ms, 1e-7);

  // Deadline and no-deadline requests have different fingerprints, so they
  // never alias in the answer cache.
  QueryRequest no_deadline = request;
  no_deadline.deadline_virtual_ms = 0.0;
  EXPECT_NE(server->RequestFingerprint(request),
            server->RequestFingerprint(no_deadline));

  const AnswerStatistics isolated = IsolatedRun(*server, sources_, request);
  const Result<AnswerStatistics> served = server->Extract(request);
  ASSERT_TRUE(served.ok()) << served.status().message();
  ExpectBitIdentical(*served, isolated);
  EXPECT_EQ(served->degradation.draws_kept, isolated.degradation.draws_kept);
}

TEST_F(ServingServerTest, SchedulerShedsLoadWithResourceExhausted) {
  ServingOptions options;
  options.scheduler.max_in_flight = 1;
  options.scheduler.max_queue_depth = 0;
  std::unique_ptr<ExtractionServer> server = MakeServer(std::move(options));

  // Hold the only slot directly, then submit: the request must be shed.
  QueryScheduler& scheduler =
      const_cast<QueryScheduler&>(server->scheduler());
  ASSERT_TRUE(scheduler.Admit(0xdead).ok());
  QueryRequest request;
  request.query = MakeQuery("shed", AggregateKind::kSum, {1, 2});
  const Result<AnswerStatistics> result = server->Extract(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  scheduler.Release();
  EXPECT_TRUE(server->Extract(request).ok());
}

TEST_F(ServingServerTest, MonitorDriftListenerInvalidatesServerCaches) {
  std::unique_ptr<ExtractionServer> server = MakeServer();
  QueryRequest request;
  request.query = MakeQuery("monitored", AggregateKind::kSum, {1, 2, 3});
  ASSERT_TRUE(server->Extract(request).ok());
  ASSERT_EQ(server->CacheStats().answer_entries, 1u);

  ContinuousQueryMonitor monitor(&sources_, FastOptions());
  monitor.SetDriftListener(server->drift_listener());
  const std::vector<int> closure = server->SourceClosure(request.query);
  ASSERT_TRUE(monitor.NotifySourceChanged(closure.front()).ok());

  EXPECT_EQ(server->CacheStats().answer_entries, 0u);
  EXPECT_GE(server->CacheStats().answer_invalidations, 1u);
}

TEST_F(ServingServerTest, FlightRecorderJournalsSchedulerAndCacheEvents) {
  FlightRecorder recorder;
  MetricsRegistry metrics;
  ServingOptions options;
  options.scheduler.max_in_flight = 1;
  options.scheduler.max_queue_depth = 0;
  options.obs.recorder = &recorder;
  options.obs.metrics = &metrics;
  std::unique_ptr<ExtractionServer> server = MakeServer(std::move(options));

  QueryRequest request;
  request.query = MakeQuery("journaled", AggregateKind::kSum, {1, 2});
  ASSERT_TRUE(server->Extract(request).ok());  // miss
  ASSERT_TRUE(server->Extract(request).ok());  // hit

  // Force a rejection for the reject event.
  QueryScheduler& scheduler =
      const_cast<QueryScheduler&>(server->scheduler());
  ASSERT_TRUE(scheduler.Admit(0xbeef).ok());
  EXPECT_EQ(server->Extract(request).status().code(),
            StatusCode::kResourceExhausted);
  scheduler.Release();

  const FlightSnapshot snapshot = recorder.Drain();
  int admits = 0, rejects = 0, cache_hits = 0, cache_misses = 0;
  bool saw_answer_cache_name = false;
  for (const EventRecord& event : snapshot.events) {
    if (event.kind == FlightEventKind::kSchedulerAdmit) ++admits;
    if (event.kind == FlightEventKind::kSchedulerReject) ++rejects;
    if (event.kind == FlightEventKind::kCacheHit) {
      ++cache_hits;
      if (snapshot.NameOf(event) == "answer_cache") {
        saw_answer_cache_name = true;
      }
    }
    if (event.kind == FlightEventKind::kCacheMiss) ++cache_misses;
  }
  // Two server extractions plus the direct Admit(0xbeef) above.
  EXPECT_EQ(admits, 3);
  EXPECT_EQ(rejects, 1);
  EXPECT_GE(cache_hits, 1);
  EXPECT_GE(cache_misses, 1);
  EXPECT_TRUE(saw_answer_cache_name);

  // The Chrome trace renders the new kinds with their scheduler/cache
  // categories and the mirrored in-flight counter track.
  Result<std::string> trace_result = ExportChromeTrace(snapshot);
  ASSERT_TRUE(trace_result.ok()) << trace_result.status().message();
  const std::string& trace = trace_result.value();
  EXPECT_NE(trace.find("\"scheduler_admit\""), std::string::npos);
  EXPECT_NE(trace.find("\"scheduler_reject\""), std::string::npos);
  EXPECT_NE(trace.find("\"serving_in_flight\""), std::string::npos);
  EXPECT_NE(trace.find("\"cache_hit\""), std::string::npos);
  EXPECT_NE(trace.find("\"cache_miss\""), std::string::npos);
  EXPECT_NE(trace.find("\"answer_cache\""), std::string::npos);
}

TEST_F(ServingServerTest, ServesMetricsForRequestsAndCaches) {
  MetricsRegistry metrics;
  ServingOptions options;
  options.obs.metrics = &metrics;
  std::unique_ptr<ExtractionServer> server = MakeServer(std::move(options));

  QueryRequest request;
  request.query = MakeQuery("metered", AggregateKind::kSum, {1, 2, 3});
  ASSERT_TRUE(server->Extract(request).ok());
  ASSERT_TRUE(server->Extract(request).ok());

  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "serving_requests_total"), 2u);
  EXPECT_EQ(CounterValue(snapshot, "serving_answer_cache_misses_total"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "serving_answer_cache_hits_total"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "serving_admitted_total"), 2u);
}

}  // namespace
}  // namespace vastats
