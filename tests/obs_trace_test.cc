#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(TraceTest, BeginEndBuildsTree) {
  Trace trace;
  const int root = trace.BeginSpan("extract");
  const int child = trace.BeginSpan("sampling");
  const int grandchild = trace.BeginSpan("unis_sample");
  trace.EndSpan(grandchild);
  trace.EndSpan(child);
  const int sibling = trace.BeginSpan("kde");
  trace.EndSpan(sibling);
  trace.EndSpan(root);

  ASSERT_EQ(trace.NumSpans(), 4);
  const auto spans = trace.spans();
  EXPECT_EQ(spans[0].name, "extract");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "sampling");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "unis_sample");
  EXPECT_EQ(spans[2].parent, child);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[3].name, "kde");
  EXPECT_EQ(spans[3].parent, root);
  for (const SpanRecord& span : spans) EXPECT_FALSE(span.open);
}

TEST(TraceTest, EndSpanClosesOpenDescendants) {
  Trace trace;
  const int root = trace.BeginSpan("extract");
  trace.BeginSpan("sampling");
  trace.BeginSpan("unis_sample");
  // Closing the root must close the still-open children first.
  trace.EndSpan(root);
  for (const SpanRecord& span : trace.spans()) {
    EXPECT_FALSE(span.open) << span.name;
    EXPECT_GE(span.elapsed_seconds, 0.0);
  }
}

TEST(TraceTest, ElapsedAndStartAreMonotonic) {
  Trace trace;
  const int first = trace.BeginSpan("first");
  trace.EndSpan(first);
  const int second = trace.BeginSpan("second");
  const double elapsed = trace.EndSpan(second);
  EXPECT_GE(elapsed, 0.0);
  EXPECT_GE(trace.spans()[1].start_seconds, trace.spans()[0].start_seconds);
  // EndSpan on an already-closed span is a no-op returning the recorded time.
  EXPECT_EQ(trace.EndSpan(second), trace.spans()[1].elapsed_seconds);
  // Out-of-range ids are ignored.
  EXPECT_EQ(trace.EndSpan(99), 0.0);
  EXPECT_EQ(trace.EndSpan(-1), 0.0);
}

TEST(TraceTest, AnnotationsRenderByType) {
  Trace trace;
  const int id = trace.BeginSpan("kde_estimate");
  trace.Annotate(id, "path", "binned_dct");
  trace.Annotate(id, "grid_size", int64_t{4096});
  trace.Annotate(id, "bandwidth", 0.5);
  trace.Annotate(id, "fallback", false);
  trace.EndSpan(id);

  const auto& annotations = trace.spans()[0].annotations;
  ASSERT_EQ(annotations.size(), 4u);
  EXPECT_EQ(annotations[0].key, "path");
  EXPECT_EQ(annotations[0].value, "binned_dct");
  EXPECT_EQ(annotations[1].value, "4096");
  EXPECT_EQ(annotations[2].value, "0.5");
  EXPECT_EQ(annotations[3].value, "false");
}

TEST(TraceTest, FindTotalsAndCounts) {
  Trace trace;
  for (int rep = 0; rep < 3; ++rep) {
    const int id = trace.BeginSpan("bootstrap");
    trace.EndSpan(id);
  }
  EXPECT_EQ(trace.CountOf("bootstrap"), 3);
  EXPECT_EQ(trace.CountOf("kde"), 0);
  EXPECT_NE(trace.Find("bootstrap"), nullptr);
  EXPECT_EQ(trace.Find("kde"), nullptr);
  double manual = 0.0;
  for (const SpanRecord& span : trace.spans()) manual += span.elapsed_seconds;
  EXPECT_DOUBLE_EQ(trace.TotalSecondsOf("bootstrap"), manual);
  EXPECT_EQ(trace.TotalSecondsOf("kde"), 0.0);
}

TEST(TraceTest, ResetDropsSpansButKeepsEpoch) {
  Trace trace;
  trace.EndSpan(trace.BeginSpan("first"));
  const double first_start = trace.spans()[0].start_seconds;
  trace.Reset();
  EXPECT_TRUE(trace.empty());
  trace.EndSpan(trace.BeginSpan("second"));
  // The epoch is not reset, so the new span starts no earlier than the old.
  EXPECT_GE(trace.spans()[0].start_seconds, first_start);
}

TEST(ScopedSpanTest, NullTraceIsAStopwatch) {
  ScopedSpan span(nullptr, "disabled");
  EXPECT_FALSE(span.recording());
  span.Annotate("ignored", int64_t{1});  // must be a harmless no-op
  const double elapsed = span.Close();
  EXPECT_GE(elapsed, 0.0);
  // Close is idempotent and latches the first reading.
  EXPECT_EQ(span.Close(), elapsed);
  EXPECT_EQ(span.ElapsedSeconds(), elapsed);
}

TEST(ScopedSpanTest, RecordsIntoTraceAndReturnsTraceElapsed) {
  Trace trace;
  double closed_elapsed = 0.0;
  {
    ScopedSpan span(&trace, "phase");
    EXPECT_TRUE(span.recording());
    span.Annotate("draws", int64_t{400});
    closed_elapsed = span.Close();
  }
  ASSERT_EQ(trace.NumSpans(), 1);
  // Close() must return the exact elapsed the trace recorded, so
  // PhaseTimings and the exported trace are the same measurement.
  EXPECT_EQ(closed_elapsed, trace.spans()[0].elapsed_seconds);
  ASSERT_EQ(trace.spans()[0].annotations.size(), 1u);
  EXPECT_EQ(trace.spans()[0].annotations[0].value, "400");
}

TEST(ScopedSpanTest, DestructorClosesSpan) {
  Trace trace;
  {
    ScopedSpan span(&trace, "phase");
  }
  ASSERT_EQ(trace.NumSpans(), 1);
  EXPECT_FALSE(trace.spans()[0].open);
}

TEST(ScopedSpanTest, AnnotateAfterCloseIsIgnored) {
  Trace trace;
  ScopedSpan span(&trace, "phase");
  span.Close();
  span.Annotate("late", int64_t{1});
  EXPECT_TRUE(trace.spans()[0].annotations.empty());
}

}  // namespace
}  // namespace vastats
