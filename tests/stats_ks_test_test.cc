#include "stats/ks_test.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/exhaustive.h"
#include "sampling/unis.h"
#include "test_util.h"
#include "util/math.h"

namespace vastats {
namespace {

TEST(KolmogorovCdfTest, KnownValues) {
  EXPECT_DOUBLE_EQ(KolmogorovCdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(KolmogorovCdf(-1.0), 0.0);
  // K(1.36) ~ 0.9505 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovCdf(1.36), 0.95, 0.002);
  // K(1.63) ~ 0.99.
  EXPECT_NEAR(KolmogorovCdf(1.63), 0.99, 0.002);
  EXPECT_NEAR(KolmogorovCdf(5.0), 1.0, 1e-12);
}

TEST(KsStatisticTest, ZeroForPerfectFit) {
  // Sample at exact uniform quantile positions: D_n = 1/(2n) shifted; use
  // the midpoints so D_n = 1/(2n).
  const int n = 100;
  std::vector<double> samples;
  for (int i = 0; i < n; ++i) {
    samples.push_back((static_cast<double>(i) + 0.5) / n);
  }
  const auto d = KsStatistic(samples, [](double x) { return x; });
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 0.5 / n, 1e-12);
}

TEST(KsStatisticTest, DetectsWrongDistribution) {
  const std::vector<double> samples = testing::NormalSample(500, 1, 2.0, 1.0);
  // Against the true N(2,1) CDF: small statistic.
  const double good =
      KsStatistic(samples, [](double x) { return NormalCdf(x - 2.0); })
          .value();
  // Against a shifted CDF: large statistic.
  const double bad =
      KsStatistic(samples, [](double x) { return NormalCdf(x); }).value();
  EXPECT_LT(good, 0.07);
  EXPECT_GT(bad, 0.5);
  EXPECT_GT(KsPValue(good, 500).value(), 0.01);
  EXPECT_LT(KsPValue(bad, 500).value(), 1e-6);
}

TEST(KsStatisticTwoSampleTest, SameDistributionSmallStatistic) {
  const std::vector<double> a = testing::NormalSample(800, 2);
  const std::vector<double> b = testing::NormalSample(800, 3);
  const double d = KsStatisticTwoSample(a, b).value();
  EXPECT_LT(d, 0.08);
  EXPECT_GT(KsPValueTwoSample(d, 800, 800).value(), 0.01);
}

TEST(KsStatisticTwoSampleTest, DifferentDistributionsLargeStatistic) {
  const std::vector<double> a = testing::NormalSample(500, 4, 0.0, 1.0);
  const std::vector<double> b = testing::NormalSample(500, 5, 1.5, 1.0);
  const double d = KsStatisticTwoSample(a, b).value();
  EXPECT_GT(d, 0.4);
  EXPECT_LT(KsPValueTwoSample(d, 500, 500).value(), 1e-8);
}

TEST(KsStatisticTest, Validation) {
  EXPECT_FALSE(KsStatistic({}, [](double) { return 0.5; }).ok());
  EXPECT_FALSE(
      KsStatistic(std::vector<double>{1.0}, std::function<double(double)>())
          .ok());
  EXPECT_FALSE(KsStatisticTwoSample({}, std::vector<double>{1.0}).ok());
  EXPECT_FALSE(KsPValue(-0.1, 10).ok());
  EXPECT_FALSE(KsPValue(0.1, 0).ok());
}

TEST(KsStatisticDiscreteTest, Validation) {
  const std::vector<double> samples = {1.0, 2.0};
  const std::vector<double> atoms = {1.0, 2.0};
  const std::vector<double> probs = {0.5, 0.5};
  EXPECT_TRUE(KsStatisticDiscrete(samples, atoms, probs).ok());
  EXPECT_FALSE(KsStatisticDiscrete({}, atoms, probs).ok());
  const std::vector<double> bad_probs = {0.5, 0.2};
  EXPECT_FALSE(KsStatisticDiscrete(samples, atoms, bad_probs).ok());
  const std::vector<double> unsorted = {2.0, 1.0};
  EXPECT_FALSE(KsStatisticDiscrete(samples, unsorted, probs).ok());
}

TEST(KsStatisticDiscreteTest, ExactMatchGivesTinyStatistic) {
  // Empirical frequencies exactly matching the atom probabilities.
  std::vector<double> samples;
  for (int i = 0; i < 300; ++i) {
    samples.push_back(i % 3 == 0 ? 1.0 : (i % 3 == 1 ? 2.0 : 3.0));
  }
  const std::vector<double> atoms = {1.0, 2.0, 3.0};
  const std::vector<double> probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  EXPECT_NEAR(KsStatisticDiscrete(samples, atoms, probs).value(), 0.0, 1e-12);
}

TEST(KsValidationTest, UniSMatchesExhaustiveDistribution) {
  // Statistical validation of the sampler: the empirical uniS answer
  // distribution must match the exact permutation-enumeration atoms.
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  const auto all = EnumerateOrderAnswers(sources, query);
  ASSERT_TRUE(all.ok());
  std::map<double, double> frequency;
  for (const double v : *all) {
    frequency[v] += 1.0 / static_cast<double>(all->size());
  }
  std::vector<double> atoms, probs;
  for (const auto& [atom, probability] : frequency) {
    atoms.push_back(atom);
    probs.push_back(probability);
  }

  const auto sampler = UniSSampler::Create(&sources, query);
  ASSERT_TRUE(sampler.ok());
  Rng rng(6);
  const auto samples = sampler->Sample(3000, rng);
  ASSERT_TRUE(samples.ok());
  const double d = KsStatisticDiscrete(*samples, atoms, probs).value();
  const double p = KsPValue(d, 3000).value();
  EXPECT_GT(p, 0.001) << "uniS deviates from the permutation distribution "
                      << "(D = " << d << ")";
}

}  // namespace
}  // namespace vastats
