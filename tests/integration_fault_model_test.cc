#include "datagen/fault_model.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace vastats {
namespace {

FaultModelOptions BaseOptions() {
  FaultModelOptions options;
  options.transient_failure_prob = 0.3;
  options.latency_base_ms = 1.0;
  options.latency_per_component_ms = 0.1;
  options.seed = 42;
  return options;
}

TEST(FaultModelTest, ValidateRejectsBadOptions) {
  FaultModelOptions options = BaseOptions();
  options.transient_failure_prob = 1.5;
  EXPECT_FALSE(FaultModel::Create(4, options).ok());
  options = BaseOptions();
  options.corrupt_value_prob = -0.1;
  EXPECT_FALSE(FaultModel::Create(4, options).ok());
  options = BaseOptions();
  options.outage_fraction = 2.0;
  EXPECT_FALSE(FaultModel::Create(4, options).ok());
  options = BaseOptions();
  options.latency_base_ms = -1.0;
  EXPECT_FALSE(FaultModel::Create(4, options).ok());
  options = BaseOptions();
  options.failure_spread_sigma = -0.5;
  EXPECT_FALSE(FaultModel::Create(4, options).ok());
  options = BaseOptions();
  options.outage_epoch = -3;
  EXPECT_FALSE(FaultModel::Create(4, options).ok());
  EXPECT_FALSE(FaultModel::Create(0, BaseOptions()).ok());
  EXPECT_TRUE(FaultModel::Create(4, BaseOptions()).ok());
}

TEST(FaultModelTest, KeyedDecisionsAreDeterministicAcrossInstances) {
  FaultModelOptions options = BaseOptions();
  options.corrupt_value_prob = 0.2;
  options.latency_jitter_sigma = 0.5;
  options.failure_spread_sigma = 0.7;
  const auto a = FaultModel::Create(8, options);
  const auto b = FaultModel::Create(8, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int s = 0; s < 8; ++s) {
    EXPECT_DOUBLE_EQ(a->TransientFailureProb(s), b->TransientFailureProb(s));
    for (int64_t e = 0; e < 16; ++e) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a->AttemptFails(s, e, attempt),
                  b->AttemptFails(s, e, attempt));
        EXPECT_DOUBLE_EQ(a->AttemptLatencyMs(s, e, attempt, 5),
                         b->AttemptLatencyMs(s, e, attempt, 5));
        EXPECT_DOUBLE_EQ(a->BackoffJitterU01(s, e, attempt),
                         b->BackoffJitterU01(s, e, attempt));
      }
      EXPECT_EQ(a->ValueCorrupted(s, e, 3), b->ValueCorrupted(s, e, 3));
    }
  }
}

TEST(FaultModelTest, DecisionsVaryAcrossIdentifiers) {
  const auto model = FaultModel::Create(8, BaseOptions());
  ASSERT_TRUE(model.ok());
  // With p = 0.3 over 8 sources x 64 epochs, both outcomes must appear,
  // and the empirical rate must sit near p.
  int failures = 0;
  const int trials = 8 * 64;
  for (int s = 0; s < 8; ++s) {
    for (int64_t e = 0; e < 64; ++e) {
      failures += model->AttemptFails(s, e, 0) ? 1 : 0;
    }
  }
  const double rate = static_cast<double>(failures) / trials;
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.4);
}

TEST(FaultModelTest, FailureSpreadVariesPerSource) {
  FaultModelOptions options = BaseOptions();
  options.failure_spread_sigma = 1.0;
  const auto model = FaultModel::Create(16, options);
  ASSERT_TRUE(model.ok());
  std::set<double> distinct;
  for (int s = 0; s < 16; ++s) {
    const double p = model->TransientFailureProb(s);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    distinct.insert(p);
  }
  EXPECT_GT(distinct.size(), 8u);
}

TEST(FaultModelTest, ScheduledOutageStartsAtEpoch) {
  FaultModelOptions options = BaseOptions();
  options.transient_failure_prob = 0.0;
  options.outage_fraction = 0.5;
  options.outage_epoch = 10;
  const auto model = FaultModel::Create(10, options);
  ASSERT_TRUE(model.ok());
  const std::vector<int>& out = model->outage_sources();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  const std::set<int> out_set(out.begin(), out.end());
  for (int s = 0; s < 10; ++s) {
    EXPECT_FALSE(model->PermanentlyOut(s, 0));
    EXPECT_FALSE(model->PermanentlyOut(s, 9));
    EXPECT_EQ(model->PermanentlyOut(s, 10), out_set.count(s) > 0);
    EXPECT_EQ(model->PermanentlyOut(s, 1000), out_set.count(s) > 0);
  }
}

TEST(FaultModelTest, LatencyIsBasePlusPerComponentWithoutJitter) {
  FaultModelOptions options = BaseOptions();
  const auto model = FaultModel::Create(4, options);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->AttemptLatencyMs(0, 0, 0, 10), 1.0 + 0.1 * 10);
  EXPECT_DOUBLE_EQ(model->AttemptLatencyMs(3, 7, 2, 0), 1.0);
}

TEST(FaultModelTest, LatencyJitterStaysPositive) {
  FaultModelOptions options = BaseOptions();
  options.latency_jitter_sigma = 1.0;
  const auto model = FaultModel::Create(4, options);
  ASSERT_TRUE(model.ok());
  std::set<double> distinct;
  for (int64_t e = 0; e < 32; ++e) {
    const double latency = model->AttemptLatencyMs(0, e, 0, 5);
    EXPECT_GT(latency, 0.0);
    distinct.insert(latency);
  }
  EXPECT_GT(distinct.size(), 16u);
}

TEST(FaultModelTest, MixFaultKeyDecorrelatesIdentifiers) {
  std::set<uint64_t> keys;
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = 0; b < 8; ++b) {
      for (uint64_t c = 0; c < 4; ++c) {
        keys.insert(MixFaultKey(42, a, b, c));
      }
    }
  }
  EXPECT_EQ(keys.size(), 8u * 8u * 4u);  // no collisions on a small grid
  EXPECT_NE(MixFaultKey(1, 0, 0, 0), MixFaultKey(2, 0, 0, 0));
}

TEST(VirtualClockTest, AdvancesAndIgnoresNegatives) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.NowMs(), 0.0);
  clock.AdvanceMs(2.5);
  clock.AdvanceMs(-100.0);  // must never rewind
  clock.AdvanceMs(0.5);
  EXPECT_DOUBLE_EQ(clock.NowMs(), 3.0);
}

}  // namespace
}  // namespace vastats
