#include "sampling/unis.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/exhaustive.h"
#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

UniSSampler MakeFigure1Sampler(const SourceSet& sources,
                               AggregateKind kind = AggregateKind::kSum) {
  return UniSSampler::Create(&sources, testing::MakeFigure1Query(kind))
      .value();
}

TEST(UniSSamplerTest, CreateValidatesCoverage) {
  const SourceSet sources = testing::MakeFigure1Sources();
  AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  query.components.push_back(42);  // nobody binds 42
  EXPECT_FALSE(UniSSampler::Create(&sources, query).ok());
  EXPECT_FALSE(UniSSampler::Create(nullptr,
                                   testing::MakeFigure1Query(
                                       AggregateKind::kSum))
                   .ok());
}

TEST(UniSSamplerTest, SampleCoversAllComponents) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto sample = sampler.SampleOne(rng);
    ASSERT_TRUE(sample.ok());
    EXPECT_DOUBLE_EQ(sample->coverage, 1.0);
    EXPECT_GE(sample->sources_contributing, 2);
    EXPECT_LE(sample->sources_visited, 4);
  }
}

TEST(UniSSamplerTest, AnswersWithinViableRange) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  const auto range =
      ViableRange(sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(range.ok());
  Rng rng(2);
  const auto samples = sampler.Sample(500, rng);
  ASSERT_TRUE(samples.ok());
  for (const double v : *samples) {
    EXPECT_GE(v, range->first);
    EXPECT_LE(v, range->second);
  }
}

TEST(UniSSamplerTest, SampleValuesMatchOrderEnumeration) {
  // Every uniS answer must be producible by some source permutation, and
  // with enough draws every permutation answer should appear.
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  const auto all = EnumerateOrderAnswers(
      sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(all.ok());
  std::set<double> permutation_answers(all->begin(), all->end());

  Rng rng(3);
  const auto samples = sampler.Sample(2000, rng);
  ASSERT_TRUE(samples.ok());
  std::set<double> seen(samples->begin(), samples->end());
  for (const double v : seen) {
    EXPECT_TRUE(permutation_answers.count(v) > 0) << "unexpected answer " << v;
  }
  EXPECT_EQ(seen, permutation_answers);  // 4! = 24 draws cover the space
}

TEST(UniSSamplerTest, FrequenciesMatchPermutationDistribution) {
  // uniS visits sources in a uniformly random order, so the empirical answer
  // frequencies must match the permutation-enumeration frequencies.
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  const auto all = EnumerateOrderAnswers(
      sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(all.ok());

  std::map<double, double> expected;
  for (const double v : *all) expected[v] += 1.0 / 24.0;

  Rng rng(4);
  const int kDraws = 24000;
  std::map<double, double> observed;
  const auto samples = sampler.Sample(kDraws, rng);
  ASSERT_TRUE(samples.ok());
  for (const double v : *samples) observed[v] += 1.0 / kDraws;

  for (const auto& [answer, probability] : expected) {
    EXPECT_NEAR(observed[answer], probability, 0.02) << "answer " << answer;
  }
}

TEST(UniSSamplerTest, DeterministicUnderSeed) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  Rng rng_a(7), rng_b(7);
  EXPECT_EQ(sampler.Sample(50, rng_a).value(),
            sampler.Sample(50, rng_b).value());
}

TEST(UniSSamplerTest, CoverableWithout) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  // Component 5 is bound only by D2 (index 1); component 4 only by D3.
  EXPECT_FALSE(sampler.CoverableWithout(std::vector<int>{1}));
  EXPECT_FALSE(sampler.CoverableWithout(std::vector<int>{2}));
  EXPECT_TRUE(sampler.CoverableWithout(std::vector<int>{0}));
  EXPECT_TRUE(sampler.CoverableWithout(std::vector<int>{3}));
  EXPECT_TRUE(sampler.CoverableWithout(std::vector<int>{0, 3}));
}

TEST(UniSSamplerTest, SampleExcludingRespectsExclusion) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  Rng rng(8);
  // Excluding D1: component 1 must come from D2 (21) or D3 (19) — both also
  // possible with D1, but D1's 19-for-c2 disappears only via frequencies.
  const auto samples = sampler.SampleExcluding(200, std::vector<int>{0}, rng);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 200u);

  // Excluding a source that breaks coverage fails fast.
  EXPECT_EQ(sampler.SampleExcluding(10, std::vector<int>{1}, rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sampler.SampleExcluding(10, std::vector<int>{99}, rng)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(UniSSamplerTest, PartialCoverageModeFinalizesSubset) {
  SourceSet sources = testing::MakeFigure1Sources();
  UniSOptions options;
  options.require_full_coverage = false;
  const UniSSampler sampler =
      UniSSampler::Create(&sources,
                          testing::MakeFigure1Query(AggregateKind::kSum),
                          options)
          .value();
  Rng rng(9);
  // Exclude D2: component 5 becomes uncoverable; samples still finalize.
  std::vector<char> mask = {0, 1, 0, 0};
  const auto sample = sampler.SampleOne(rng, mask);
  ASSERT_TRUE(sample.ok());
  EXPECT_DOUBLE_EQ(sample->coverage, 0.8);
}

TEST(UniSSamplerTest, EstimateSourcesPerAnswer) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  Rng rng(10);
  const auto y = sampler.EstimateSourcesPerAnswer(500, rng);
  ASSERT_TRUE(y.ok());
  // Components 4 and 5 are single-source (D3, D2), so every answer needs at
  // least those two sources; never more than 4.
  EXPECT_GE(y.value(), 2.0);
  EXPECT_LE(y.value(), 4.0);
}

TEST(UniSSamplerTest, AverageQueryProducesAverages) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler =
      MakeFigure1Sampler(sources, AggregateKind::kAverage);
  Rng rng(11);
  const auto samples = sampler.Sample(100, rng);
  ASSERT_TRUE(samples.ok());
  for (const double v : *samples) {
    EXPECT_GT(v, 15.0);
    EXPECT_LT(v, 22.0);
  }
}

TEST(UniSSamplerTest, RejectsNonPositiveCounts) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const UniSSampler sampler = MakeFigure1Sampler(sources);
  Rng rng(12);
  EXPECT_FALSE(sampler.Sample(0, rng).ok());
  EXPECT_FALSE(sampler.EstimateSourcesPerAnswer(0, rng).ok());
}

}  // namespace
}  // namespace vastats
