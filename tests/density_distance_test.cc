#include "density/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/math.h"
#include "util/random.h"

namespace vastats {
namespace {

GridDensity Gaussian(double mean, double sigma, double lo, double hi,
                     size_t points = 2048) {
  return testing::MakeAnalyticDensity(lo, hi, points, [&](double x) {
    return NormalPdf((x - mean) / sigma) / sigma;
  });
}

TEST(DistanceTest, IdenticalDensitiesAreZeroApart) {
  const GridDensity p = Gaussian(0.0, 1.0, -8.0, 8.0);
  EXPECT_NEAR(DensityDistance(p, p, DistanceKind::kL2).value(), 0.0, 1e-9);
  EXPECT_NEAR(DensityDistance(p, p, DistanceKind::kSquaredL2).value(), 0.0,
              1e-12);
  EXPECT_NEAR(DensityDistance(p, p, DistanceKind::kTotalVariation).value(),
              0.0, 1e-9);
  EXPECT_NEAR(DensityDistance(p, p, DistanceKind::kHellinger).value(), 0.0,
              1e-4);
  // Bhattacharyya *coefficient* of identical normalized densities is 1.
  EXPECT_NEAR(
      DensityDistance(p, p, DistanceKind::kBhattacharyyaCoefficient).value(),
      1.0, 1e-6);
  EXPECT_NEAR(
      DensityDistance(p, p, DistanceKind::kBhattacharyyaDistance).value(),
      0.0, 1e-6);
  EXPECT_NEAR(DensityDistance(p, p, DistanceKind::kKlDivergence).value(), 0.0,
              1e-9);
}

TEST(DistanceTest, SymmetricKinds) {
  const GridDensity p = Gaussian(0.0, 1.0, -8.0, 12.0);
  const GridDensity q = Gaussian(3.0, 1.5, -8.0, 12.0);
  for (const DistanceKind kind :
       {DistanceKind::kL2, DistanceKind::kSquaredL2,
        DistanceKind::kBhattacharyyaCoefficient,
        DistanceKind::kBhattacharyyaDistance, DistanceKind::kHellinger,
        DistanceKind::kTotalVariation}) {
    EXPECT_NEAR(DensityDistance(p, q, kind).value(),
                DensityDistance(q, p, kind).value(), 1e-9)
        << DistanceKindToString(kind);
  }
}

TEST(DistanceTest, SquaredL2MatchesClosedFormForGaussians) {
  // For N(0,s) vs N(m,s): int (p-q)^2 = (1 - exp(-m^2/(4s^2))) / (s*sqrt(pi)).
  const double s = 1.0, m = 2.0;
  const GridDensity p = Gaussian(0.0, s, -10.0, 12.0, 8192);
  const GridDensity q = Gaussian(m, s, -10.0, 12.0, 8192);
  const double expected =
      (1.0 - std::exp(-m * m / (4.0 * s * s))) / (s * std::sqrt(kPi));
  EXPECT_NEAR(DensityDistance(p, q, DistanceKind::kSquaredL2).value(),
              expected, 1e-4);
  EXPECT_NEAR(DensityDistance(p, q, DistanceKind::kL2).value(),
              std::sqrt(expected), 1e-4);
}

TEST(DistanceTest, BhattacharyyaCoefficientForShiftedGaussians) {
  // BC(N(0,s), N(m,s)) = exp(-m^2 / (8 s^2)).
  const double s = 1.0, m = 2.0;
  const GridDensity p = Gaussian(0.0, s, -10.0, 12.0, 8192);
  const GridDensity q = Gaussian(m, s, -10.0, 12.0, 8192);
  EXPECT_NEAR(
      DensityDistance(p, q, DistanceKind::kBhattacharyyaCoefficient).value(),
      std::exp(-m * m / (8.0 * s * s)), 1e-4);
}

TEST(DistanceTest, DistanceGrowsWithSeparation) {
  const GridDensity p = Gaussian(0.0, 1.0, -10.0, 20.0);
  double prev_l2 = 0.0, prev_tv = 0.0;
  for (const double shift : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const GridDensity q = Gaussian(shift, 1.0, -10.0, 20.0);
    const double l2 = DensityDistance(p, q, DistanceKind::kL2).value();
    const double tv =
        DensityDistance(p, q, DistanceKind::kTotalVariation).value();
    EXPECT_GT(l2, prev_l2);
    EXPECT_GT(tv, prev_tv);
    prev_l2 = l2;
    prev_tv = tv;
  }
}

TEST(DistanceTest, TotalVariationBounded) {
  const GridDensity p = Gaussian(0.0, 0.5, -5.0, 45.0);
  const GridDensity q = Gaussian(40.0, 0.5, -5.0, 45.0);
  const double tv =
      DensityDistance(p, q, DistanceKind::kTotalVariation).value();
  EXPECT_GT(tv, 0.99);
  EXPECT_LE(tv, 1.0 + 1e-6);
}

TEST(DistanceTest, DisjointSupportsBhattacharyyaDistanceFails) {
  const GridDensity p = Gaussian(0.0, 0.1, -1.0, 1.0);
  const GridDensity q = Gaussian(100.0, 0.1, 99.0, 101.0);
  EXPECT_FALSE(
      DensityDistance(p, q, DistanceKind::kBhattacharyyaDistance).ok());
  // The coefficient itself is fine (it is just 0).
  EXPECT_NEAR(
      DensityDistance(p, q, DistanceKind::kBhattacharyyaCoefficient).value(),
      0.0, 1e-9);
}

TEST(DistanceTest, KlDivergenceAsymmetric) {
  const GridDensity p = Gaussian(0.0, 1.0, -8.0, 10.0);
  const GridDensity q = Gaussian(2.0, 2.0, -8.0, 10.0);
  const double pq = DensityDistance(p, q, DistanceKind::kKlDivergence).value();
  const double qp = DensityDistance(q, p, DistanceKind::kKlDivergence).value();
  EXPECT_GT(pq, 0.0);
  EXPECT_GT(qp, 0.0);
  EXPECT_NE(pq, qp);
}

TEST(DistanceTest, DifferentGridsAreResampledConsistently) {
  const GridDensity p = Gaussian(0.0, 1.0, -6.0, 6.0, 1024);
  const GridDensity q = Gaussian(1.0, 1.0, -9.0, 7.0, 3000);
  const GridDensity q_same_grid = Gaussian(1.0, 1.0, -6.0, 6.0, 1024);
  const double cross = DensityDistance(p, q, DistanceKind::kL2).value();
  const double same = DensityDistance(p, q_same_grid, DistanceKind::kL2).value();
  EXPECT_NEAR(cross, same, 0.01);
}

// Property: metric axioms (triangle inequality) for the true metrics among
// the distances, over random Gaussian-mixture triples.
class DistanceTriangleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistanceTriangleProperty, L2AndHellingerSatisfyTriangle) {
  Rng rng(GetParam());
  auto random_density = [&]() {
    std::vector<testing::Bump> bumps;
    const int k = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < k; ++i) {
      bumps.push_back(testing::Bump{rng.Uniform(0.2, 1.0),
                                    rng.Uniform(-5.0, 5.0),
                                    rng.Uniform(0.4, 1.5)});
    }
    return testing::MakeBumpDensity(-10.0, 10.0, 1024, bumps);
  };
  const GridDensity p = random_density();
  const GridDensity q = random_density();
  const GridDensity r = random_density();
  for (const DistanceKind kind :
       {DistanceKind::kL2, DistanceKind::kHellinger,
        DistanceKind::kTotalVariation}) {
    const double pq = DensityDistance(p, q, kind).value();
    const double qr = DensityDistance(q, r, kind).value();
    const double pr = DensityDistance(p, r, kind).value();
    EXPECT_LE(pr, pq + qr + 1e-9) << DistanceKindToString(kind);
    EXPECT_GE(pq, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceTriangleProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

constexpr DistanceKind kAllKinds[] = {
    DistanceKind::kL2,
    DistanceKind::kSquaredL2,
    DistanceKind::kBhattacharyyaCoefficient,
    DistanceKind::kBhattacharyyaDistance,
    DistanceKind::kHellinger,
    DistanceKind::kTotalVariation,
    DistanceKind::kKlDivergence,
};

TEST(DistanceTest, MinimalTwoPointGridsSupported) {
  // Two points is the smallest grid GridDensity::Create admits; every kind
  // must integrate it without dividing by zero (IntegratePair steps by
  // (hi-lo)/(n-1)).
  const GridDensity p = GridDensity::Create(0.0, 1.0, {0.6, 1.4}).value();
  const GridDensity q = GridDensity::Create(0.0, 1.0, {1.0, 1.0}).value();
  for (const DistanceKind kind : kAllKinds) {
    const auto distance = DensityDistance(p, q, kind);
    ASSERT_TRUE(distance.ok()) << DistanceKindToString(kind);
    EXPECT_TRUE(std::isfinite(distance.value()))
        << DistanceKindToString(kind);
  }
}

TEST(DistanceTest, SinglePointGridsRejectedAtConstruction) {
  // GridDensity::Create refuses one- and zero-point grids, so nothing a
  // caller can build reaches IntegratePair's divide by n - 1;
  // DensityDistance carries its own min-size guard as defense in depth for
  // densities constructed through any future path.
  EXPECT_FALSE(GridDensity::Create(0.0, 1.0, {1.0}).ok());
  EXPECT_FALSE(GridDensity::Create(0.0, 1.0, {}).ok());
}

TEST(DistanceKindToStringTest, AllNamed) {
  EXPECT_EQ(DistanceKindToString(DistanceKind::kL2), "L2");
  EXPECT_EQ(DistanceKindToString(DistanceKind::kSquaredL2), "L2^2");
  EXPECT_EQ(DistanceKindToString(DistanceKind::kHellinger), "Hellinger");
}

}  // namespace
}  // namespace vastats
