#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "integration/cost_model.h"
#include "integration/stratification.h"
#include "test_util.h"

namespace vastats {
namespace {

// Three semantic strata: baseline sources, +10-biased sources, and
// +40-biased sources (e.g. different aggregation windows / units).
SourceSet MakeStratifiedSources() {
  SourceSet set;
  Rng rng(1);
  const double biases[] = {0.0, 0.0, 0.0, 10.0, 10.0, 40.0};
  for (int s = 0; s < 6; ++s) {
    DataSource source(std::string("s") + std::to_string(s));
    for (ComponentId c = 0; c < 30; ++c) {
      source.Bind(c, 50.0 + static_cast<double>(c) + biases[s] +
                         rng.Normal(0.0, 0.2));
    }
    set.AddSource(std::move(source));
  }
  return set;
}

std::vector<ComponentId> Scope30() {
  std::vector<ComponentId> scope;
  for (ComponentId c = 0; c < 30; ++c) scope.push_back(c);
  return scope;
}

TEST(EstimateSourceBiasesTest, RecoversSystematicOffsets) {
  const SourceSet sources = MakeStratifiedSources();
  const auto biases = EstimateSourceBiases(sources, Scope30());
  ASSERT_TRUE(biases.ok());
  ASSERT_EQ(biases->size(), 6u);
  // The consensus is the median over all six sources, which with values
  // {0,0,0,+10,+10,+40} sits at +5 — biases are offsets from it, so the
  // *relative* structure (gaps of 10 and 30) is what stratification uses.
  for (int s = 0; s < 3; ++s) {
    EXPECT_NEAR((*biases)[static_cast<size_t>(s)].bias, -5.0, 1.0) << s;
  }
  EXPECT_NEAR((*biases)[3].bias, 5.0, 1.0);
  EXPECT_NEAR((*biases)[4].bias, 5.0, 1.0);
  EXPECT_NEAR((*biases)[5].bias, 35.0, 1.0);
  for (const SourceBias& bias : *biases) EXPECT_EQ(bias.support, 30);
}

TEST(StratifySourcesTest, FindsThreeStrata) {
  const SourceSet sources = MakeStratifiedSources();
  StratificationOptions options;
  options.gap = 3.0;
  const auto result = StratifySources(sources, Scope30(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->strata.size(), 3u);
  EXPECT_TRUE(result->unplaced.empty());
  // Ascending by bias center: {0,1,2}, {3,4}, {5}.
  EXPECT_EQ(result->strata[0].sources.size(), 3u);
  EXPECT_EQ(result->strata[1].sources.size(), 2u);
  EXPECT_EQ(result->strata[2].sources, (std::vector<int>{5}));
  EXPECT_NEAR(result->strata[0].bias_center, -5.0, 1.0);
  EXPECT_NEAR(result->strata[1].bias_center, 5.0, 1.0);
  EXPECT_NEAR(result->strata[2].bias_center, 35.0, 1.0);
  EXPECT_LE(result->strata[0].bias_min, result->strata[0].bias_max);
}

TEST(StratifySourcesTest, WideGapMergesEverything) {
  const SourceSet sources = MakeStratifiedSources();
  StratificationOptions options;
  options.gap = 100.0;
  const auto result = StratifySources(sources, Scope30(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->strata.size(), 1u);
  EXPECT_EQ(result->strata[0].sources.size(), 6u);
}

TEST(StratifySourcesTest, LowSupportSourcesUnplaced) {
  SourceSet sources = MakeStratifiedSources();
  DataSource lonely("lonely");
  lonely.Bind(0, 55.0);  // overlaps on one component only
  sources.AddSource(std::move(lonely));
  StratificationOptions options;
  options.gap = 3.0;
  options.min_support = 3;
  const auto result = StratifySources(sources, Scope30(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unplaced, (std::vector<int>{6}));
}

TEST(StratifySourcesTest, Validation) {
  const SourceSet sources = MakeStratifiedSources();
  StratificationOptions bad;
  bad.gap = 0.0;
  EXPECT_FALSE(StratifySources(sources, Scope30(), bad).ok());
  bad = {};
  bad.min_support = 0;
  EXPECT_FALSE(StratifySources(sources, Scope30(), bad).ok());
  EXPECT_FALSE(EstimateSourceBiases(sources, {}).ok());
}

TEST(SourceCostModelTest, Validation) {
  SourceCostModelOptions options;
  EXPECT_TRUE(SourceCostModel::Create(5, options).ok());
  EXPECT_FALSE(SourceCostModel::Create(0, options).ok());
  options.base_ms = -1.0;
  EXPECT_FALSE(SourceCostModel::Create(5, options).ok());
}

TEST(SourceCostModelTest, VisitCostScalesWithComponents) {
  SourceCostModelOptions options;
  options.base_ms = 10.0;
  options.per_component_ms = 1.0;
  options.jitter_sigma = 0.0;
  options.source_sigma = 0.0;
  const auto model = SourceCostModel::Create(3, options);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  EXPECT_DOUBLE_EQ(model->VisitCost(0, 0, rng).value(), 10.0);
  EXPECT_DOUBLE_EQ(model->VisitCost(0, 5, rng).value(), 15.0);
  EXPECT_FALSE(model->VisitCost(7, 1, rng).ok());
  EXPECT_FALSE(model->VisitCost(0, -1, rng).ok());
  EXPECT_DOUBLE_EQ(model->SourceMultiplier(1).value(), 1.0);
}

TEST(CostAwareSamplerTest, CostAccumulatesOverVisits) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = UniSSampler::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(sampler.ok());
  SourceCostModelOptions options;
  options.base_ms = 100.0;
  options.per_component_ms = 1.0;
  options.jitter_sigma = 0.0;
  options.source_sigma = 0.0;
  const auto model = SourceCostModel::Create(4, options);
  ASSERT_TRUE(model.ok());
  const auto costed = CostAwareSampler::Create(&sampler.value(),
                                               &model.value());
  ASSERT_TRUE(costed.ok());
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto sample = costed->SampleOne(rng);
    ASSERT_TRUE(sample.ok());
    // Figure 1 needs 2 to 4 visits (D2+D3 alone cover everything); with 5
    // components transferred the cost is visits * 100 + 5.
    EXPECT_DOUBLE_EQ(sample->cost_ms,
                     100.0 * sample->sources_visited + 5.0);
    EXPECT_GE(sample->sources_visited, 2);
    EXPECT_LE(sample->sources_visited, 4);
  }
}

TEST(CostAwareSamplerTest, BudgetCapsSampling) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = UniSSampler::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum));
  SourceCostModelOptions options;
  options.base_ms = 100.0;
  options.jitter_sigma = 0.0;
  options.source_sigma = 0.0;
  const auto model = SourceCostModel::Create(4, options);
  const auto costed =
      CostAwareSampler::Create(&sampler.value(), &model.value());
  ASSERT_TRUE(costed.ok());
  Rng rng(4);
  // 205-405 ms per answer: a 2-second budget buys only a handful.
  const auto batch = costed->SampleWithBudget(2000.0, 0, rng);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->budget_exhausted);
  EXPECT_GE(batch->values.size(), 4u);
  EXPECT_LE(batch->values.size(), 10u);
  EXPECT_LE(batch->total_cost_ms, 2000.0 + 410.0);  // one answer overshoot

  // Count cap dominates a generous budget.
  const auto capped = costed->SampleWithBudget(1e9, 3, rng);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->values.size(), 3u);
  EXPECT_FALSE(capped->budget_exhausted);
}

TEST(CostAwareSamplerTest, Validation) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = UniSSampler::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum));
  const auto small_model =
      SourceCostModel::Create(2, SourceCostModelOptions{});
  EXPECT_FALSE(
      CostAwareSampler::Create(&sampler.value(), &small_model.value()).ok());
  EXPECT_FALSE(CostAwareSampler::Create(nullptr, &small_model.value()).ok());
  const auto model = SourceCostModel::Create(4, SourceCostModelOptions{});
  const auto costed =
      CostAwareSampler::Create(&sampler.value(), &model.value());
  ASSERT_TRUE(costed.ok());
  Rng rng(5);
  EXPECT_FALSE(costed->SampleWithBudget(0.0, 10, rng).ok());
  EXPECT_FALSE(costed->SampleWithBudget(100.0, -1, rng).ok());
}

TEST(UniSVisitTraceTest, TraceIsConsistent) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto sampler = UniSSampler::Create(
      &sources, testing::MakeFigure1Query(AggregateKind::kSum));
  Rng rng(6);
  const auto sample = sampler->SampleOne(rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(static_cast<int>(sample->visits.size()),
            sample->sources_visited);
  int taken = 0;
  int contributing = 0;
  std::set<int> seen;
  for (const UniSVisit& visit : sample->visits) {
    taken += visit.components_taken;
    if (visit.components_taken > 0) ++contributing;
    EXPECT_TRUE(seen.insert(visit.source).second) << "source visited twice";
  }
  EXPECT_EQ(taken, 5);  // all Figure 1 components covered
  EXPECT_EQ(contributing, sample->sources_contributing);
}

}  // namespace
}  // namespace vastats
