#include "core/uncertain_export.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace vastats {
namespace {

CoverageResult MakeCoverage() {
  CoverageResult coverage;
  coverage.intervals.push_back(CoverageInterval{0.0, 2.0, 0.6});
  coverage.intervals.push_back(CoverageInterval{5.0, 6.0, 0.3});
  coverage.total_coverage = 0.9;
  coverage.total_length_fraction = 0.3;
  return coverage;
}

TEST(UncertainExportTest, RawProbabilitiesAreCoverages) {
  const auto attribute =
      ToUncertainAttribute(MakeCoverage(), "temp", /*normalized=*/false);
  ASSERT_TRUE(attribute.ok());
  EXPECT_EQ(attribute->name, "temp");
  ASSERT_EQ(attribute->alternatives.size(), 2u);
  EXPECT_DOUBLE_EQ(attribute->alternatives[0].probability, 0.6);
  EXPECT_DOUBLE_EQ(attribute->alternatives[1].probability, 0.3);
  EXPECT_NEAR(attribute->TotalProbability(), 0.9, 1e-12);
}

TEST(UncertainExportTest, NormalizedProbabilitiesSumToOne) {
  const auto attribute =
      ToUncertainAttribute(MakeCoverage(), "temp", /*normalized=*/true);
  ASSERT_TRUE(attribute.ok());
  EXPECT_NEAR(attribute->TotalProbability(), 1.0, 1e-12);
  EXPECT_NEAR(attribute->alternatives[0].probability, 0.6 / 0.9, 1e-12);
}

TEST(UncertainExportTest, ExpectedValueUsesMidpoints) {
  const auto attribute =
      ToUncertainAttribute(MakeCoverage(), "temp", /*normalized=*/true);
  ASSERT_TRUE(attribute.ok());
  // Midpoints 1.0 and 5.5, weights 2/3 and 1/3.
  EXPECT_NEAR(UncertainExpectedValue(*attribute).value(),
              (2.0 / 3.0) * 1.0 + (1.0 / 3.0) * 5.5, 1e-12);
}

TEST(UncertainExportTest, ExpectedValueInvariantToNormalization) {
  const auto raw =
      ToUncertainAttribute(MakeCoverage(), "t", /*normalized=*/false);
  const auto normalized =
      ToUncertainAttribute(MakeCoverage(), "t", /*normalized=*/true);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(normalized.ok());
  EXPECT_NEAR(UncertainExpectedValue(*raw).value(),
              UncertainExpectedValue(*normalized).value(), 1e-12);
}

TEST(UncertainExportTest, Validation) {
  CoverageResult empty;
  EXPECT_FALSE(ToUncertainAttribute(empty, "x", false).ok());
  CoverageResult zero;
  zero.intervals.push_back(CoverageInterval{0.0, 1.0, 0.0});
  zero.total_coverage = 0.0;
  EXPECT_FALSE(ToUncertainAttribute(zero, "x", true).ok());
  EXPECT_TRUE(ToUncertainAttribute(zero, "x", false).ok());
  const auto attribute = ToUncertainAttribute(zero, "x", false);
  EXPECT_FALSE(UncertainExpectedValue(*attribute).ok());
}

}  // namespace
}  // namespace vastats
