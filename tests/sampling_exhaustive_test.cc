#include "sampling/exhaustive.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace vastats {
namespace {

TEST(EnumerateOrderAnswersTest, Figure1PermutationCount) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto answers = EnumerateOrderAnswers(
      sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 24u);  // 4! permutations
}

TEST(EnumerateOrderAnswersTest, HandComputedPath) {
  // Path (D1, D2, D3, D4): take c1=21, c2=19 from D1; c5=18 from D2;
  // c3=15, c4=20 from D3 => sum 93. Identity permutation is the first one.
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto answers = EnumerateOrderAnswers(
      sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(answers.ok());
  EXPECT_DOUBLE_EQ((*answers)[0], 93.0);
}

TEST(EnumerateOrderAnswersTest, CapEnforced) {
  SourceSet sources;
  for (int s = 0; s < 9; ++s) {
    DataSource source(std::string("s") + std::to_string(s));
    source.Bind(1, static_cast<double>(s));
    sources.AddSource(std::move(source));
  }
  AggregateQuery query = MakeRangeQuery("q", AggregateKind::kSum, 1, 1);
  EXPECT_FALSE(EnumerateOrderAnswers(sources, query, 8).ok());
  EXPECT_TRUE(EnumerateOrderAnswers(sources, query, 9).ok());
}

TEST(EnumerateAssignmentAnswersTest, CountsIsProductOfCoverage) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto answers = EnumerateAssignmentAnswers(
      sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(answers.ok());
  // Coverage: 3 * 3 * 2 * 1 * 1 = 18 assignments.
  EXPECT_EQ(answers->size(), 18u);
}

TEST(EnumerateAssignmentAnswersTest, SupersetOfOrderAnswers) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kSum);
  const auto order = EnumerateOrderAnswers(sources, query);
  const auto assignment = EnumerateAssignmentAnswers(sources, query);
  ASSERT_TRUE(order.ok());
  ASSERT_TRUE(assignment.ok());
  const std::set<double> assignment_set(assignment->begin(),
                                        assignment->end());
  for (const double v : *order) {
    EXPECT_TRUE(assignment_set.count(v) > 0);
  }
}

TEST(EnumerateAssignmentAnswersTest, CapEnforced) {
  const SourceSet sources = testing::MakeFigure1Sources();
  EXPECT_FALSE(EnumerateAssignmentAnswers(
                   sources, testing::MakeFigure1Query(AggregateKind::kSum),
                   10)
                   .ok());
}

TEST(ViableRangeTest, SumEnvelope) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const auto range =
      ViableRange(sources, testing::MakeFigure1Query(AggregateKind::kSum));
  ASSERT_TRUE(range.ok());
  // Min: 19 + 17 + 15 + 20 + 18 = 89. Max: 21 + 22 + 15 + 20 + 18 = 96.
  EXPECT_DOUBLE_EQ(range->first, 89.0);
  EXPECT_DOUBLE_EQ(range->second, 96.0);
}

TEST(ViableRangeTest, MatchesAssignmentEnumerationExtremes) {
  const SourceSet sources = testing::MakeFigure1Sources();
  for (const AggregateKind kind :
       {AggregateKind::kSum, AggregateKind::kAverage, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kMedian}) {
    const AggregateQuery query = testing::MakeFigure1Query(kind);
    const auto range = ViableRange(sources, query);
    const auto all = EnumerateAssignmentAnswers(sources, query);
    ASSERT_TRUE(range.ok());
    ASSERT_TRUE(all.ok());
    const auto [min_it, max_it] = std::minmax_element(all->begin(),
                                                      all->end());
    EXPECT_DOUBLE_EQ(range->first, *min_it) << AggregateKindToString(kind);
    EXPECT_DOUBLE_EQ(range->second, *max_it) << AggregateKindToString(kind);
  }
}

TEST(ViableRangeTest, NonMonotoneFallsBackToEnumeration) {
  const SourceSet sources = testing::MakeFigure1Sources();
  const AggregateQuery query =
      testing::MakeFigure1Query(AggregateKind::kVariance);
  const auto range = ViableRange(sources, query);
  const auto all = EnumerateAssignmentAnswers(sources, query);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(all.ok());
  const auto [min_it, max_it] = std::minmax_element(all->begin(), all->end());
  EXPECT_DOUBLE_EQ(range->first, *min_it);
  EXPECT_DOUBLE_EQ(range->second, *max_it);
}

TEST(ViableRangeTest, UncoveredComponentRejected) {
  const SourceSet sources = testing::MakeFigure1Sources();
  AggregateQuery query = testing::MakeFigure1Query(AggregateKind::kSum);
  query.components.push_back(42);
  EXPECT_FALSE(ViableRange(sources, query).ok());
}

}  // namespace
}  // namespace vastats
