#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace vastats {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  VASTATS_RETURN_IF_ERROR(FailWhenNegative(x));
  return 2 * x;
}

Result<int> ChainThroughMacro(int x) {
  VASTATS_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(3).value(), 6);
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(ChainThroughMacro(4).ok());
  EXPECT_EQ(ChainThroughMacro(4).value(), 9);
  EXPECT_EQ(ChainThroughMacro(-4).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vastats
