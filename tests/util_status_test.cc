#include "util/status.h"

#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

namespace vastats {
namespace {

// ---------------------------------------------------------------------------
// Compile-time semantics.
//
// [[nodiscard]] is an attribute, not part of the type, so no type trait can
// observe it; its presence on Status and Result is enforced by rule R5 of
// tools/lint_invariants.py (a tier-1 ctest entry) and, behaviorally, by the
// -Werror CI builds, where any discarded Status fails compilation.  What the
// type system can check, we check here.
// ---------------------------------------------------------------------------
static_assert(std::is_copy_constructible_v<Status>);
static_assert(std::is_move_constructible_v<Status>);
static_assert(std::is_copy_constructible_v<Result<int>>);
static_assert(std::is_move_constructible_v<Result<int>>);
// A move-only payload makes the whole Result move-only — copying must not
// silently compile into a payload copy.
static_assert(!std::is_copy_constructible_v<Result<std::unique_ptr<int>>>);
static_assert(std::is_move_constructible_v<Result<std::unique_ptr<int>>>);
// Both implicit conversions must stay implicit: `return SomeStatus;` and
// `return SomeT;` from a Result-returning function are the core idiom.
static_assert(std::is_convertible_v<Status, Result<int>>);
static_assert(std::is_convertible_v<int, Result<int>>);

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultTest, MoveOnlyPayloadRoundTrips) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(17);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 17);
  const std::unique_ptr<int> extracted = std::move(result).value();
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(*extracted, 17);
}

TEST(ResultTest, MoveOnlyPayloadCarriesErrorState) {
  Result<std::unique_ptr<int>> result = Status::Internal("boom");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(result.status().message(), "boom");
}

TEST(ResultTest, CopyPreservesErrorState) {
  const Result<int> original = Status::OutOfRange("index 9 of 3");
  const Result<int> copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  ASSERT_FALSE(copy.ok());
  EXPECT_EQ(copy.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(copy.status().message(), "index 9 of 3");
  // The source is intact after the copy.
  EXPECT_EQ(original.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(original.status().message(), "index 9 of 3");
}

TEST(ResultTest, MovePreservesErrorState) {
  Result<int> original = Status::FailedPrecondition("not yet fitted");
  const Result<int> moved = std::move(original);
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(moved.status().message(), "not yet fitted");
}

TEST(ResultTest, CopyPreservesValueState) {
  const Result<std::string> original = std::string("payload");
  const Result<std::string> copy = original;  // NOLINT(performance-unnecessary-copy-initialization)
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy.value(), "payload");
  EXPECT_EQ(original.value(), "payload");
}

TEST(StatusTest, EveryFactoryToStringPreservesCodeNameAndMessage) {
  const struct {
    Status status;
    StatusCode code;
  } cases[] = {
      {Status::InvalidArgument("m1"), StatusCode::kInvalidArgument},
      {Status::NotFound("m2"), StatusCode::kNotFound},
      {Status::OutOfRange("m3"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("m4"), StatusCode::kFailedPrecondition},
      {Status::Internal("m5"), StatusCode::kInternal},
      {Status::Unimplemented("m6"), StatusCode::kUnimplemented},
  };
  for (const auto& c : cases) {
    // ToString renders exactly "<StatusCodeToString(code)>: <message>", so
    // the code name survives the round trip and the message is not mangled.
    const std::string expected =
        std::string(StatusCodeToString(c.code)) + ": " + c.status.message();
    EXPECT_EQ(c.status.ToString(), expected);
    EXPECT_EQ(c.status.code(), c.code);
  }
}

TEST(StatusTest, EmptyMessageRoundTrips) {
  const Status status = Status::Internal("");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "Internal: ");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Result<int> DoubleIfPositive(int x) {
  VASTATS_RETURN_IF_ERROR(FailWhenNegative(x));
  return 2 * x;
}

Result<int> ChainThroughMacro(int x) {
  VASTATS_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_EQ(DoubleIfPositive(3).value(), 6);
  EXPECT_FALSE(DoubleIfPositive(-1).ok());
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(ChainThroughMacro(4).ok());
  EXPECT_EQ(ChainThroughMacro(4).value(), 9);
  EXPECT_EQ(ChainThroughMacro(-4).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vastats
