#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/climate.h"
#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "stats/aggregate_query.h"
#include "sampling/unis.h"
#include "stats/descriptive.h"
#include "util/csv.h"

namespace vastats {
namespace {

TEST(DistributionsTest, NormalMatchesParameters) {
  NormalDistribution dist(5.0, 2.0);
  Rng rng(1);
  Moments moments;
  for (int i = 0; i < 50000; ++i) moments.Add(dist.Sample(rng));
  EXPECT_NEAR(moments.mean(), 5.0, 0.05);
  EXPECT_NEAR(moments.SampleStdDev(), 2.0, 0.05);
}

TEST(DistributionsTest, TruncatedCauchyStaysInClip) {
  CauchyDistribution dist(10.0, 1.0, 5.0);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.Sample(rng);
    EXPECT_GE(x, 5.0);
    EXPECT_LE(x, 15.0);
  }
}

TEST(DistributionsTest, GammaOffsetShiftsSupport) {
  GammaDistribution dist(2.0, 1.0, 100.0);
  Rng rng(3);
  Moments moments;
  for (int i = 0; i < 20000; ++i) moments.Add(dist.Sample(rng));
  EXPECT_GT(moments.min(), 100.0);
  EXPECT_NEAR(moments.mean(), 102.0, 0.1);  // offset + shape*scale
}

TEST(DistributionsTest, MixtureWeightsRespected) {
  MixtureDistribution mixture;
  mixture.AddComponent(3.0, std::make_unique<NormalDistribution>(0.0, 0.1));
  mixture.AddComponent(1.0, std::make_unique<NormalDistribution>(100.0, 0.1));
  Rng rng(4);
  int high = 0;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (mixture.Sample(rng) > 50.0) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kDraws, 0.25, 0.01);
}

TEST(DistributionsTest, MixtureIgnoresBadComponents) {
  MixtureDistribution mixture;
  mixture.AddComponent(0.0, std::make_unique<NormalDistribution>(0.0, 1.0));
  mixture.AddComponent(-1.0, std::make_unique<NormalDistribution>(0.0, 1.0));
  mixture.AddComponent(1.0, std::make_unique<NormalDistribution>(7.0, 0.01));
  EXPECT_EQ(mixture.NumComponents(), 1u);
  Rng rng(5);
  EXPECT_NEAR(mixture.Sample(rng), 7.0, 0.1);
}

TEST(DistributionsTest, D2HasFourWellSeparatedClusters) {
  const auto d2 = MakeD2(6);
  ASSERT_EQ(d2->NumComponents(), 4u);
  Rng rng(7);
  std::vector<int> cluster_counts(4, 0);
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = d2->Sample(rng);
    if (x < 22.5) {
      ++cluster_counts[0];
    } else if (x < 37.5) {
      ++cluster_counts[1];
    } else if (x < 52.5) {
      ++cluster_counts[2];
    } else {
      ++cluster_counts[3];
    }
  }
  // Weights 12:5:2:1 of 20 total.
  EXPECT_NEAR(cluster_counts[0] / static_cast<double>(kDraws), 12.0 / 20.0,
              0.02);
  EXPECT_NEAR(cluster_counts[1] / static_cast<double>(kDraws), 5.0 / 20.0,
              0.02);
  EXPECT_NEAR(cluster_counts[2] / static_cast<double>(kDraws), 2.0 / 20.0,
              0.01);
  EXPECT_NEAR(cluster_counts[3] / static_cast<double>(kDraws), 1.0 / 20.0,
              0.01);
}

TEST(DistributionsTest, D2DeterministicPerSeed) {
  const auto a = MakeD2(9);
  const auto b = MakeD2(9);
  Rng rng_a(1), rng_b(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a->Sample(rng_a), b->Sample(rng_b));
  }
}

TEST(DistributionsTest, D3MixesThreeFamilies) {
  const auto d3 = MakeD3(10);
  ASSERT_EQ(d3->NumComponents(), 3u);
  Rng rng(11);
  Moments moments;
  for (int i = 0; i < 30000; ++i) moments.Add(d3->Sample(rng));
  // Gaussian around [10,20], Cauchy around [30,40], Gamma offset [50,60]:
  // overall spread is wide but bounded by the Cauchy clip.
  EXPECT_GT(moments.min(), -40.0);
  EXPECT_LT(moments.max(), 110.0);
  EXPECT_GT(moments.SampleStdDev(), 10.0);
}

TEST(SourceBuilderTest, OptionsValidation) {
  SyntheticSourceSetOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_sources = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.min_copies = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.max_copies = 1000;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.unit_error_prob = 1.5;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(SourceBuilderTest, CoverageWithinBounds) {
  const auto d2 = MakeD2(20);
  SyntheticSourceSetOptions options;
  options.num_sources = 50;
  options.num_components = 200;
  options.min_copies = 2;
  options.max_copies = 5;
  options.seed = 21;
  const auto set = BuildSyntheticSourceSet(*d2, options);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->NumSources(), 50);
  for (ComponentId c = 0; c < 200; ++c) {
    const int coverage = set->CoverageCount(c);
    EXPECT_GE(coverage, 2) << "component " << c;
    EXPECT_LE(coverage, 5) << "component " << c;
  }
  const std::vector<ComponentId> universe = set->Universe();
  EXPECT_EQ(universe.size(), 200u);
  EXPECT_EQ(universe.front(), 0);
  EXPECT_EQ(universe.back(), 199);
}

TEST(SourceBuilderTest, SharedBaseNoiseKeepsValuesNear) {
  const auto d2 = MakeD2(22);
  SyntheticSourceSetOptions options;
  options.num_sources = 20;
  options.num_components = 50;
  options.min_copies = 3;
  options.max_copies = 3;
  options.conflict_model = ConflictModel::kSharedBaseNoise;
  options.conflict_sigma = 0.1;
  options.seed = 23;
  const auto set = BuildSyntheticSourceSet(*d2, options);
  ASSERT_TRUE(set.ok());
  for (ComponentId c = 0; c < 50; ++c) {
    const auto range = set->ValueRange(c);
    ASSERT_TRUE(range.ok());
    EXPECT_LT(range->second - range->first, 1.5) << "component " << c;
  }
}

TEST(SourceBuilderTest, UnitErrorSourcesShiftValues) {
  const auto d2 = MakeD2(24);
  SyntheticSourceSetOptions clean;
  clean.num_sources = 30;
  clean.num_components = 100;
  clean.seed = 25;
  SyntheticSourceSetOptions dirty = clean;
  dirty.unit_error_source_fraction = 0.5;
  const auto clean_set = BuildSyntheticSourceSet(*d2, clean);
  const auto dirty_set = BuildSyntheticSourceSet(*d2, dirty);
  ASSERT_TRUE(clean_set.ok());
  ASSERT_TRUE(dirty_set.ok());
  // Fahrenheit conversion v*9/5+32 inflates the max bound far beyond D2's
  // Celsius range (< ~66).
  double clean_max = -1e30, dirty_max = -1e30;
  for (ComponentId c = 0; c < 100; ++c) {
    clean_max = std::max(clean_max, clean_set->ValueRange(c)->second);
    dirty_max = std::max(dirty_max, dirty_set->ValueRange(c)->second);
  }
  EXPECT_LT(clean_max, 70.0);
  EXPECT_GT(dirty_max, 80.0);
}

TEST(SourceBuilderTest, DeterministicPerSeed) {
  const auto d2 = MakeD2(26);
  SyntheticSourceSetOptions options;
  options.num_sources = 10;
  options.num_components = 20;
  options.seed = 27;
  const auto a = BuildSyntheticSourceSet(*d2, options);
  const auto d2_again = MakeD2(26);
  const auto b = BuildSyntheticSourceSet(*d2_again, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(a->source(s).bindings(), b->source(s).bindings());
  }
}

TEST(AddConflictComponentTest, BindsBothSources) {
  const auto d2 = MakeD2(30);
  SyntheticSourceSetOptions options;
  options.num_sources = 10;
  options.num_components = 20;
  options.seed = 31;
  auto set = BuildSyntheticSourceSet(*d2, options);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(AddConflictComponent(*set, 100, 2, 7, 10.0, 50.0).ok());
  EXPECT_EQ(set->CoverageCount(100), 2);
  EXPECT_DOUBLE_EQ(set->source(2).Value(100).value(), 10.0);
  EXPECT_DOUBLE_EQ(set->source(7).Value(100).value(), 60.0);
  const auto range = set->ValueRange(100);
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->second - range->first, 50.0);
}

TEST(AddConflictComponentTest, Validation) {
  const auto d2 = MakeD2(32);
  SyntheticSourceSetOptions options;
  options.num_sources = 5;
  options.num_components = 5;
  options.min_copies = 1;
  options.max_copies = 3;
  options.seed = 33;
  auto set = BuildSyntheticSourceSet(*d2, options);
  ASSERT_TRUE(set.ok());
  EXPECT_FALSE(AddConflictComponent(*set, 100, 1, 1, 1.0, 1.0).ok());
  EXPECT_FALSE(AddConflictComponent(*set, 100, -1, 2, 1.0, 1.0).ok());
  EXPECT_FALSE(AddConflictComponent(*set, 100, 0, 9, 1.0, 1.0).ok());
  // Existing component ids are rejected.
  EXPECT_FALSE(AddConflictComponent(*set, 0, 0, 1, 1.0, 1.0).ok());
}

TEST(AddConflictComponentTest, UniSAbsorbsShiftHalfTheTime) {
  // With a two-source conflict component the aggregate picks up the shift
  // with probability 1/2 — the mode-splitting mechanism of Figure 7(c)/(d).
  const auto d2 = MakeD2(34);
  SyntheticSourceSetOptions options;
  options.num_sources = 20;
  options.num_components = 10;
  options.conflict_sigma = 0.0;
  options.seed = 35;
  auto set = BuildSyntheticSourceSet(*d2, options);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(AddConflictComponent(*set, 500, 3, 11, 0.0, 1000.0).ok());
  AggregateQuery query = MakeRangeQuery("sum", AggregateKind::kSum, 0, 10);
  query.components.push_back(500);
  const auto sampler = UniSSampler::Create(&*set, query);
  ASSERT_TRUE(sampler.ok());
  Rng rng(36);
  const int kDraws = 2000;
  const auto samples = sampler->Sample(kDraws, rng);
  ASSERT_TRUE(samples.ok());
  // The 1000-wide shift dwarfs the base sum; split at the midpoint of the
  // observed range and count the shifted cluster.
  const Moments moments = ComputeMoments(*samples);
  const double midpoint = (moments.min() + moments.max()) / 2.0;
  int shifted = 0;
  for (const double v : *samples) {
    if (v > midpoint) ++shifted;
  }
  EXPECT_NEAR(static_cast<double>(shifted) / kDraws, 0.5, 0.05);
}

TEST(ClimateArchiveTest, OptionsValidation) {
  ClimateArchiveOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_districts = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.num_districts = options.num_stations + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.missing_prob = 1.0;
  EXPECT_FALSE(options.Validate().ok());
}

ClimateArchiveOptions SmallArchiveOptions() {
  ClimateArchiveOptions options;
  options.num_stations = 160;
  options.num_districts = 10;
  options.seed = 2006;
  return options;
}

TEST(ClimateArchiveTest, StructureMatchesOptions) {
  const auto archive = ClimateArchive::Build(SmallArchiveOptions());
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->stations().size(), 160u);
  std::set<int> districts;
  for (const Station& station : archive->stations()) {
    districts.insert(station.district);
  }
  EXPECT_EQ(districts.size(), 10u);  // every district populated
}

TEST(ClimateArchiveTest, TruthHasSeasonalShape) {
  const auto archive = ClimateArchive::Build(SmallArchiveOptions());
  ASSERT_TRUE(archive.ok());
  // Summer (July) warmer than winter (January) in every district.
  for (int d = 0; d < 10; ++d) {
    const double january =
        archive->Truth(ClimateAttribute::kMeanTemperature, d, 1).value();
    const double july =
        archive->Truth(ClimateAttribute::kMeanTemperature, d, 7).value();
    EXPECT_GT(july, january) << "district " << d;
  }
  EXPECT_FALSE(archive->Truth(ClimateAttribute::kMeanTemperature, 0, 13).ok());
  EXPECT_FALSE(
      archive->Truth(ClimateAttribute::kMeanTemperature, 99, 1).ok());
}

TEST(ClimateArchiveTest, ComponentIdsDisjointAcrossAttributes) {
  std::set<ComponentId> ids;
  for (int d = 0; d < 104; ++d) {
    for (int m = 1; m <= 12; ++m) {
      ids.insert(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, m));
      ids.insert(
          ClimateArchive::ComponentFor(ClimateAttribute::kTotalRainfall, d, m));
    }
  }
  EXPECT_EQ(ids.size(), 104u * 12u * 2u);
}

TEST(ClimateArchiveTest, SourceSetCoversComponents) {
  const auto archive = ClimateArchive::Build(SmallArchiveOptions());
  ASSERT_TRUE(archive.ok());
  const auto sources = archive->MakeSourceSet();
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(sources->NumSources(), 160);
  const auto components =
      archive->Components(ClimateAttribute::kMeanTemperature, 1, 12);
  ASSERT_TRUE(components.ok());
  EXPECT_EQ(components->size(), 120u);
  // 16 stations per district with 5% missing: coverage should be complete.
  EXPECT_TRUE(sources->ValidateCoverage(*components).ok());
  const double coverage = sources->AverageCoverage(*components).value();
  EXPECT_GT(coverage, 12.0);
  EXPECT_LE(coverage, 16.0);
}

TEST(ClimateArchiveTest, StationValuesNearDistrictTruth) {
  ClimateArchiveOptions options = SmallArchiveOptions();
  options.fahrenheit_station_fraction = 0.0;
  const auto archive = ClimateArchive::Build(options);
  ASSERT_TRUE(archive.ok());
  const auto sources = archive->MakeSourceSet();
  ASSERT_TRUE(sources.ok());
  const ComponentId component =
      ClimateArchive::ComponentFor(ClimateAttribute::kMeanTemperature, 3, 7);
  const double truth =
      archive->Truth(ClimateAttribute::kMeanTemperature, 3, 7).value();
  const auto range = sources->ValueRange(component);
  ASSERT_TRUE(range.ok());
  EXPECT_NEAR(range->first, truth, 5.0);
  EXPECT_NEAR(range->second, truth, 5.0);
}

TEST(ClimateArchiveTest, FahrenheitStationsCreateOutliers) {
  ClimateArchiveOptions options = SmallArchiveOptions();
  options.fahrenheit_station_fraction = 0.3;
  options.seed = 77;
  const auto archive = ClimateArchive::Build(options);
  ASSERT_TRUE(archive.ok());
  int fahrenheit = 0;
  for (const Station& station : archive->stations()) {
    if (station.reports_fahrenheit) ++fahrenheit;
  }
  EXPECT_GT(fahrenheit, 20);
  EXPECT_LT(fahrenheit, 80);
}

TEST(ClimateArchiveTest, DailyLayerDisabledByDefault) {
  const auto archive = ClimateArchive::Build(SmallArchiveOptions());
  ASSERT_TRUE(archive.ok());
  EXPECT_FALSE(archive->DailyComponents(1, 30).ok());
  EXPECT_FALSE(archive->DailyTruth(0, 1).ok());
}

TEST(ClimateArchiveTest, IntroductionAggregationScenario) {
  // The paper's introduction: averaging June temperatures over BC "requires
  // 1470 data points (49 cities in BC * 30 days), each of which could have
  // several duplicates across the sources".
  ClimateArchiveOptions options;
  options.num_stations = 49 * 8;  // ~8 stations per district
  options.num_districts = 49;
  options.daily_month = 6;  // June: 30 days
  options.fahrenheit_station_fraction = 0.0;  // no unit errors here
  options.seed = 1470;
  const auto archive = ClimateArchive::Build(options);
  ASSERT_TRUE(archive.ok());

  const auto components = archive->DailyComponents(1, 30);
  ASSERT_TRUE(components.ok());
  EXPECT_EQ(components->size(), 1470u);  // 49 * 30
  EXPECT_FALSE(archive->DailyComponents(1, 31).ok());  // June has 30 days
  EXPECT_FALSE(archive->DailyComponents(5, 2).ok());

  const auto sources = archive->MakeSourceSet();
  ASSERT_TRUE(sources.ok());
  ASSERT_TRUE(sources->ValidateCoverage(*components).ok());
  // Duplicates across the sources: ~8 stations per district, minus missing.
  EXPECT_GT(sources->AverageCoverage(*components).value(), 4.0);

  // Eq. (1.1): the correct average uses one value per data point; uniS
  // samples exactly such assignments, and the answers hover around the
  // ground-truth average.
  AggregateQuery query;
  query.name = "Average(Temp) June BC";
  query.kind = AggregateKind::kAverage;
  query.components = *components;
  const auto sampler = UniSSampler::Create(&sources.value(), query);
  ASSERT_TRUE(sampler.ok());
  Rng rng(2);
  const auto samples = sampler->Sample(100, rng);
  ASSERT_TRUE(samples.ok());
  double truth = 0.0;
  for (int d = 0; d < 49; ++d) {
    for (int day = 1; day <= 30; ++day) {
      truth += archive->DailyTruth(d, day).value();
    }
  }
  truth /= 1470.0;
  EXPECT_NEAR(ComputeMoments(*samples).mean(), truth, 0.5);
  // The daily trajectory actually varies within the month.
  const double first = archive->DailyTruth(0, 1).value();
  bool varies = false;
  for (int day = 2; day <= 30; ++day) {
    if (std::fabs(archive->DailyTruth(0, day).value() - first) > 0.5) {
      varies = true;
    }
  }
  EXPECT_TRUE(varies);
}

TEST(ClimateArchiveTest, DailyComponentIdsDisjointFromMonthly) {
  std::set<ComponentId> ids;
  for (int d = 0; d < 104; ++d) {
    for (int m = 1; m <= 12; ++m) {
      ids.insert(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, m));
      ids.insert(
          ClimateArchive::ComponentFor(ClimateAttribute::kTotalRainfall, d, m));
    }
    for (int day = 1; day <= 31; ++day) {
      ids.insert(ClimateArchive::DailyComponentFor(d, day));
    }
  }
  EXPECT_EQ(ids.size(), 104u * (12u * 2u + 31u));
}

TEST(ClimateArchiveTest, CsvExportRoundTrips) {
  ClimateArchiveOptions options = SmallArchiveOptions();
  options.num_stations = 20;
  options.num_districts = 4;
  const auto archive = ClimateArchive::Build(options);
  ASSERT_TRUE(archive.ok());
  const std::string path = ::testing::TempDir() + "/climate_test.csv";
  ASSERT_TRUE(archive->WriteCsv(path).ok());
  const auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_GT(rows->size(), 1u);
  EXPECT_EQ((*rows)[0],
            (CsvRow{"station", "district", "attribute", "month", "value"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vastats
