#include "density/density_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "density/distance.h"
#include "density/kde.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(DensityIoTest, RoundTripIsExact) {
  const GridDensity original = testing::MakeBumpDensity(
      -3.0, 17.0, 513, {{0.7, 2.0, 1.0}, {0.3, 12.0, 2.0}});
  const auto restored = GridDensityFromCsv(GridDensityToCsv(original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), original.size());
  EXPECT_DOUBLE_EQ(restored->x_min(), original.x_min());
  EXPECT_DOUBLE_EQ(restored->x_max(), original.x_max());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored->values()[i], original.values()[i]) << i;
  }
  // Distance between original and restored is exactly 0.
  EXPECT_DOUBLE_EQ(
      DensityDistance(original, *restored, DistanceKind::kSquaredL2).value(),
      0.0);
}

TEST(DensityIoTest, KdeOutputRoundTrips) {
  const std::vector<double> samples = testing::NormalSample(300, 9, 5.0, 2.0);
  KdeOptions options;
  options.grid_size = 256;
  options.rule = BandwidthRule::kSilverman;
  const auto kde = EstimateKde(samples, options);
  ASSERT_TRUE(kde.ok());
  const auto restored = GridDensityFromCsv(GridDensityToCsv(kde->density));
  ASSERT_TRUE(restored.ok());
  EXPECT_NEAR(restored->TotalMass(), 1.0, 1e-9);
}

TEST(DensityIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(GridDensityFromCsv("").ok());
  EXPECT_FALSE(GridDensityFromCsv("a,b\n1,2\n2,3\n").ok());
  EXPECT_FALSE(GridDensityFromCsv("x,f\n1,2\n").ok());  // one data row
  EXPECT_FALSE(GridDensityFromCsv("x,f\n1,2\n1,3\n").ok());  // flat grid
  EXPECT_FALSE(GridDensityFromCsv("x,f\n0,1\n1,1\n5,1\n").ok());  // uneven
  EXPECT_FALSE(GridDensityFromCsv("x,f\n0,1\n1,oops\n").ok());
  EXPECT_FALSE(GridDensityFromCsv("x,f\n0,1\n1,-2\n2,1\n").ok());  // negative
}

TEST(DensityIoTest, FileRoundTripAndDriftMeasurement) {
  // Snapshot two epochs and measure drift between them.
  const GridDensity epoch1 =
      testing::MakeBumpDensity(0.0, 10.0, 257, {{1.0, 4.0, 1.0}});
  const GridDensity epoch2 =
      testing::MakeBumpDensity(0.0, 10.0, 257, {{1.0, 5.0, 1.0}});
  const std::string path1 = ::testing::TempDir() + "/epoch1.csv";
  const std::string path2 = ::testing::TempDir() + "/epoch2.csv";
  ASSERT_TRUE(WriteGridDensity(path1, epoch1).ok());
  ASSERT_TRUE(WriteGridDensity(path2, epoch2).ok());
  const auto loaded1 = ReadGridDensity(path1);
  const auto loaded2 = ReadGridDensity(path2);
  ASSERT_TRUE(loaded1.ok());
  ASSERT_TRUE(loaded2.ok());
  const double drift =
      DensityDistance(*loaded1, *loaded2, DistanceKind::kL2).value();
  EXPECT_GT(drift, 0.1);  // a one-sigma shift is clearly visible
  std::remove(path1.c_str());
  std::remove(path2.c_str());
  EXPECT_FALSE(ReadGridDensity("/no/such/density.csv").ok());
}

}  // namespace
}  // namespace vastats
