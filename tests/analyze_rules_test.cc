// End-to-end rule tests over the committed fixture tree
// (tools/analyze/testdata/repo): every rule fires exactly where planted,
// allow-comments suppress, and the baseline absorbs rendered findings.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.h"
#include "engine.h"
#include "rules.h"
#include "selftest.h"

namespace vastats {
namespace analyze {
namespace {

const char kFixtureRoot[] = VASTATS_REPO_ROOT "/tools/analyze/testdata/repo";

AnalysisReport FixtureReport() {
  AnalyzeOptions options;
  options.root = kFixtureRoot;
  Result<AnalysisReport> report = AnalyzeRepo(options);
  EXPECT_TRUE(report.ok()) << report.status().message();
  return report.ok() ? report.value() : AnalysisReport{};
}

TEST(AnalyzeRules, SelfTestCorpusPasses) {
  const std::vector<std::string> failures = RunSelfTest();
  for (const std::string& failure : failures) {
    ADD_FAILURE() << failure;
  }
}

TEST(AnalyzeRules, FixtureTreeFindsEveryPlantedViolation) {
  const AnalysisReport report = FixtureReport();
  std::vector<std::string> got;
  for (const Finding& finding : report.findings) {
    got.push_back(finding.rule + " " + finding.path + ":" +
                  std::to_string(finding.line));
  }
  const std::vector<std::string> want = {
      "R4 src/core/badguard.h:1",
      "R1 src/core/throws.cc:6",
      "R2 src/density/random_use.cc:6",
      "A2 src/integration/hazard.cc:9",
      "A3 src/integration/hazard.cc:28",
      "A4 src/integration/hazard.cc:16",
      "A5 src/integration/hazard.cc:5",
      "R4 src/sampling/orphan.cc:0",
      "A5 src/serving/rogue_cache.cc:8",
      "R7 src/stats/io_use.cc:10",
      "R3 src/stats/io_use.cc:9",
      "R7 src/transport/rogue_clock.cc:11",
      "R6 tests/telemetry_test.cc:4",
      "A1 src/util/uplink.h:4",
      "A1 src/stats/cycle_a.h:4",
  };
  EXPECT_EQ(got, want);
}

TEST(AnalyzeRules, AllowCommentsSuppress) {
  // The fixture plants a suppressed twin next to several violations
  // (throws.cc:10 R1, random_use.cc:10 R2, hazard.cc:29 A3); none may
  // appear in the report.
  const AnalysisReport report = FixtureReport();
  for (const Finding& finding : report.findings) {
    EXPECT_FALSE(finding.path == "src/core/throws.cc" && finding.line == 10)
        << Render(finding);
    EXPECT_FALSE(finding.path == "src/density/random_use.cc" &&
                 finding.line == 10)
        << Render(finding);
    EXPECT_FALSE(finding.path == "src/integration/hazard.cc" &&
                 finding.line == 29)
        << Render(finding);
  }
}

TEST(AnalyzeRules, MessagesNameTheRemedy) {
  const AnalysisReport report = FixtureReport();
  bool saw_a1 = false, saw_a4 = false;
  for (const Finding& finding : report.findings) {
    if (finding.rule == "A1" && finding.path == "src/util/uplink.h") {
      saw_a1 = true;
      EXPECT_NE(finding.message.find("layering back-edge"),
                std::string::npos);
      EXPECT_NE(finding.message.find(
                    "include chain: src/util/uplink.h -> src/core/throws.h"),
                std::string::npos);
    }
    if (finding.rule == "A4") {
      saw_a4 = true;
      EXPECT_NE(finding.message.find("unhandled: kRun, kDrain"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_a1);
  EXPECT_TRUE(saw_a4);
}

TEST(AnalyzeRules, BaselineAbsorbsRenderedFindings) {
  const AnalysisReport report = FixtureReport();
  ASSERT_FALSE(report.findings.empty());
  // Baseline the first two findings; they move to `baselined`, the rest
  // stay fresh, order preserved.
  const Baseline baseline = ParseBaseline(
      "# comment line\n" + Render(report.findings[0]) + "\n" +
      Render(report.findings[1]) + "\n");
  const BaselineSplit split = ApplyBaseline(report.findings, baseline);
  EXPECT_EQ(split.baselined.size(), 2u);
  EXPECT_EQ(split.fresh.size(), report.findings.size() - 2);
  EXPECT_EQ(Render(split.baselined[0]), Render(report.findings[0]));
  EXPECT_EQ(Render(split.fresh[0]), Render(report.findings[2]));
}

TEST(AnalyzeRules, RealTreeIsCleanAgainstCommittedBaseline) {
  AnalyzeOptions options;
  options.root = VASTATS_REPO_ROOT;
  Result<AnalysisReport> report = AnalyzeRepo(options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  for (const Finding& finding : report.value().findings) {
    ADD_FAILURE() << Render(finding);
  }
}

}  // namespace
}  // namespace analyze
}  // namespace vastats
