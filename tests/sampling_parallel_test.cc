#include "sampling/parallel.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "sampling/exhaustive.h"
#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

class ParallelSamplingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto d2 = MakeD2(60);
    SyntheticSourceSetOptions options;
    options.num_sources = 40;
    options.num_components = 80;
    options.seed = 61;
    sources_ = BuildSyntheticSourceSet(*d2, options).value();
    query_ = MakeRangeQuery("sum", AggregateKind::kSum, 0, 80);
    sampler_.emplace(UniSSampler::Create(&sources_, query_).value());
  }

  SourceSet sources_;
  AggregateQuery query_;
  std::optional<UniSSampler> sampler_;
};

TEST_F(ParallelSamplingTest, ProducesRequestedCount) {
  ParallelSampleOptions options;
  options.num_threads = 4;
  const auto samples = ParallelUniSSample(*sampler_, 1000, options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 1000u);
}

TEST_F(ParallelSamplingTest, DeterministicForFixedSeedAndThreads) {
  ParallelSampleOptions options;
  options.num_threads = 3;
  options.seed = 77;
  const auto a = ParallelUniSSample(*sampler_, 500, options);
  const auto b = ParallelUniSSample(*sampler_, 500, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(ParallelSamplingTest, SingleThreadMatchesMultiThreadDistribution) {
  ParallelSampleOptions one;
  one.num_threads = 1;
  one.seed = 88;
  ParallelSampleOptions four;
  four.num_threads = 4;
  four.seed = 88;
  const auto serial = ParallelUniSSample(*sampler_, 2000, one);
  const auto parallel = ParallelUniSSample(*sampler_, 2000, four);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  // Not bit-identical (different stream partitioning) but statistically the
  // same distribution.
  const Moments ms = ComputeMoments(*serial);
  const Moments mp = ComputeMoments(*parallel);
  const double se = ms.SampleStdDev() / std::sqrt(2000.0);
  EXPECT_NEAR(ms.mean(), mp.mean(), 6.0 * se);
  EXPECT_NEAR(ms.SampleStdDev(), mp.SampleStdDev(),
              0.2 * ms.SampleStdDev());
}

TEST_F(ParallelSamplingTest, UnevenSplitCoversAllSlots) {
  // 7 is not divisible by 3: every slot must still be written.
  ParallelSampleOptions options;
  options.num_threads = 3;
  const auto samples = ParallelUniSSample(*sampler_, 7, options);
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 7u);
  // All uniS sums of this workload are far from zero; an unwritten slot
  // would remain exactly 0.
  for (const double v : *samples) EXPECT_NE(v, 0.0);
}

TEST_F(ParallelSamplingTest, MoreThreadsThanSamplesClamps) {
  ParallelSampleOptions options;
  options.num_threads = 64;
  const auto samples = ParallelUniSSample(*sampler_, 5, options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 5u);
}

TEST_F(ParallelSamplingTest, DefaultThreadCountWorks) {
  ParallelSampleOptions options;  // num_threads = 0 -> hardware concurrency
  const auto samples = ParallelUniSSample(*sampler_, 100, options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 100u);
}

TEST_F(ParallelSamplingTest, Validation) {
  ParallelSampleOptions options;
  EXPECT_FALSE(ParallelUniSSample(*sampler_, 0, options).ok());
  options.num_threads = -1;
  EXPECT_FALSE(ParallelUniSSample(*sampler_, 10, options).ok());
}

TEST_F(ParallelSamplingTest, AnswersWithinViableRange) {
  const auto range = ViableRange(sources_, query_);
  ASSERT_TRUE(range.ok());
  ParallelSampleOptions options;
  options.num_threads = 4;
  const auto samples = ParallelUniSSample(*sampler_, 500, options);
  ASSERT_TRUE(samples.ok());
  for (const double v : *samples) {
    EXPECT_GE(v, range->first);
    EXPECT_LE(v, range->second);
  }
}

}  // namespace
}  // namespace vastats
