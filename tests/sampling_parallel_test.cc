#include "sampling/parallel.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "sampling/exhaustive.h"
#include "stats/descriptive.h"
#include "test_util.h"

namespace vastats {
namespace {

class ParallelSamplingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto d2 = MakeD2(60);
    SyntheticSourceSetOptions options;
    options.num_sources = 40;
    options.num_components = 80;
    options.seed = 61;
    sources_ = BuildSyntheticSourceSet(*d2, options).value();
    query_ = MakeRangeQuery("sum", AggregateKind::kSum, 0, 80);
    sampler_.emplace(UniSSampler::Create(&sources_, query_).value());
  }

  SourceSet sources_;
  AggregateQuery query_;
  std::optional<UniSSampler> sampler_;
};

TEST_F(ParallelSamplingTest, ProducesRequestedCount) {
  ParallelSampleOptions options;
  options.num_threads = 4;
  const auto samples = ParallelUniSSample(*sampler_, 1000, options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 1000u);
}

TEST_F(ParallelSamplingTest, DeterministicForFixedSeedAndThreads) {
  ParallelSampleOptions options;
  options.num_threads = 3;
  options.seed = 77;
  const auto a = ParallelUniSSample(*sampler_, 500, options);
  const auto b = ParallelUniSSample(*sampler_, 500, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(ParallelSamplingTest, BitIdenticalAcrossThreadCounts) {
  // The chunk-indexed streams make the output a function of (seed, n,
  // chunk_draws) only: every execution width must produce the same bits.
  ParallelSampleOptions one;
  one.num_threads = 1;
  one.seed = 88;
  const auto reference = ParallelUniSSample(*sampler_, 2000, one);
  ASSERT_TRUE(reference.ok());

  const int hardware =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (const int threads : {2, 4, hardware}) {
    ParallelSampleOptions options;
    options.num_threads = threads;
    options.seed = 88;
    const auto samples = ParallelUniSSample(*sampler_, 2000, options);
    ASSERT_TRUE(samples.ok());
    EXPECT_EQ(samples.value(), reference.value())
        << "thread-per-call width " << threads;
  }
}

TEST_F(ParallelSamplingTest, BitIdenticalAcrossPoolSizes) {
  ParallelSampleOptions serial;
  serial.num_threads = 1;
  serial.seed = 88;
  const auto reference = ParallelUniSSample(*sampler_, 2000, serial);
  ASSERT_TRUE(reference.ok());

  const int hardware =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  for (const int size : {1, 2, 4, hardware}) {
    ThreadPool pool(ThreadPoolOptions{.num_threads = size});
    ParallelSampleOptions options;
    options.seed = 88;
    options.pool = &pool;
    const auto samples = ParallelUniSSample(*sampler_, 2000, options);
    ASSERT_TRUE(samples.ok());
    EXPECT_EQ(samples.value(), reference.value()) << "pool size " << size;
  }
}

TEST_F(ParallelSamplingTest, PoolRunsAreRepeatable) {
  ThreadPool pool;
  ParallelSampleOptions options;
  options.seed = 77;
  options.pool = &pool;
  const auto a = ParallelUniSSample(*sampler_, 500, options);
  const auto b = ParallelUniSSample(*sampler_, 500, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(ParallelSamplingTest, ChunkedDriverPropagatesLowestChunkError) {
  // Chunks 3 and 1 both fail; the reported error must be chunk 1's,
  // independent of which worker hits which chunk first.
  ParallelSampleOptions options;
  options.num_threads = 4;
  options.chunk_draws = 8;
  auto chunk_fn = [](int chunk_index, Rng&, std::span<double> out) -> Status {
    if (chunk_index == 1 || chunk_index == 3) {
      return Status::Internal("chunk " + std::to_string(chunk_index) +
                              " failed");
    }
    std::fill(out.begin(), out.end(), 1.0);
    return Status::Ok();
  };
  for (int repeat = 0; repeat < 20; ++repeat) {
    const auto result = ParallelChunkedSample(64, options, chunk_fn);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "chunk 1 failed");
  }
}

TEST_F(ParallelSamplingTest, FailingChunkYieldsNoPartialResult) {
  // The sampler errors after a few draws of chunk 2; the call must surface
  // that error and hand back no samples at all.
  ThreadPool pool(ThreadPoolOptions{.num_threads = 2});
  ParallelSampleOptions options;
  options.chunk_draws = 8;
  options.pool = &pool;
  std::atomic<int> draws{0};
  auto chunk_fn = [&](int chunk_index, Rng& rng,
                      std::span<double> out) -> Status {
    for (double& slot : out) {
      if (chunk_index == 2 && draws.fetch_add(1) >= 3) {
        return Status::NotFound("source went away");
      }
      slot = rng.Uniform01();
    }
    return Status::Ok();
  };
  const auto result = ParallelChunkedSample(64, options, chunk_fn);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ParallelSamplingTest, UnevenSplitCoversAllSlots) {
  // 7 is not divisible by 3: every slot must still be written.
  ParallelSampleOptions options;
  options.num_threads = 3;
  const auto samples = ParallelUniSSample(*sampler_, 7, options);
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples->size(), 7u);
  // All uniS sums of this workload are far from zero; an unwritten slot
  // would remain exactly 0.
  for (const double v : *samples) EXPECT_NE(v, 0.0);
}

TEST_F(ParallelSamplingTest, MoreThreadsThanSamplesClamps) {
  ParallelSampleOptions options;
  options.num_threads = 64;
  const auto samples = ParallelUniSSample(*sampler_, 5, options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 5u);
}

TEST_F(ParallelSamplingTest, DefaultThreadCountWorks) {
  ParallelSampleOptions options;  // num_threads = 0 -> hardware concurrency
  const auto samples = ParallelUniSSample(*sampler_, 100, options);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 100u);
}

TEST_F(ParallelSamplingTest, Validation) {
  ParallelSampleOptions options;
  EXPECT_FALSE(ParallelUniSSample(*sampler_, 0, options).ok());
  options.num_threads = -1;
  EXPECT_FALSE(ParallelUniSSample(*sampler_, 10, options).ok());
  options.num_threads = 1;
  options.chunk_draws = 0;
  EXPECT_FALSE(ParallelUniSSample(*sampler_, 10, options).ok());
}

TEST_F(ParallelSamplingTest, AnswersWithinViableRange) {
  const auto range = ViableRange(sources_, query_);
  ASSERT_TRUE(range.ok());
  ParallelSampleOptions options;
  options.num_threads = 4;
  const auto samples = ParallelUniSSample(*sampler_, 500, options);
  ASSERT_TRUE(samples.ok());
  for (const double v : *samples) {
    EXPECT_GE(v, range->first);
    EXPECT_LE(v, range->second);
  }
}

}  // namespace
}  // namespace vastats
