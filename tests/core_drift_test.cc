#include "core/drift.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "test_util.h"

namespace vastats {
namespace {

TEST(DriftOptionsTest, Validation) {
  DriftOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.tolerance_factor = 0.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(AssessDriftTest, IdenticalEpochsHaveZeroDrift) {
  const GridDensity density =
      testing::MakeBumpDensity(0.0, 10.0, 257, {{1.0, 5.0, 1.0}});
  const auto report = AssessDrift(density, 4.0, density);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->realized_l2, 0.0, 1e-9);
  EXPECT_NEAR(report->predicted_rms_l2, std::exp(-4.0), 1e-12);
  EXPECT_FALSE(report->anomalous);
}

TEST(AssessDriftTest, LargeShiftFlaggedAgainstHighStability) {
  const GridDensity before =
      testing::MakeBumpDensity(0.0, 20.0, 513, {{1.0, 5.0, 1.0}});
  const GridDensity after =
      testing::MakeBumpDensity(0.0, 20.0, 513, {{1.0, 12.0, 1.0}});
  // A very stable epoch (score 6 => predicted RMS drift ~0.0025) followed
  // by a full mode relocation: clearly anomalous.
  const auto report = AssessDrift(before, 6.0, after);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->realized_l2, 0.1);
  EXPECT_GT(report->ratio, 10.0);
  EXPECT_TRUE(report->anomalous);
  // The same shift against a very unstable epoch (score -1 => predicted
  // drift ~2.7) is ordinary.
  const auto tolerant = AssessDrift(before, -1.0, after);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_FALSE(tolerant->anomalous);
}

TEST(AssessDriftTest, InfiniteStabilityMakesAnyDriftAnomalous) {
  const GridDensity before =
      testing::MakeBumpDensity(0.0, 10.0, 257, {{1.0, 4.0, 0.5}});
  const GridDensity after =
      testing::MakeBumpDensity(0.0, 10.0, 257, {{1.0, 4.2, 0.5}});
  const double inf = std::numeric_limits<double>::infinity();
  const auto report = AssessDrift(before, inf, after);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->anomalous);
  const auto no_change = AssessDrift(before, inf, before);
  ASSERT_TRUE(no_change.ok());
  EXPECT_FALSE(no_change->anomalous);
  EXPECT_FALSE(AssessDrift(before, std::nan(""), after).ok());
}

TEST(AssessDriftTest, EndToEndReextractionWithinPrediction) {
  // Re-extracting the same unchanged workload with a different seed should
  // drift far less than one churn event's worth.
  const auto mixture = MakeD2(80);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 60;
  source_options.seed = 81;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 60);

  ExtractorOptions options_a;
  options_a.initial_sample_size = 300;
  options_a.weight_probes = 10;
  options_a.seed = 1;
  ExtractorOptions options_b = options_a;
  options_b.seed = 2;
  const auto epoch_a = AnswerStatisticsExtractor::Create(&sources, query,
                                                         options_a)
                           ->Extract();
  const auto epoch_b = AnswerStatisticsExtractor::Create(&sources, query,
                                                         options_b)
                           ->Extract();
  ASSERT_TRUE(epoch_a.ok());
  ASSERT_TRUE(epoch_b.ok());
  const auto report = AssessDrift(*epoch_a, *epoch_b);
  ASSERT_TRUE(report.ok());
  // Pure re-sampling noise: the finite-sample KDE wobble is of the same
  // order as the one-removal prediction (Theorem 4.2's expectation includes
  // the same estimation noise), so it stays within the default tolerance.
  EXPECT_LT(report->ratio, 3.0);
  EXPECT_FALSE(report->anomalous);
}

TEST(AssessDriftTest, EndToEndMassRemovalExceedsPrediction) {
  // Removing a third of the sources should move the distribution more than
  // the single-removal prediction tolerates.
  const auto mixture = MakeD2(90);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 30;
  source_options.num_components = 60;
  source_options.min_copies = 3;
  source_options.max_copies = 6;
  source_options.conflict_sigma = 3.0;
  source_options.seed = 91;
  SourceSet sources = BuildSyntheticSourceSet(*mixture, source_options).value();
  const AggregateQuery query =
      MakeRangeQuery("sum", AggregateKind::kSum, 0, 60);

  ExtractorOptions options;
  options.initial_sample_size = 300;
  options.weight_probes = 10;
  const auto before =
      AnswerStatisticsExtractor::Create(&sources, query, options)->Extract();
  ASSERT_TRUE(before.ok());

  // Knock out every third source's bindings (keeping coverage).
  for (int s = 0; s < sources.NumSources(); s += 3) {
    DataSource& source = sources.mutable_source(s);
    for (const ComponentId component : source.SortedComponents()) {
      if (sources.CoverageCount(component) > 1) source.Unbind(component);
    }
  }
  const auto after =
      AnswerStatisticsExtractor::Create(&sources, query, options)->Extract();
  ASSERT_TRUE(after.ok());
  const auto report = AssessDrift(*before, *after);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->ratio, 1.0);
}

}  // namespace
}  // namespace vastats
