#include "stats/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

TEST(BootstrapOptionsTest, Validation) {
  BootstrapOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_sets = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.num_sets = 10;
  options.set_size = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(BootstrapSetsTest, ShapeAndMembership) {
  const std::vector<double> data = {1, 2, 3, 4, 5};
  Rng rng(1);
  BootstrapOptions options;
  options.num_sets = 7;
  options.set_size = 12;
  const auto sets = BootstrapSets(data, options, rng);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 7u);
  for (const auto& set : *sets) {
    ASSERT_EQ(set.size(), 12u);
    for (const double v : set) {
      EXPECT_TRUE(std::find(data.begin(), data.end(), v) != data.end());
    }
  }
}

TEST(BootstrapSetsTest, DefaultSetSizeIsDataSize) {
  const std::vector<double> data = {1, 2, 3};
  Rng rng(2);
  const auto sets = BootstrapSets(data, BootstrapOptions{}, rng);
  ASSERT_TRUE(sets.ok());
  EXPECT_EQ((*sets)[0].size(), 3u);
}

TEST(BootstrapSetsTest, DeterministicUnderSeed) {
  const std::vector<double> data = testing::NormalSample(50, 3);
  Rng rng_a(42), rng_b(42);
  const auto a = BootstrapSets(data, BootstrapOptions{}, rng_a);
  const auto b = BootstrapSets(data, BootstrapOptions{}, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(BootstrapSetsTest, EmptyDataRejected) {
  Rng rng(1);
  EXPECT_FALSE(BootstrapSets({}, BootstrapOptions{}, rng).ok());
}

TEST(BootstrapReplicatesTest, MeanReplicatesCenterOnSampleMean) {
  const std::vector<double> data = testing::NormalSample(400, 5, 10.0, 2.0);
  const double sample_mean = ComputeMoments(data).mean();
  Rng rng(7);
  BootstrapOptions options;
  options.num_sets = 200;
  const auto replicates = BootstrapReplicates(
      data, MomentStatisticFn(MomentStatistic::kMean), options, rng);
  ASSERT_TRUE(replicates.ok());
  ASSERT_EQ(replicates->size(), 200u);
  const Moments moments = ComputeMoments(*replicates);
  EXPECT_NEAR(moments.mean(), sample_mean, 0.05);
  // Replicate spread approximates the standard error s/sqrt(n).
  const double expected_se =
      ComputeMoments(data).SampleStdDev() / std::sqrt(400.0);
  EXPECT_NEAR(moments.SampleStdDev(), expected_se, expected_se * 0.3);
}

TEST(BootstrapReplicatesTest, MatchesReplicatesFromSets) {
  const std::vector<double> data = testing::NormalSample(100, 9);
  BootstrapOptions options;
  options.num_sets = 25;
  Rng rng_a(11), rng_b(11);
  const auto direct = BootstrapReplicates(
      data, MomentStatisticFn(MomentStatistic::kVariance), options, rng_a);
  const auto sets = BootstrapSets(data, options, rng_b);
  ASSERT_TRUE(sets.ok());
  const auto via_sets = ReplicatesFromSets(
      *sets, MomentStatisticFn(MomentStatistic::kVariance));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_sets.ok());
  ASSERT_EQ(direct->size(), via_sets->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_DOUBLE_EQ((*direct)[i], (*via_sets)[i]);
  }
}

TEST(BootstrapIndexSetsTest, MatchesBootstrapSetsUnderSameSeed) {
  // The index stream is the value stream: gathering the index sets must
  // reproduce BootstrapSets bit for bit.
  const std::vector<double> data = testing::NormalSample(50, 13);
  BootstrapOptions options;
  options.num_sets = 20;
  Rng rng_a(99), rng_b(99);
  const auto index_sets =
      BootstrapIndexSets(static_cast<int>(data.size()), options, rng_a);
  const auto sets = BootstrapSets(data, options, rng_b);
  ASSERT_TRUE(index_sets.ok());
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(index_sets->size(), sets->size());
  for (size_t s = 0; s < sets->size(); ++s) {
    const std::vector<int>& indices = (*index_sets)[s];
    ASSERT_EQ(indices.size(), (*sets)[s].size());
    for (size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(data[static_cast<size_t>(indices[i])], (*sets)[s][i]);
    }
  }
}

TEST(BootstrapIndexSetsTest, Validation) {
  Rng rng(1);
  EXPECT_FALSE(BootstrapIndexSets(0, BootstrapOptions{}, rng).ok());
  BootstrapOptions bad;
  bad.num_sets = 0;
  EXPECT_FALSE(BootstrapIndexSets(10, bad, rng).ok());
}

TEST(ReplicatesFromIndexSetsTest, MatchesReplicatesFromSets) {
  const std::vector<double> data = testing::NormalSample(80, 17);
  BootstrapOptions options;
  options.num_sets = 30;
  Rng rng_a(5), rng_b(5);
  const auto index_sets =
      BootstrapIndexSets(static_cast<int>(data.size()), options, rng_a);
  const auto sets = BootstrapSets(data, options, rng_b);
  ASSERT_TRUE(index_sets.ok());
  ASSERT_TRUE(sets.ok());
  const auto via_indices = ReplicatesFromIndexSets(
      data, *index_sets, MomentStatisticFn(MomentStatistic::kSkewness));
  const auto via_sets = ReplicatesFromSets(
      *sets, MomentStatisticFn(MomentStatistic::kSkewness));
  ASSERT_TRUE(via_indices.ok());
  ASSERT_TRUE(via_sets.ok());
  EXPECT_EQ(via_indices.value(), via_sets.value());
}

TEST(ReplicatesFromIndexSetsTest, RejectsOutOfRangeIndices) {
  const std::vector<double> data = {1.0, 2.0, 3.0};
  const std::vector<std::vector<int>> bad = {{0, 1, 3}};
  EXPECT_EQ(ReplicatesFromIndexSets(data, bad,
                                    MomentStatisticFn(MomentStatistic::kMean))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  const std::vector<std::vector<int>> negative = {{0, -1}};
  EXPECT_FALSE(ReplicatesFromIndexSets(
                   data, negative, MomentStatisticFn(MomentStatistic::kMean))
                   .ok());
}

TEST(BootstrapPoolTest, PooledReplicatesAreBitIdenticalToSerial) {
  const std::vector<double> data = testing::NormalSample(120, 23);
  BootstrapOptions options;
  options.num_sets = 40;
  Rng rng_serial(31), rng_pooled(31);
  const auto serial = BootstrapReplicates(
      data, MomentStatisticFn(MomentStatistic::kVariance), options,
      rng_serial);
  ThreadPool pool(ThreadPoolOptions{.num_threads = 4});
  const auto pooled = BootstrapReplicates(
      data, MomentStatisticFn(MomentStatistic::kVariance), options,
      rng_pooled, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(serial.value(), pooled.value());

  const auto sets = BootstrapSets(data, options, rng_serial);
  ASSERT_TRUE(sets.ok());
  const auto from_sets_serial =
      ReplicatesFromSets(*sets, MomentStatisticFn(MomentStatistic::kMean));
  const auto from_sets_pooled = ReplicatesFromSets(
      *sets, MomentStatisticFn(MomentStatistic::kMean), &pool);
  ASSERT_TRUE(from_sets_serial.ok());
  ASSERT_TRUE(from_sets_pooled.ok());
  EXPECT_EQ(from_sets_serial.value(), from_sets_pooled.value());
}

TEST(ReplicatesFromSetsTest, RejectsEmptyInput) {
  EXPECT_FALSE(
      ReplicatesFromSets({}, MomentStatisticFn(MomentStatistic::kMean)).ok());
  const std::vector<std::vector<double>> sets = {{}};
  EXPECT_FALSE(
      ReplicatesFromSets(sets, MomentStatisticFn(MomentStatistic::kMean))
          .ok());
}

TEST(BagTest, MeanAndMedianAggregators) {
  const std::vector<double> replicates = {1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(Bag(replicates, BagAggregator::kMean).value(), 22.0);
  EXPECT_DOUBLE_EQ(Bag(replicates, BagAggregator::kMedian).value(), 3.0);
  EXPECT_FALSE(Bag({}, BagAggregator::kMean).ok());
}

TEST(BagTest, BaggingReducesEstimatorVariance) {
  // Variance of bagged means across independent runs should be smaller than
  // variance of single-set estimates.
  const std::vector<double> data = testing::NormalSample(100, 21, 0.0, 5.0);
  BootstrapOptions one_set;
  one_set.num_sets = 1;
  BootstrapOptions many_sets;
  many_sets.num_sets = 40;

  Moments single, bagged;
  for (int trial = 0; trial < 60; ++trial) {
    Rng rng(1000 + static_cast<uint64_t>(trial));
    const auto single_rep = BootstrapReplicates(
        data, MomentStatisticFn(MomentStatistic::kMean), one_set, rng);
    single.Add((*single_rep)[0]);
    const auto many_rep = BootstrapReplicates(
        data, MomentStatisticFn(MomentStatistic::kMean), many_sets, rng);
    bagged.Add(Bag(*many_rep, BagAggregator::kMean).value());
  }
  EXPECT_LT(bagged.SampleVariance(), single.SampleVariance());
}

}  // namespace
}  // namespace vastats
